"""Ablation: does hop-priority information help wormhole routing?

The paper's central diagnosis (Section 3.4): fully adaptive routing alone
is not enough under wormhole switching — the hop schemes win because the
hop count acts as priority information layered on the virtual-channel
classes.  This ablation compares 2pn (fully adaptive, no priority, 4 VCs)
against nhop (fully adaptive, priority classes, a comparable VC budget)
under wormhole switching at matched load, and confirms the priority side
at least holds its own while using the same adaptivity.
"""

import dataclasses

from benchmarks.conftest import active_profile
from repro.experiments.profiles import apply_profile
from repro.experiments.runner import run_point
from repro.simulator.config import SimulationConfig


def bench_priority_information(once):
    profile = active_profile()
    base = apply_profile(SimulationConfig(seed=107), profile)

    def run():
        results = {}
        for name in ("2pn", "nhop", "phop"):
            for load in (0.5, 0.8):
                results[(name, load)] = run_point(
                    dataclasses.replace(
                        base, algorithm=name, offered_load=load
                    )
                )
        return results

    results = once(run)
    print(f"\nPriority ablation under wormhole switching ({profile}):")
    for (name, load), result in results.items():
        print(
            f"  {name:>5} @ {load:.1f}: util="
            f"{result.achieved_utilization:.3f}  "
            f"latency={result.average_latency:7.1f}"
        )
    # At heavy load the priority schemes must not trail the no-priority
    # fully-adaptive scheme, despite comparable adaptivity.
    assert (
        results[("nhop", 0.8)].achieved_utilization
        >= 0.95 * results[("2pn", 0.8)].achieved_utilization
    )
    assert (
        results[("phop", 0.8)].achieved_utilization
        >= 0.95 * results[("2pn", 0.8)].achieved_utilization
    )
