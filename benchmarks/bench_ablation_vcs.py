"""Ablation: adding virtual channels to e-cube (paper §4 future work).

The paper's conclusion cites Dally's virtual-channel flow control result
— "additional virtual channels improve the performance of e-cube for
uniform traffic" — as a study to run.  This benchmark runs it: e-cube
with 1, 2 and 4 lanes per dateline class under heavy uniform load, and
asserts the predicted monotone throughput improvement.
"""

import dataclasses

from benchmarks.conftest import active_profile
from repro.experiments.profiles import apply_profile
from repro.experiments.runner import run_point
from repro.simulator.config import SimulationConfig


def bench_ecube_extra_virtual_channels(once):
    profile = active_profile()
    base = apply_profile(
        SimulationConfig(offered_load=0.8, seed=109), profile
    )

    def run():
        results = {}
        for lanes, name in ((1, "ecube"), (2, "ecubex2"), (4, "ecubex4")):
            results[lanes] = run_point(
                dataclasses.replace(base, algorithm=name)
            )
        return results

    results = once(run)
    print(f"\ne-cube with extra VC lanes, uniform load 0.8 ({profile}):")
    for lanes, result in results.items():
        print(
            f"  {lanes} lane(s) ({2 * lanes:2d} VCs): "
            f"util={result.achieved_utilization:.3f}  "
            f"latency={result.average_latency:7.1f}"
        )
    assert (
        results[4].achieved_utilization
        > results[1].achieved_utilization
    ), "Dally: extra virtual channels must raise e-cube throughput"
    assert (
        results[2].achieved_utilization
        >= 0.95 * results[1].achieved_utilization
    )
