"""Ablation: the input-buffer-limit congestion control (paper Section 3).

The paper's argument for congestion control: without it, the network is
unusable past saturation (latencies grow without bound); with it, latency
stays bounded and throughput holds near its peak.  This ablation runs
e-cube past saturation with the limit disabled / loose / tight and checks
the predicted monotone effect on saturation latency.
"""

import dataclasses

from benchmarks.conftest import active_profile
from repro.experiments.profiles import apply_profile
from repro.experiments.runner import run_point
from repro.simulator.config import SimulationConfig


def bench_congestion_control(once):
    profile = active_profile()
    base = apply_profile(
        SimulationConfig(algorithm="ecube", offered_load=0.9, seed=106),
        profile,
    )

    def run():
        results = {}
        for label, limit in (("tight", 1), ("paper", 2), ("loose", 8)):
            results[label] = run_point(
                dataclasses.replace(base, injection_limit=limit)
            )
        return results

    results = once(run)
    print(f"\ne-cube at offered load 0.9 ({profile} profile):")
    for label, result in results.items():
        print(
            f"  limit={label:>5}: latency={result.average_latency:8.1f}  "
            f"util={result.achieved_utilization:.3f}  "
            f"refused={result.refusal_rate:.0%}"
        )
    assert (
        results["tight"].average_latency
        < results["paper"].average_latency
        < results["loose"].average_latency
    ), "saturation latency must grow with the injection limit"
    # The paper's point: throttling sources keeps post-saturation
    # throughput near its peak instead of collapsing.
    assert (
        results["tight"].achieved_utilization
        >= results["loose"].achieved_utilization
    )
