"""Paper Figure 5: local traffic (radius-3 neighbourhood, 0.4 locality).

Asserts the figure's distinctive claims: 2pn beats e-cube under local
traffic (the one pattern where it does), nlast has the lowest peak
throughput, the hop schemes lead, and nbc at least matches phop.
"""

from benchmarks.conftest import BENCH_LOADS, active_profile, report
from repro.experiments.paper_figures import check_figure5, figure5


def bench_figure5_local(once):
    profile = active_profile()
    series = once(
        figure5,
        profile=profile,
        offered_loads=BENCH_LOADS,
        radius=3,
        seed=103,
    )
    report(f"Figure 5 — local traffic ({profile} profile)", series,
           check_figure5(series))
