"""Ablation: message length (paper §3 parameter discussion).

The paper fixes messages at 16 flits while noting that 16-, 20- and
24-flit messages are all common in the literature.  This ablation sweeps
message length for e-cube and nbc and checks the two structural
expectations: latency grows roughly linearly with length at low load
(the pipelined m_l + d - 1 term), and nbc's throughput advantage over
e-cube persists across lengths.
"""

import dataclasses

from benchmarks.conftest import active_profile
from repro.experiments.profiles import apply_profile
from repro.experiments.runner import run_point
from repro.simulator.config import SimulationConfig

LENGTHS = (8, 16, 24)


def bench_message_length(once):
    profile = active_profile()
    base = apply_profile(SimulationConfig(seed=110), profile)

    def run():
        results = {}
        for length in LENGTHS:
            for name, load in (("ecube", 0.7), ("nbc", 0.7)):
                results[(name, length)] = run_point(
                    dataclasses.replace(
                        base,
                        algorithm=name,
                        message_length=length,
                        offered_load=load,
                    )
                )
            results[("low", length)] = run_point(
                dataclasses.replace(
                    base,
                    algorithm="ecube",
                    message_length=length,
                    offered_load=0.05,
                )
            )
        return results

    results = once(run)
    print(f"\nMessage-length ablation ({profile} profile):")
    for length in LENGTHS:
        low = results[("low", length)].average_latency
        ecube = results[("ecube", length)]
        nbc = results[("nbc", length)]
        print(
            f"  m_l={length:2d}: low-load latency={low:6.1f}  "
            f"ecube@0.7 util={ecube.achieved_utilization:.3f}  "
            f"nbc@0.7 util={nbc.achieved_utilization:.3f}"
        )
    # Low-load latency tracks the pipelined term (m_l + d_bar - 1).
    low8 = results[("low", 8)].average_latency
    low24 = results[("low", 24)].average_latency
    assert low24 - low8 == _approx(16, rel=0.35)
    # nbc's advantage holds for every message length.
    for length in LENGTHS:
        assert (
            results[("nbc", length)].achieved_utilization
            > results[("ecube", length)].achieved_utilization
        )


def _approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
