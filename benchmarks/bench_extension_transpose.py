"""Extension: Glass & Ni's transpose counter-claim (paper Section 3.4).

The paper concedes that turn-model algorithms like nlast beat e-cube "for
other types of nonuniform traffic such as matrix transpose" (Glass & Ni's
own result, on meshes).  This extension experiment runs matrix-transpose
traffic on a 2-D mesh — the setting of the original claim — and checks
that nlast's partial adaptivity does pay off there, completing the
paper's discussion with data.
"""

import dataclasses

from benchmarks.conftest import active_profile
from repro.experiments.profiles import apply_profile
from repro.experiments.runner import run_point
from repro.simulator.config import SimulationConfig


def bench_transpose_on_mesh(once):
    profile = active_profile()
    base = apply_profile(
        SimulationConfig(
            topology="mesh", traffic="transpose", offered_load=0.5, seed=108
        ),
        profile,
    )

    def run():
        return {
            name: run_point(dataclasses.replace(base, algorithm=name))
            for name in ("ecube", "nlast", "nbc")
        }

    results = once(run)
    print(f"\nMatrix transpose on a mesh ({profile} profile, load 0.5):")
    for name, result in results.items():
        print(
            f"  {name:>5}: util={result.achieved_utilization:.3f}  "
            f"latency={result.average_latency:7.1f}"
        )
    assert (
        results["nlast"].achieved_utilization
        > results["ecube"].achieved_utilization
    ), "Glass & Ni: turn-model adaptivity should win on transpose traffic"
