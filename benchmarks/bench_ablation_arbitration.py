"""Ablation: how much priority should the channel multiplexer enforce?

The paper leaves open "if the extensive amount of priority information
used by phop is indeed necessary" (§4).  The hop schemes already encode
progress in the virtual-channel class; this ablation additionally lets
the physical-channel multiplexer *act* on it — strict
highest-class-first arbitration instead of fair round-robin — and
measures the effect on phop and nbc at heavy uniform load.  (Either
policy preserves deadlock freedom: arbitration order never adds wait-for
edges.)
"""

import dataclasses

from benchmarks.conftest import active_profile
from repro.experiments.profiles import apply_profile
from repro.experiments.runner import run_point
from repro.simulator.config import SimulationConfig


def bench_channel_arbitration(once):
    profile = active_profile()
    base = apply_profile(
        SimulationConfig(offered_load=0.8, seed=111), profile
    )

    def run():
        results = {}
        for algorithm in ("phop", "nbc"):
            for policy in ("round_robin", "highest_class"):
                results[(algorithm, policy)] = run_point(
                    dataclasses.replace(
                        base, algorithm=algorithm, mux_policy=policy
                    )
                )
        return results

    results = once(run)
    print(f"\nChannel-arbitration ablation at load 0.8 ({profile}):")
    for (algorithm, policy), result in results.items():
        print(
            f"  {algorithm:>4} / {policy:<13}: "
            f"util={result.achieved_utilization:.3f}  "
            f"latency={result.average_latency:7.1f}  "
            f"p99={result.latency_percentiles.get(99, 0):6.0f}"
        )
    # Both policies must sustain heavy load; report the difference rather
    # than assert a winner (the paper leaves the question open).
    for key, result in results.items():
        assert result.achieved_utilization > 0.3, key
