"""Ablation: virtual-channel load balance (nbc vs nhop vs phop).

The paper attributes nbc's advantage to spreading messages across
virtual-channel classes via bonus cards.  This ablation measures the
per-class flit distribution of the three hop schemes under identical
uniform load and asserts nbc's is the most even (lowest coefficient of
variation), confirming the mechanism and not just the outcome.
"""

import dataclasses

from benchmarks.conftest import active_profile
from repro.analysis.vc_usage import (
    coefficient_of_variation,
    usage_fractions,
)
from repro.experiments.profiles import apply_profile
from repro.experiments.runner import run_point
from repro.simulator.config import SimulationConfig


def bench_vc_balance(once):
    profile = active_profile()
    base = apply_profile(
        SimulationConfig(offered_load=0.5, seed=105), profile
    )

    def run():
        results = {}
        for name in ("phop", "nhop", "nbc"):
            results[name] = run_point(
                dataclasses.replace(base, algorithm=name)
            )
        return results

    results = once(run)
    print(f"\nVC-class usage under uniform load 0.5 ({profile} profile):")
    cvs = {}
    for name, result in results.items():
        fractions = usage_fractions(result.vc_class_usage)
        cvs[name] = coefficient_of_variation(result.vc_class_usage)
        shares = " ".join(f"{f:.2f}" for f in fractions)
        print(f"  {name:>5}: cv={cvs[name]:.2f}  shares=[{shares}]")
    assert cvs["nbc"] < cvs["nhop"], (
        "bonus cards must even out class usage relative to nhop"
    )
    assert cvs["nbc"] < cvs["phop"]
