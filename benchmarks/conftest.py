"""Shared helpers for the benchmark suite.

Every paper artifact (Figures 3-5 and the Section 3.4 VCT experiment) has
one benchmark that regenerates its series, prints the latency/throughput
tables, and asserts the paper's qualitative claims (the *shape checks*).

The network/sampling scale is selected by the ``REPRO_PROFILE`` environment
variable (see :mod:`repro.experiments.profiles`):

* default for benchmarks: ``quick`` — 8x8 torus, minutes for the suite;
* ``scaled`` — 8x8 with the full convergence discipline;
* ``paper`` — the 16x16 torus of the paper (slow: tens of minutes per
  figure in pure Python; use for documented full runs).
"""

from __future__ import annotations

import os
from typing import Sequence

import pytest

from repro.experiments.paper_figures import format_checks

#: Offered loads used by the figure benchmarks (a subset of the paper's
#: ladder keeps the default suite fast while spanning the full range).
BENCH_LOADS: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9)


def active_profile(default: str = "quick") -> str:
    from repro.experiments.profiles import PROFILES

    name = os.environ.get("REPRO_PROFILE", default)
    if name not in PROFILES:
        raise RuntimeError(f"unknown REPRO_PROFILE {name!r}")
    return name


def report(title: str, series, checks) -> None:
    """Print a figure's tables and shape checks, then assert them."""
    from repro.experiments.tables import format_figure, peak_summary

    print()
    print(format_figure(series, title))
    print()
    print(peak_summary(series))
    print()
    print(format_checks(checks))
    failed = [claim for claim, passed in checks if not passed]
    assert not failed, f"shape checks failed: {failed}"


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    Simulation sweeps are far too slow for statistical repetition; one
    timed round per artifact keeps ``--benchmark-only`` meaningful without
    multiplying the runtime.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
