"""Paper Section 3.4: the virtual cut-through diagnostic experiment.

The paper explains 2pn's poor wormhole showing by rerunning 2pn, nbc and
e-cube under virtual cut-through: with blocked packets buffered out of the
network, 2pn performs as well as nbc and better than e-cube — so the
deficit is a wormhole-specific penalty for routing without hop-priority
information.  This benchmark regenerates that comparison.
"""

from benchmarks.conftest import BENCH_LOADS, active_profile, report
from repro.experiments.paper_figures import check_vct, vct_comparison


def bench_vct_section34(once):
    profile = active_profile()
    series = once(
        vct_comparison,
        profile=profile,
        offered_loads=BENCH_LOADS,
        algorithms=("ecube", "2pn", "nbc"),
        seed=104,
    )
    report(
        f"Section 3.4 — virtual cut-through rerun ({profile} profile)",
        series,
        check_vct(series),
    )
