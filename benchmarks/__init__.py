"""Benchmark suite regenerating the paper artifacts."""
