"""Paper Figure 3: uniform traffic of 16-flit worms on a 2-D torus.

Regenerates both panels (average latency and achieved channel utilization
vs offered load) for all six algorithms and asserts the claims the paper
draws from the figure: hop schemes far above e-cube, e-cube at least
matching nlast, equal low-load latencies, phop >= nhop.
"""

from benchmarks.conftest import BENCH_LOADS, active_profile, report
from repro.experiments.paper_figures import check_figure3, figure3


def bench_figure3_uniform(once):
    profile = active_profile()
    series = once(
        figure3, profile=profile, offered_loads=BENCH_LOADS, seed=101
    )
    report(f"Figure 3 — uniform traffic ({profile} profile)", series,
           check_figure3(series))
