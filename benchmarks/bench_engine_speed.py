"""Engine micro-benchmarks: simulated cycles per second.

Not a paper artifact — these track the simulator's own performance so
regressions in the hot paths (routing, channel multiplexing, flit
movement) are visible.  Two entry points:

* **pytest-benchmark** (``pytest benchmarks/bench_engine_speed.py
  --benchmark-only``): statistical multi-round timing of steady-state
  stepping and engine construction.
* **script mode** (``python benchmarks/bench_engine_speed.py`` or the
  installed ``repro-bench``): the measurement suite itself lives in
  :mod:`repro.benchmarks.engine_speed` — congested and idle operating
  points for every paper algorithm, machine-readable
  ``BENCH_engine_speed.json`` output, and a ``--compare`` regression
  gate used by CI's perf-smoke job.
"""

import sys

import pytest

from repro.benchmarks.engine_speed import main, warm_engine
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine


@pytest.mark.parametrize("algorithm", ["ecube", "2pn", "nbc", "phop"])
def bench_steady_state_cycles(benchmark, algorithm):
    engine = warm_engine(algorithm, offered_load=0.6)
    benchmark.pedantic(
        engine.run_cycles, args=(200,), rounds=5, iterations=1
    )
    assert engine.conservation_check()


def bench_low_load_cycles(benchmark):
    engine = warm_engine("ecube", offered_load=0.05)
    benchmark.pedantic(
        engine.run_cycles, args=(500,), rounds=5, iterations=1
    )
    assert engine.conservation_check()


def bench_engine_construction(benchmark):
    """Fabric + traffic analytics setup cost for the paper's 16x16 torus."""
    config = SimulationConfig(algorithm="phop", seed=1)

    def build():
        return Engine(config)

    engine = benchmark.pedantic(build, rounds=3, iterations=1)
    assert engine.fabric.num_vcs == 17


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
