"""Engine micro-benchmarks: simulated cycles per second.

Not a paper artifact — these track the simulator's own performance so
regressions in the hot paths (routing, channel multiplexing, flit
movement) are visible.  Two entry points:

* **pytest-benchmark** (``pytest benchmarks/bench_engine_speed.py
  --benchmark-only``): statistical multi-round timing of steady-state
  stepping and engine construction.
* **script mode** (``python benchmarks/bench_engine_speed.py [--quick]
  [--output PATH]``): times every paper algorithm at a congested and an
  idle operating point and writes machine-readable
  ``BENCH_engine_speed.json`` — cycles/sec and flit-events/sec per
  algorithm plus python/platform/git metadata — so this and future PRs
  have a tracked performance trajectory.  CI runs it in quick mode and
  uploads the JSON as an artifact.
"""

import argparse
import datetime
import json
import platform
import subprocess
import sys
import time

import pytest

from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine

#: Script-mode measurement matrix: one congested point per algorithm.
SPEED_ALGORITHMS = ("ecube", "nlast", "2pn", "phop", "nhop", "nbc")


def _warm_engine(algorithm: str, offered_load: float) -> Engine:
    config = SimulationConfig(
        radix=8,
        n_dims=2,
        algorithm=algorithm,
        offered_load=offered_load,
        seed=42,
    )
    engine = Engine(config)
    engine.run_cycles(1500)  # reach steady state before timing
    return engine


@pytest.mark.parametrize("algorithm", ["ecube", "2pn", "nbc", "phop"])
def bench_steady_state_cycles(benchmark, algorithm):
    engine = _warm_engine(algorithm, offered_load=0.6)
    benchmark.pedantic(
        engine.run_cycles, args=(200,), rounds=5, iterations=1
    )
    assert engine.conservation_check()


def bench_low_load_cycles(benchmark):
    engine = _warm_engine("ecube", offered_load=0.05)
    benchmark.pedantic(
        engine.run_cycles, args=(500,), rounds=5, iterations=1
    )
    assert engine.conservation_check()


def bench_engine_construction(benchmark):
    """Fabric + traffic analytics setup cost for the paper's 16x16 torus."""
    config = SimulationConfig(algorithm="phop", seed=1)

    def build():
        return Engine(config)

    engine = benchmark.pedantic(build, rounds=3, iterations=1)
    assert engine.fabric.num_vcs == 17


# ----------------------------------------------------------------------
# script mode: the persisted BENCH_engine_speed.json baseline
# ----------------------------------------------------------------------


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _time_engine(
    algorithm: str, offered_load: float, warmup: int, cycles: int
) -> dict:
    engine = _warm_engine(algorithm, offered_load)
    if warmup != 1500:
        engine.run_cycles(max(0, warmup - 1500))
    flits_before = engine.flits_moved_total
    start = time.perf_counter()
    engine.run_cycles(cycles)
    elapsed = time.perf_counter() - start
    flit_events = engine.flits_moved_total - flits_before
    assert engine.conservation_check()
    return {
        "offered_load": offered_load,
        "timed_cycles": cycles,
        "seconds": round(elapsed, 4),
        "cycles_per_sec": round(cycles / elapsed, 1),
        "flit_events": flit_events,
        "flit_events_per_sec": round(flit_events / elapsed, 1),
    }


def run_speed_suite(quick: bool = False) -> dict:
    """Measure every algorithm; return the JSON-ready report."""
    cycles = 600 if quick else 3000
    report = {
        "benchmark": "bench_engine_speed",
        "schema_version": 1,
        "quick": quick,
        "timestamp_utc": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "network": "8x8 torus, 16-flit worms, seed 42",
        "engines": {},
    }
    for algorithm in SPEED_ALGORITHMS:
        report["engines"][algorithm] = {
            "congested": _time_engine(algorithm, 0.6, 1500, cycles),
        }
    # One idle point: exercises the idle-cycle fast-forward path.
    report["engines"]["ecube"]["idle"] = _time_engine(
        "ecube", 0.02, 1500, cycles * 5
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the engine and write BENCH_engine_speed.json"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter timed windows (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_engine_speed.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_speed_suite(quick=args.quick)
    with open(args.output, "w") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
    for algorithm, runs in report["engines"].items():
        for point, data in runs.items():
            print(
                f"{algorithm:6s} {point:10s} "
                f"{data['cycles_per_sec']:>10.0f} cyc/s  "
                f"{data['flit_events_per_sec']:>12.0f} flit-ev/s"
            )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
