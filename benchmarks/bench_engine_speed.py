"""Engine micro-benchmarks: simulated cycles per second.

Not a paper artifact — these track the simulator's own performance so
regressions in the hot paths (routing, channel multiplexing, flit
movement) are visible.  Uses real multi-round pytest-benchmark timing
since single steps are fast.
"""

import pytest

from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine


def _warm_engine(algorithm: str, offered_load: float) -> Engine:
    config = SimulationConfig(
        radix=8,
        n_dims=2,
        algorithm=algorithm,
        offered_load=offered_load,
        seed=42,
    )
    engine = Engine(config)
    engine.run_cycles(1500)  # reach steady state before timing
    return engine


@pytest.mark.parametrize("algorithm", ["ecube", "2pn", "nbc", "phop"])
def bench_steady_state_cycles(benchmark, algorithm):
    engine = _warm_engine(algorithm, offered_load=0.6)
    benchmark.pedantic(
        engine.run_cycles, args=(200,), rounds=5, iterations=1
    )
    assert engine.conservation_check()


def bench_low_load_cycles(benchmark):
    engine = _warm_engine("ecube", offered_load=0.05)
    benchmark.pedantic(
        engine.run_cycles, args=(500,), rounds=5, iterations=1
    )
    assert engine.conservation_check()


def bench_engine_construction(benchmark):
    """Fabric + traffic analytics setup cost for the paper's 16x16 torus."""
    config = SimulationConfig(algorithm="phop", seed=1)

    def build():
        return Engine(config)

    engine = benchmark.pedantic(build, rounds=3, iterations=1)
    assert engine.fabric.num_vcs == 17
