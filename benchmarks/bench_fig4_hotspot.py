"""Paper Figure 4: 4% hotspot traffic to the max-coordinate node.

Asserts the paper's hotspot claims: the hop schemes keep a large margin
over e-cube, e-cube beats nlast, and nbc at least matches nhop (the
virtual-channel balance effect the paper highlights for hotspot traffic).
"""

from benchmarks.conftest import BENCH_LOADS, active_profile, report
from repro.experiments.paper_figures import check_figure4, figure4


def bench_figure4_hotspot(once):
    profile = active_profile()
    series = once(
        figure4,
        profile=profile,
        offered_loads=BENCH_LOADS,
        hotspot_fraction=0.04,
        seed=102,
    )
    report(f"Figure 4 — 4% hotspot traffic ({profile} profile)", series,
           check_figure4(series))
