"""The paper's virtual-channel inventory (Sections 2 and 4) as a table.

Prints the VC budget per algorithm for the paper's 16x16 torus plus other
radices, checks the quoted numbers (17 / 9 / 9 / 4), and times the routing
functions themselves — candidate generation is the per-hop hardware cost
the paper's complexity discussion is about.
"""

import pytest

from repro.routing.registry import ALGORITHM_NAMES, make_algorithm
from repro.topology.torus import Torus

#: Paper-quoted virtual-channel budgets for the 16x16 torus.
PAPER_BUDGETS = {"ecube": 2, "2pn": 4, "phop": 17, "nhop": 9, "nbc": 9}


def bench_vc_inventory_table(once):
    def build():
        rows = {}
        for radix in (4, 8, 16):
            torus = Torus(radix, 2)
            rows[radix] = {
                name: make_algorithm(name, torus).num_virtual_channels
                for name in ALGORITHM_NAMES
            }
        return rows

    rows = once(build)
    print("\nVirtual channels per physical channel (2-D torus):")
    header = "radix  " + "  ".join(f"{n:>6}" for n in ALGORITHM_NAMES)
    print(header)
    for radix, row in rows.items():
        print(
            f"{radix:>5}  "
            + "  ".join(f"{row[name]:>6}" for name in ALGORITHM_NAMES)
        )
    for name, expected in PAPER_BUDGETS.items():
        assert rows[16][name] == expected, (
            f"{name}: paper says {expected} VCs on 16^2, got {rows[16][name]}"
        )


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def bench_candidate_generation(benchmark, name):
    """Routing-function cost per hop decision (the node-complexity angle)."""
    torus = Torus(16, 2)
    algorithm = make_algorithm(name, torus)
    pairs = [
        (src, dst)
        for src in range(0, torus.num_nodes, 37)
        for dst in range(0, torus.num_nodes, 41)
        if src != dst
    ]
    states = [algorithm.new_state(src, dst) for src, dst in pairs]

    def decide():
        total = 0
        for (src, dst), state in zip(pairs, states):
            total += len(algorithm.candidates(state, src, dst))
        return total

    assert benchmark(decide) > 0
