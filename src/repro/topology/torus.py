"""k-ary n-cube (torus) topology.

Every node has exactly ``2 * n_dims`` outgoing unidirectional links.  The
paper's main subject network is the 16-ary 2-cube ("16^2"), a 16x16 torus
with 256 nodes and 1024 unidirectional links.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.topology import ring
from repro.topology.base import Topology


class Torus(Topology):
    """A k-ary n-cube with wrap-around links in every dimension."""

    def _neighbor_coord(self, coord: int, direction: int) -> Optional[int]:
        return ring.step(coord, direction, self.radix)

    def _hop_wraps(self, coord: int, direction: int) -> bool:
        return ring.crosses_wrap(coord, direction, self.radix)

    def dim_distance(self, src: int, dst: int, dim: int) -> int:
        return ring.ring_distance(
            self.coords(src)[dim], self.coords(dst)[dim], self.radix
        )

    def minimal_directions(
        self, src: int, dst: int, dim: int
    ) -> Tuple[int, ...]:
        return ring.ring_directions(
            self.coords(src)[dim], self.coords(dst)[dim], self.radix
        )

    @property
    def diameter(self) -> int:
        return self.n_dims * (self.radix // 2)

    def max_negative_hops(self) -> int:
        """Maximum negative hops any message can take (even radix only).

        With the parity 2-coloring, at most every other hop of a minimal
        path is negative, so the bound is ``ceil(diameter / 2)`` — the
        paper's ``ceil(n * floor(k/2) / 2)`` (8 for a 16x16 torus).
        """
        return (self.diameter + 1) // 2

    def _is_vertex_transitive(self) -> bool:
        return True


__all__ = ["Torus"]
