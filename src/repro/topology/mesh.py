"""n-dimensional mesh topology (no wrap-around links).

The paper's simulator also handles meshes; we provide them both for parity
with the paper and because several cross-checks the authors cite (Glass &
Ni's north-last results, Song's e-cube throughput) were measured on meshes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.topology.base import Topology


class Mesh(Topology):
    """A k-ary n-dimensional mesh: a torus without the wrap-around edges."""

    def _neighbor_coord(self, coord: int, direction: int) -> Optional[int]:
        nxt = coord + direction
        if 0 <= nxt < self.radix:
            return nxt
        return None

    def _hop_wraps(self, coord: int, direction: int) -> bool:
        return False  # a mesh has no wrap-around edges

    def dim_distance(self, src: int, dst: int, dim: int) -> int:
        return abs(self.coords(src)[dim] - self.coords(dst)[dim])

    def minimal_directions(
        self, src: int, dst: int, dim: int
    ) -> Tuple[int, ...]:
        src_c = self.coords(src)[dim]
        dst_c = self.coords(dst)[dim]
        if src_c < dst_c:
            return (1,)
        if src_c > dst_c:
            return (-1,)
        return ()

    @property
    def diameter(self) -> int:
        return self.n_dims * (self.radix - 1)

    def max_negative_hops(self) -> int:
        """Maximum negative (odd-to-even) hops on any minimal mesh path."""
        return (self.diameter + 1) // 2


__all__ = ["Mesh"]
