"""Arithmetic on a single k-node ring (one dimension of a torus).

Directions are +1 (increasing coordinate, wrapping k-1 -> 0) and -1
(decreasing coordinate, wrapping 0 -> k-1).
"""

from __future__ import annotations

from typing import Tuple

PLUS = 1
MINUS = -1


def ring_offset(src: int, dst: int, radix: int) -> int:
    """Signed minimal offset from *src* to *dst* on a *radix*-node ring.

    The result is in ``(-radix/2, radix/2]``: ties (distance exactly k/2)
    are reported as the positive offset, but :func:`ring_directions` still
    reports both directions as minimal in that case.

    >>> ring_offset(1, 3, 8)
    2
    >>> ring_offset(1, 7, 8)
    -2
    >>> ring_offset(0, 4, 8)
    4
    """
    delta = (dst - src) % radix
    if delta > radix // 2:
        delta -= radix
    elif delta == radix - delta:  # only possible for even radix, tie
        delta = radix // 2
    return delta


def ring_distance(src: int, dst: int, radix: int) -> int:
    """Minimal hop count from *src* to *dst* on the ring."""
    delta = (dst - src) % radix
    return min(delta, radix - delta)


def ring_directions(src: int, dst: int, radix: int) -> Tuple[int, ...]:
    """Directions (+1/-1) along which one hop reduces ring distance.

    Returns an empty tuple when already aligned, both directions at an
    exact half-ring tie (even radix only), and a single direction otherwise.

    >>> ring_directions(0, 3, 8)
    (1,)
    >>> ring_directions(0, 6, 8)
    (-1,)
    >>> ring_directions(0, 4, 8)
    (1, -1)
    >>> ring_directions(2, 2, 8)
    ()
    """
    if src == dst:
        return ()
    forward = (dst - src) % radix
    backward = radix - forward
    if forward < backward:
        return (PLUS,)
    if backward < forward:
        return (MINUS,)
    return (PLUS, MINUS)


def step(coord: int, direction: int, radix: int) -> int:
    """Coordinate after one hop in *direction* (with wrap-around)."""
    return (coord + direction) % radix


def crosses_wrap(coord: int, direction: int, radix: int) -> bool:
    """True if a hop from *coord* in *direction* uses the wrap-around edge.

    The wrap-around ("dateline") edges of a ring are k-1 -> 0 in the +
    direction and 0 -> k-1 in the - direction.  Crossing one is what forces
    a message onto the next virtual-channel class under the e-cube/nlast
    dateline scheme.
    """
    if direction == PLUS:
        return coord == radix - 1
    return coord == 0


__all__ = [
    "MINUS",
    "PLUS",
    "crosses_wrap",
    "ring_directions",
    "ring_distance",
    "ring_offset",
    "step",
]
