"""Network topologies: k-ary n-cubes (tori) and n-dimensional meshes.

The paper evaluates 16-ary 2-cubes (16x16 tori, written "16^2"), but its
simulator supports k-ary n-cubes and meshes generally; so does this package.
"""

from repro.topology.base import Link, Topology
from repro.topology.coords import coords_to_node, node_to_coords
from repro.topology.mesh import Mesh
from repro.topology.ring import (
    ring_directions,
    ring_distance,
    ring_offset,
)
from repro.topology.torus import Torus

__all__ = [
    "Link",
    "Mesh",
    "Topology",
    "Torus",
    "coords_to_node",
    "node_to_coords",
    "ring_directions",
    "ring_distance",
    "ring_offset",
]
