"""Node addressing for k-ary n-dimensional grids.

A node is identified either by an integer id in ``[0, k**n)`` or by an
n-tuple of per-dimension coordinates.  ``coords[i]`` is the coordinate in
dimension *i*; dimension 0 is the least-significant digit of the id.  This
matches the paper's notation ``x = (x_{n-1}, ..., x_0)`` read right to left.
"""

from __future__ import annotations

from typing import Tuple

from repro.util.errors import TopologyError

Coords = Tuple[int, ...]


def node_to_coords(node: int, radix: int, n_dims: int) -> Coords:
    """Decompose integer node id into per-dimension coordinates.

    >>> node_to_coords(5, 4, 2)   # 5 = 1*4 + 1
    (1, 1)
    >>> node_to_coords(7, 4, 2)   # 7 = 1*4 + 3
    (3, 1)
    """
    if not 0 <= node < radix**n_dims:
        raise TopologyError(
            f"node id {node} out of range for a {radix}-ary {n_dims}-cube"
        )
    coords = []
    for _ in range(n_dims):
        coords.append(node % radix)
        node //= radix
    return tuple(coords)


def coords_to_node(coords: Coords, radix: int) -> int:
    """Compose per-dimension coordinates into an integer node id.

    >>> coords_to_node((3, 1), 4)
    7
    """
    node = 0
    for coord in reversed(coords):
        if not 0 <= coord < radix:
            raise TopologyError(
                f"coordinate {coord} out of range for radix {radix}"
            )
        node = node * radix + coord
    return node


def parity(coords: Coords) -> int:
    """Node parity: 0 if the coordinate sum is even, 1 if odd.

    For even radix this is the 2-coloring of the torus used by the
    negative-hop scheme (adjacent nodes always differ in parity).
    """
    return sum(coords) & 1


__all__ = ["Coords", "coords_to_node", "node_to_coords", "parity"]
