"""Topology abstraction shared by torus and mesh networks.

A topology is a directed graph of unidirectional *links* between nodes (the
paper assumes two unidirectional links between each pair of adjacent nodes).
Each link knows which dimension it runs along, its direction, and whether it
is a wrap-around ("dateline") edge — the latter drives virtual-channel class
selection for the e-cube and north-last algorithms on tori.

Links carry a dense integer index so the simulator can store per-link state
in flat lists.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.topology.coords import Coords, coords_to_node, node_to_coords, parity
from repro.util.errors import TopologyError
from repro.util.validation import require


class Link:
    """One unidirectional physical channel of the network."""

    __slots__ = ("index", "src", "dst", "dim", "direction", "wraps")

    def __init__(
        self,
        index: int,
        src: int,
        dst: int,
        dim: int,
        direction: int,
        wraps: bool,
    ) -> None:
        self.index = index
        self.src = src
        self.dst = dst
        self.dim = dim
        self.direction = direction
        self.wraps = wraps

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        wrap = ", wrap" if self.wraps else ""
        return (
            f"Link#{self.index}({self.src}->{self.dst}, "
            f"dim={self.dim}, dir={self.direction:+d}{wrap})"
        )


class Topology(ABC):
    """Base class for k-ary n-dimensional networks with uniform radix."""

    def __init__(self, radix: int, n_dims: int) -> None:
        require(radix >= 2, f"radix must be >= 2, got {radix}")
        require(n_dims >= 1, f"n_dims must be >= 1, got {n_dims}")
        self.radix = radix
        self.n_dims = n_dims
        self.num_nodes = radix**n_dims
        self._links: List[Link] = []
        # (node, dim, direction) -> Link
        self._out: Dict[Tuple[int, int, int], Link] = {}
        self._coords_cache: List[Coords] = [
            node_to_coords(node, radix, n_dims)
            for node in range(self.num_nodes)
        ]
        # Parity is consulted per hop by the negative-hop schemes, so it
        # is a table lookup rather than a per-call coordinate sum.
        self._parity_cache: List[int] = [
            parity(coords) for coords in self._coords_cache
        ]
        # Lazily filled (src, dst) -> minimal hop count memo: distance is
        # recomputed for the same pairs throughout a run (message
        # creation, hop-scheme class budgets), and the pair space is
        # small (num_nodes**2 worst case, only visited pairs stored).
        self._distance_cache: Dict[Tuple[int, int], int] = {}
        self._build_links()

    # -- construction -----------------------------------------------------

    @abstractmethod
    def _neighbor_coord(
        self, coord: int, direction: int
    ) -> Optional[int]:
        """Next coordinate along a dimension, or None at a mesh boundary."""

    @abstractmethod
    def _hop_wraps(self, coord: int, direction: int) -> bool:
        """Whether one hop from *coord* in *direction* uses a wrap edge."""

    def _build_links(self) -> None:
        for node in range(self.num_nodes):
            coords = self._coords_cache[node]
            for dim in range(self.n_dims):
                for direction in (1, -1):
                    nxt = self._neighbor_coord(coords[dim], direction)
                    if nxt is None:
                        continue
                    dst_coords = list(coords)
                    dst_coords[dim] = nxt
                    dst = coords_to_node(tuple(dst_coords), self.radix)
                    link = Link(
                        index=len(self._links),
                        src=node,
                        dst=dst,
                        dim=dim,
                        direction=direction,
                        wraps=self._hop_wraps(coords[dim], direction),
                    )
                    self._links.append(link)
                    self._out[(node, dim, direction)] = link

    # -- geometry ---------------------------------------------------------

    def coords(self, node: int) -> Coords:
        """Per-dimension coordinates of *node*."""
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"node id {node} out of range")
        return self._coords_cache[node]

    def node(self, coords: Coords) -> int:
        """Integer node id for *coords*."""
        require(
            len(coords) == self.n_dims,
            f"expected {self.n_dims} coordinates, got {len(coords)}",
        )
        return coords_to_node(coords, self.radix)

    def parity(self, node: int) -> int:
        """0 for even nodes, 1 for odd nodes (coordinate-sum parity)."""
        return self._parity_cache[node]

    @abstractmethod
    def dim_distance(self, src: int, dst: int, dim: int) -> int:
        """Minimal hops between *src* and *dst* along one dimension."""

    @abstractmethod
    def minimal_directions(
        self, src: int, dst: int, dim: int
    ) -> Tuple[int, ...]:
        """Directions in *dim* along which one hop moves *src* nearer *dst*."""

    def distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        cached = self._distance_cache.get((src, dst))
        if cached is not None:
            return cached
        total = sum(
            self.dim_distance(src, dst, dim) for dim in range(self.n_dims)
        )
        self._distance_cache[(src, dst)] = total
        return total

    @property
    @abstractmethod
    def diameter(self) -> int:
        """Maximum minimal-path length between any node pair."""

    def average_distance(self) -> float:
        """Mean minimal distance over ordered pairs of distinct nodes.

        For uniform traffic this is the paper's average diameter (8.03 for
        a 16x16 torus).
        """
        total = 0
        src = 0  # vertex-transitive for torus; meshes override
        if self._is_vertex_transitive():
            for dst in range(self.num_nodes):
                if dst != src:
                    total += self.distance(src, dst)
            return total / (self.num_nodes - 1)
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                if dst != src:
                    total += self.distance(src, dst)
        return total / (self.num_nodes * (self.num_nodes - 1))

    def _is_vertex_transitive(self) -> bool:
        return False

    # -- links ------------------------------------------------------------

    @property
    def links(self) -> Sequence[Link]:
        """All unidirectional links, indexed by ``Link.index``."""
        return self._links

    @property
    def num_links(self) -> int:
        return len(self._links)

    def out_link(self, node: int, dim: int, direction: int) -> Optional[Link]:
        """The link leaving *node* along *dim* in *direction*, if any."""
        return self._out.get((node, dim, direction))

    def out_links(self, node: int) -> Iterable[Link]:
        """All links leaving *node*."""
        for dim in range(self.n_dims):
            for direction in (1, -1):
                link = self._out.get((node, dim, direction))
                if link is not None:
                    yield link

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(radix={self.radix}, "
            f"n_dims={self.n_dims}, nodes={self.num_nodes}, "
            f"links={self.num_links})"
        )


__all__ = ["Link", "Topology"]
