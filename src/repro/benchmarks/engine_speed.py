"""Engine speed suite: simulated cycles per second, per algorithm.

Measures every paper algorithm on an 8x8 torus (16-flit worms, seed 42)
at several operating points:

* **congested** (offered load 0.6, ideal flow control): the saturated
  regime the activity-tracked scheduler targets — most virtual channels
  blocked, routing queues deep.
* **idle** (offered load 0.02): dominated by the idle-cycle
  fast-forward path; doubles as a machine-speed calibration point for
  cross-machine comparisons.
* **congested_conservative**: the congested point under the
  conservative (snapshot-based) node model — the object-engine baseline
  that the batch backend is compared against, since batch execution
  requires conservative flow control.
* **batch_b1 / batch_b8 / batch_b32**: the same conservative congested
  point run on the vectorized batch backend
  (:class:`repro.simulator.batch.BatchEngine`) with 1, 8 and 32
  lockstep seeds.  The headline figure is ``aggregate_cycles_per_sec``
  (lanes x lane-cycles per wall second); each row also records its
  speedup over the object conservative baseline measured in the same
  report.
* **batch_relaxed_b1 / batch_relaxed_b8 / batch_relaxed_b32**: the
  batch points again under ``identity="relaxed"`` — batched rng draws
  and table-driven routing kernels instead of the strict mode's
  bit-identical scalar seams (see ``docs/performance.md``, "identity
  modes").  Relaxed runs are statistically, not bitwise, equivalent to
  strict runs, so these rows measure what the looser contract buys.

The report is written to ``BENCH_engine_speed.json`` and committed, so
the repo carries its own performance trajectory.  ``--compare BASELINE``
turns the run into a regression gate covering both backends: current
congested throughput (object rows) and batch aggregate throughput are
checked against the baseline after rescaling by the idle-point speed
ratio (so a slower CI machine does not read as a regression), and the
process exits non-zero when any gated row falls more than ``--tolerance``
below the rescaled baseline.  When the baseline was recorded on a
*different host* (the ``host`` metadata blocks differ), idle-point
calibration is the only defence and can miss cache/SIMD differences, so
the gate downgrades regressions to warnings instead of hard-failing.

Timing noise: on shared machines single runs can swing tens of percent.
``--repeats N`` times each point N times and keeps the fastest
observation — the standard best-of-N protocol for throughput
measurements, where interference only ever slows a run down.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy

from repro.simulator.batch import BatchEngine
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine

#: Measurement matrix: congested/idle/batch points per algorithm.
SPEED_ALGORITHMS = ("ecube", "nlast", "2pn", "phop", "nhop", "nbc")

CONGESTED_LOAD = 0.6
IDLE_LOAD = 0.02
WARMUP_CYCLES = 1500

#: Lockstep batch widths measured per algorithm.
BATCH_SIZES = (1, 8, 32)

#: Rows checked by the --compare regression gate, with the throughput
#: field each is judged on.  Object and batch backends are both gated;
#: congested batch rows are additionally held to their flit-event
#: throughput, which catches regressions that cycle rates mask (e.g. a
#: change that stalls traffic, moving fewer flits per cycle).  Older
#: baselines lacking a gated field are skipped with a warning.
_GATED_ROWS = (
    ("congested", "cycles_per_sec"),
    ("congested_conservative", "cycles_per_sec"),
    ("batch_b32", "aggregate_cycles_per_sec"),
    ("batch_b32", "flit_events_per_sec"),
    ("batch_relaxed_b32", "aggregate_cycles_per_sec"),
    ("batch_relaxed_b32", "flit_events_per_sec"),
)


def host_info() -> Dict[str, object]:
    """Machine metadata making the committed report portable.

    The compare gate checks this block for equality: numbers measured
    on a different host are treated as advisory, not gating.
    """
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": numpy.__version__,
    }


def speed_config(
    algorithm: str, offered_load: float, flow_control: str = "ideal"
) -> SimulationConfig:
    """The suite's canonical network point for one algorithm."""
    return SimulationConfig(
        radix=8,
        n_dims=2,
        algorithm=algorithm,
        offered_load=offered_load,
        seed=42,
        flow_control=flow_control,
    )


def warm_engine(
    algorithm: str, offered_load: float, flow_control: str = "ideal"
) -> Engine:
    """A steady-state engine at the suite's canonical network point."""
    engine = Engine(speed_config(algorithm, offered_load, flow_control))
    engine.run_cycles(WARMUP_CYCLES)
    return engine


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def time_engine(
    algorithm: str,
    offered_load: float,
    cycles: int,
    repeats: int = 1,
    flow_control: str = "ideal",
) -> Dict[str, object]:
    """Time one object-engine point; best-of-*repeats* observation."""
    best: Optional[Dict[str, object]] = None
    for _ in range(max(1, repeats)):
        engine = warm_engine(algorithm, offered_load, flow_control)
        flits_before = engine.flits_moved_total
        start = time.perf_counter()
        engine.run_cycles(cycles)
        elapsed = time.perf_counter() - start
        flit_events = engine.flits_moved_total - flits_before
        assert engine.conservation_check()
        run = {
            "offered_load": offered_load,
            "timed_cycles": cycles,
            "seconds": round(elapsed, 4),
            "cycles_per_sec": round(cycles / elapsed, 1),
            "flit_events": flit_events,
            "flit_events_per_sec": round(flit_events / elapsed, 1),
        }
        if best is None or run["cycles_per_sec"] > best["cycles_per_sec"]:
            best = run
    assert best is not None
    if repeats > 1:
        best["repeats"] = repeats
    return best


def time_batch(
    algorithm: str,
    offered_load: float,
    cycles: int,
    lanes: int,
    repeats: int = 1,
    identity: str = "strict",
) -> Dict[str, object]:
    """Time one lockstep batch point; best-of-*repeats* observation.

    All lanes share one config and differ only by seed (42, 43, ...),
    matching how ``repro-sweep --backend batch`` claims seed-batches.
    The headline is ``aggregate_cycles_per_sec``: summed simulated
    cycles across lanes per wall second.  *identity* selects the batch
    backend's execution contract: ``"strict"`` (bit-identical to the
    object engine) or ``"relaxed"`` (batched rng + vectorized routing,
    statistically equivalent).
    """
    config = SimulationConfig(
        radix=8,
        n_dims=2,
        algorithm=algorithm,
        offered_load=offered_load,
        seed=42,
        flow_control="conservative",
        backend="batch",
        identity=identity,
    )
    seeds = [42 + lane for lane in range(lanes)]
    best: Optional[Dict[str, object]] = None
    for _ in range(max(1, repeats)):
        engine = BatchEngine(config, seeds)
        engine.run_cycles(WARMUP_CYCLES)
        flits_before = sum(
            lane.flits_moved_total for lane in engine.lanes
        )
        start = time.perf_counter()
        engine.run_cycles(cycles)
        elapsed = time.perf_counter() - start
        flit_events = (
            sum(lane.flits_moved_total for lane in engine.lanes)
            - flits_before
        )
        assert all(
            engine.conservation_check(index) for index in range(lanes)
        )
        run = {
            "offered_load": offered_load,
            "lanes": lanes,
            "identity": identity,
            "timed_cycles": cycles,
            "seconds": round(elapsed, 4),
            "lane_cycles_per_sec": round(cycles / elapsed, 1),
            "aggregate_cycles_per_sec": round(
                lanes * cycles / elapsed, 1
            ),
            "flit_events": flit_events,
            "flit_events_per_sec": round(flit_events / elapsed, 1),
        }
        if (
            best is None
            or run["aggregate_cycles_per_sec"]
            > best["aggregate_cycles_per_sec"]
        ):
            best = run
    assert best is not None
    if repeats > 1:
        best["repeats"] = repeats
    return best


def run_speed_suite(
    quick: bool = False, repeats: int = 1
) -> Dict[str, object]:
    """Measure every algorithm; return the JSON-ready report."""
    cycles = 600 if quick else 3000
    engines: Dict[str, Dict[str, object]] = {}
    report: Dict[str, object] = {
        "benchmark": "bench_engine_speed",
        "schema_version": 4,
        "quick": quick,
        "timestamp_utc": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "git_sha": _git_sha(),
        "host": host_info(),
        "network": "8x8 torus, 16-flit worms, seed 42",
        "engines": engines,
    }
    for algorithm in SPEED_ALGORITHMS:
        rows: Dict[str, object] = {
            "congested": time_engine(
                algorithm, CONGESTED_LOAD, cycles, repeats
            ),
            # Idle windows are long (the fast-forward path makes them
            # cheap) so the calibration point is well averaged.
            "idle": time_engine(
                algorithm, IDLE_LOAD, cycles * 5, repeats
            ),
            "congested_conservative": time_engine(
                algorithm,
                CONGESTED_LOAD,
                cycles,
                repeats,
                flow_control="conservative",
            ),
        }
        object_rate = rows["congested_conservative"]["cycles_per_sec"]
        for identity in ("strict", "relaxed"):
            prefix = "batch" if identity == "strict" else "batch_relaxed"
            for lanes in BATCH_SIZES:
                row = time_batch(
                    algorithm,
                    CONGESTED_LOAD,
                    cycles,
                    lanes,
                    repeats,
                    identity=identity,
                )
                # Speedup over the object engine running the same
                # conservative congested point, one seed at a time.
                row["speedup_vs_object"] = round(
                    row["aggregate_cycles_per_sec"] / object_rate, 2
                )
                rows[f"{prefix}_b{lanes}"] = row
        engines[algorithm] = rows
    return report


# ----------------------------------------------------------------------
# baseline comparison (the CI regression gate)
# ----------------------------------------------------------------------


def _idle_scale(
    current: Dict[str, object], baseline: Dict[str, object]
) -> Tuple[float, int]:
    """Machine-speed ratio current/baseline from the idle points.

    The idle rows measure the same code on both sides, so their ratio
    is dominated by machine speed, not by engine changes under test.
    The median across algorithms resists a single noisy row.  Falls
    back to 1.0 (strict same-machine comparison) when the baseline
    predates per-algorithm idle rows and shares no idle points.
    """
    ratios: List[float] = []
    baseline_engines = baseline.get("engines", {})
    for algorithm, runs in current.get("engines", {}).items():
        base_runs = baseline_engines.get(algorithm, {})
        cur_idle = runs.get("idle")
        base_idle = base_runs.get("idle")
        if cur_idle and base_idle:
            ratios.append(
                cur_idle["cycles_per_sec"] / base_idle["cycles_per_sec"]
            )
    if not ratios:
        return 1.0, 0
    ratios.sort()
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid], len(ratios)
    return (ratios[mid - 1] + ratios[mid]) / 2, len(ratios)


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float,
) -> Tuple[bool, List[str]]:
    """Gate current throughput against a committed baseline.

    Returns (ok, report lines).  A gated row (object congested rows by
    ``cycles_per_sec``, batch rows by ``aggregate_cycles_per_sec``)
    fails when it falls below ``baseline * machine_scale *
    (1 - tolerance)``.  When the baseline's ``host`` metadata differs
    from this machine's, every would-be failure is downgraded to a
    warning: idle-point rescaling corrects for raw speed but not for
    cache-hierarchy or SIMD differences between hosts, so a committed
    baseline only hard-gates the machine that produced it.
    """
    scale, calibration_points = _idle_scale(current, baseline)
    same_host = current.get("host") == baseline.get("host")
    lines = [
        f"machine-speed scale (idle median over "
        f"{calibration_points} pts): {scale:.3f}",
        f"tolerance: -{tolerance:.0%} vs scaled baseline",
    ]
    if not same_host:
        lines.append(
            "baseline host differs from this machine — regressions "
            "reported as warnings, not failures"
        )
    ok = True
    baseline_engines = baseline.get("engines", {})
    compared = 0
    for algorithm, runs in current.get("engines", {}).items():
        base_runs = baseline_engines.get(algorithm, {})
        for row_name, field in _GATED_ROWS:
            cur = runs.get(row_name)
            base = base_runs.get(row_name)
            if not cur:
                continue
            if not base:
                lines.append(
                    f"{algorithm:6s} {row_name:22s} (no baseline row)"
                )
                continue
            base_value = base.get(field)
            cur_value = cur.get(field)
            if base_value is None or cur_value is None:
                # A row from an older schema can exist without the
                # gated field; skip with a warning instead of failing —
                # regenerating the baseline upgrades it.
                side = "baseline" if base_value is None else "current"
                lines.append(
                    f"{algorithm:6s} {row_name:22s} "
                    f"({side} row lacks {field!r})"
                )
                continue
            compared += 1
            expected = base_value * scale
            floor = expected * (1.0 - tolerance)
            ratio = cur_value / expected
            if cur_value >= floor:
                status = "ok"
            elif same_host:
                status = "REGRESSION"
                ok = False
            else:
                status = "WARN (host differs)"
            unit = (
                "flit-ev/s" if field == "flit_events_per_sec"
                else "cyc/s"
            )
            lines.append(
                f"{algorithm:6s} {row_name:22s} "
                f"{cur_value:>9.0f} {unit} vs expected "
                f"{expected:>9.0f} ({ratio:6.2f}x)  {status}"
            )
    if compared == 0:
        ok = False
        lines.append("no comparable gated rows — failing the gate")
    return ok, lines


def print_report(report: Dict[str, object]) -> None:
    for algorithm, runs in report["engines"].items():
        for point, data in runs.items():
            if "aggregate_cycles_per_sec" in data:
                rate = data["aggregate_cycles_per_sec"]
                extra = f"{data['speedup_vs_object']:>6.2f}x vs object"
            else:
                rate = data["cycles_per_sec"]
                extra = f"{data['flit_events_per_sec']:>12.0f} flit-ev/s"
            print(
                f"{algorithm:6s} {point:22s} {rate:>10.0f} cyc/s  {extra}"
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Time the engine and write BENCH_engine_speed.json",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter timed windows (CI smoke mode)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="time each point N times, keep the fastest (default 1)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_engine_speed.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="compare throughput against a baseline JSON report; exit "
        "1 on same-host regression beyond --tolerance (a baseline from "
        "a different host only warns)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional throughput drop vs the scaled "
        "baseline (default 0.2)",
    )
    args = parser.parse_args(argv)
    report = run_speed_suite(quick=args.quick, repeats=args.repeats)
    with open(args.output, "w") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print_report(report)
    print(f"wrote {args.output}")
    if args.compare:
        with open(args.compare) as stream:
            baseline = json.load(stream)
        ok, lines = compare_reports(report, baseline, args.tolerance)
        print(f"--- compare vs {args.compare} ---")
        for line in lines:
            print(line)
        if not ok:
            print("perf gate: FAIL")
            return 1
        print("perf gate: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
