"""Engine speed suite: simulated cycles per second, per algorithm.

Measures every paper algorithm at two operating points on an 8x8 torus
(16-flit worms, seed 42):

* **congested** (offered load 0.6): the saturated regime the
  activity-tracked scheduler targets — most virtual channels blocked,
  routing queues deep.
* **idle** (offered load 0.02): dominated by the idle-cycle
  fast-forward path; doubles as a machine-speed calibration point for
  cross-machine comparisons.

The report is written to ``BENCH_engine_speed.json`` and committed, so
the repo carries its own performance trajectory.  ``--compare BASELINE``
turns the run into a regression gate: current congested throughput is
checked against the baseline after rescaling by the idle-point speed
ratio (so a slower CI machine does not read as a regression), and the
process exits non-zero when any algorithm falls more than ``--tolerance``
below the rescaled baseline.

Timing noise: on shared machines single runs can swing tens of percent.
``--repeats N`` times each point N times and keeps the fastest
observation — the standard best-of-N protocol for throughput
measurements, where interference only ever slows a run down.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine

#: Measurement matrix: one congested and one idle point per algorithm.
SPEED_ALGORITHMS = ("ecube", "nlast", "2pn", "phop", "nhop", "nbc")

CONGESTED_LOAD = 0.6
IDLE_LOAD = 0.02
WARMUP_CYCLES = 1500


def warm_engine(algorithm: str, offered_load: float) -> Engine:
    """A steady-state engine at the suite's canonical network point."""
    config = SimulationConfig(
        radix=8,
        n_dims=2,
        algorithm=algorithm,
        offered_load=offered_load,
        seed=42,
    )
    engine = Engine(config)
    engine.run_cycles(WARMUP_CYCLES)
    return engine


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def time_engine(
    algorithm: str,
    offered_load: float,
    cycles: int,
    repeats: int = 1,
) -> Dict[str, object]:
    """Time one operating point; best-of-*repeats* observation."""
    best: Optional[Dict[str, object]] = None
    for _ in range(max(1, repeats)):
        engine = warm_engine(algorithm, offered_load)
        flits_before = engine.flits_moved_total
        start = time.perf_counter()
        engine.run_cycles(cycles)
        elapsed = time.perf_counter() - start
        flit_events = engine.flits_moved_total - flits_before
        assert engine.conservation_check()
        run = {
            "offered_load": offered_load,
            "timed_cycles": cycles,
            "seconds": round(elapsed, 4),
            "cycles_per_sec": round(cycles / elapsed, 1),
            "flit_events": flit_events,
            "flit_events_per_sec": round(flit_events / elapsed, 1),
        }
        if best is None or run["cycles_per_sec"] > best["cycles_per_sec"]:
            best = run
    assert best is not None
    if repeats > 1:
        best["repeats"] = repeats
    return best


def run_speed_suite(
    quick: bool = False, repeats: int = 1
) -> Dict[str, object]:
    """Measure every algorithm; return the JSON-ready report."""
    cycles = 600 if quick else 3000
    engines: Dict[str, Dict[str, object]] = {}
    report: Dict[str, object] = {
        "benchmark": "bench_engine_speed",
        "schema_version": 2,
        "quick": quick,
        "timestamp_utc": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "network": "8x8 torus, 16-flit worms, seed 42",
        "engines": engines,
    }
    for algorithm in SPEED_ALGORITHMS:
        engines[algorithm] = {
            "congested": time_engine(
                algorithm, CONGESTED_LOAD, cycles, repeats
            ),
            # Idle windows are long (the fast-forward path makes them
            # cheap) so the calibration point is well averaged.
            "idle": time_engine(
                algorithm, IDLE_LOAD, cycles * 5, repeats
            ),
        }
    return report


# ----------------------------------------------------------------------
# baseline comparison (the CI regression gate)
# ----------------------------------------------------------------------


def _idle_scale(
    current: Dict[str, object], baseline: Dict[str, object]
) -> Tuple[float, int]:
    """Machine-speed ratio current/baseline from the idle points.

    The idle rows measure the same code on both sides, so their ratio
    is dominated by machine speed, not by engine changes under test.
    The median across algorithms resists a single noisy row.  Falls
    back to 1.0 (strict same-machine comparison) when the baseline
    predates per-algorithm idle rows and shares no idle points.
    """
    ratios: List[float] = []
    baseline_engines = baseline.get("engines", {})
    for algorithm, runs in current.get("engines", {}).items():
        base_runs = baseline_engines.get(algorithm, {})
        cur_idle = runs.get("idle")
        base_idle = base_runs.get("idle")
        if cur_idle and base_idle:
            ratios.append(
                cur_idle["cycles_per_sec"] / base_idle["cycles_per_sec"]
            )
    if not ratios:
        return 1.0, 0
    ratios.sort()
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid], len(ratios)
    return (ratios[mid - 1] + ratios[mid]) / 2, len(ratios)


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float,
) -> Tuple[bool, List[str]]:
    """Gate congested throughput against a committed baseline.

    Returns (ok, report lines).  A point fails when its congested
    cycles/sec falls below ``baseline * machine_scale * (1 - tolerance)``.
    """
    scale, calibration_points = _idle_scale(current, baseline)
    lines = [
        f"machine-speed scale (idle median over "
        f"{calibration_points} pts): {scale:.3f}",
        f"tolerance: -{tolerance:.0%} vs scaled baseline",
    ]
    ok = True
    baseline_engines = baseline.get("engines", {})
    compared = 0
    for algorithm, runs in current.get("engines", {}).items():
        cur = runs.get("congested")
        base = baseline_engines.get(algorithm, {}).get("congested")
        if not cur or not base:
            lines.append(f"{algorithm:6s} congested  (no baseline row)")
            continue
        compared += 1
        expected = base["cycles_per_sec"] * scale
        floor = expected * (1.0 - tolerance)
        ratio = cur["cycles_per_sec"] / expected
        status = "ok" if cur["cycles_per_sec"] >= floor else "REGRESSION"
        if status != "ok":
            ok = False
        lines.append(
            f"{algorithm:6s} congested  "
            f"{cur['cycles_per_sec']:>9.0f} cyc/s vs expected "
            f"{expected:>9.0f} ({ratio:6.2f}x)  {status}"
        )
    if compared == 0:
        ok = False
        lines.append("no comparable congested rows — failing the gate")
    return ok, lines


def print_report(report: Dict[str, object]) -> None:
    for algorithm, runs in report["engines"].items():
        for point, data in runs.items():
            print(
                f"{algorithm:6s} {point:10s} "
                f"{data['cycles_per_sec']:>10.0f} cyc/s  "
                f"{data['flit_events_per_sec']:>12.0f} flit-ev/s"
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Time the engine and write BENCH_engine_speed.json",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter timed windows (CI smoke mode)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="time each point N times, keep the fastest (default 1)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_engine_speed.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="compare congested throughput against a baseline JSON "
        "report; exit 1 on regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional congested-throughput drop vs the "
        "scaled baseline (default 0.2)",
    )
    args = parser.parse_args(argv)
    report = run_speed_suite(quick=args.quick, repeats=args.repeats)
    with open(args.output, "w") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print_report(report)
    print(f"wrote {args.output}")
    if args.compare:
        with open(args.compare) as stream:
            baseline = json.load(stream)
        ok, lines = compare_reports(report, baseline, args.tolerance)
        print(f"--- compare vs {args.compare} ---")
        for line in lines:
            print(line)
        if not ok:
            print("perf gate: FAIL")
            return 1
        print("perf gate: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
