"""Installable benchmark suites for the simulator itself.

Not paper artifacts: these track the *simulator's* performance (simulated
cycles per second, flit events per second) so hot-path regressions are
caught by CI.  ``repro-bench`` (see ``engine_speed.main``) is the console
entry point; ``benchmarks/bench_engine_speed.py`` at the repo root wraps
the same suite for pytest-benchmark use.
"""

from repro.benchmarks.engine_speed import run_speed_suite

__all__ = ["run_speed_suite"]
