"""Stratified estimation and the paper's dual convergence criteria.

The paper (Section 3) partitions delivered messages into hop-class strata
and estimates mean latency as a stratified population mean with *a priori*
weights (the exact probability a generated message belongs to each
hop-class, from the traffic pattern's destination distribution — see
Scheaffer et al., "Elementary Survey Sampling").  Two error bounds are
computed, both at 2 standard errors (~95%):

* the stratified estimator's own bound across strata, and
* the bound from the variance of the per-sample mean latencies
  (three or more most-recent samples).

A run converges when **both** bounds fall within 5% of their respective
means; the minimum of three and the maximum of 10-15 samples, as well as
the 5%, are configurable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.stats.counters import SampleRecord


class StratifiedEstimate:
    """A stratified mean-latency estimate with its 95% error bound."""

    __slots__ = ("mean", "error_bound", "stratum_means", "stratum_counts")

    def __init__(
        self,
        mean: float,
        error_bound: float,
        stratum_means: Dict[int, float],
        stratum_counts: Dict[int, int],
    ) -> None:
        self.mean = mean
        self.error_bound = error_bound
        self.stratum_means = stratum_means
        self.stratum_counts = stratum_counts

    @property
    def relative_error(self) -> float:
        """Error bound as a fraction of the mean (inf for a zero mean)."""
        if self.mean <= 0:
            return math.inf
        return self.error_bound / self.mean

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StratifiedEstimate(mean={self.mean:.2f}, "
            f"bound={self.error_bound:.2f})"
        )


def stratified_latency(
    deliveries: Sequence[Tuple[int, int]],
    weights: Dict[int, float],
) -> StratifiedEstimate:
    """Stratified mean latency from pooled (latency, hops) records.

    *weights* maps hop-class -> a-priori probability.  Strata with no
    observations are dropped and the remaining weights renormalized (they
    carry negligible probability in any converged run).  Strata observed
    fewer than twice contribute zero variance.
    """
    sums: Dict[int, float] = {}
    squares: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for latency, hops in deliveries:
        sums[hops] = sums.get(hops, 0.0) + latency
        squares[hops] = squares.get(hops, 0.0) + latency * latency
        counts[hops] = counts.get(hops, 0) + 1
    observed = [hops for hops in weights if counts.get(hops, 0) > 0]
    if not observed:
        return StratifiedEstimate(0.0, math.inf, {}, {})
    total_weight = sum(weights[hops] for hops in observed)
    mean = 0.0
    variance = 0.0
    stratum_means: Dict[int, float] = {}
    for hops in observed:
        n = counts[hops]
        stratum_mean = sums[hops] / n
        stratum_means[hops] = stratum_mean
        weight = weights[hops] / total_weight
        mean += weight * stratum_mean
        if n > 1:
            stratum_var = (squares[hops] - n * stratum_mean**2) / (n - 1)
            stratum_var = max(stratum_var, 0.0)
            variance += weight * weight * stratum_var / n
    return StratifiedEstimate(
        mean, 2.0 * math.sqrt(variance), stratum_means, counts
    )


def sample_means_bound(samples: Sequence[SampleRecord]) -> Tuple[float, float]:
    """(mean of sample means, 2-standard-error bound) over the samples."""
    means = [s.mean_latency() for s in samples if s.delivered > 0]
    if len(means) < 2:
        return (means[0] if means else 0.0), math.inf
    grand = sum(means) / len(means)
    var = sum((m - grand) ** 2 for m in means) / (len(means) - 1)
    return grand, 2.0 * math.sqrt(var / len(means))


class ConvergenceChecker:
    """Applies both of the paper's criteria to the samples gathered so far."""

    def __init__(
        self,
        weights: Dict[int, float],
        relative_error: float = 0.05,
        min_samples: int = 3,
        window: int = 3,
    ) -> None:
        self.weights = weights
        self.relative_error = relative_error
        self.min_samples = min_samples
        #: How many of the most recent samples feed criterion 2.
        self.window = window

    def estimate(
        self, samples: Sequence[SampleRecord]
    ) -> StratifiedEstimate:
        pooled: List[Tuple[int, int]] = []
        for sample in samples:
            pooled.extend(sample.deliveries)
        return stratified_latency(pooled, self.weights)

    def converged(self, samples: Sequence[SampleRecord]) -> bool:
        """True when both error bounds are within the tolerance."""
        if len(samples) < self.min_samples:
            return False
        estimate = self.estimate(samples)
        if estimate.relative_error > self.relative_error:
            return False
        recent = samples[-max(self.window, 3):]
        grand, bound = sample_means_bound(recent)
        if grand <= 0:
            return False
        return bound / grand <= self.relative_error


__all__ = [
    "ConvergenceChecker",
    "StratifiedEstimate",
    "sample_means_bound",
    "stratified_latency",
]
