"""Latency and throughput metrics (paper eqs. (2)-(4)).

Latency of one message: ``w + (m_l + d - 1) * f_t`` with wait time w,
message length m_l flits, d hops and flit time f_t = 1 cycle — the
simulator measures it directly as delivery cycle minus creation cycle.

Normalized throughput (average channel utilization) is the fraction of raw
network channel bandwidth carrying flits.  The simulator counts actual flit
crossings, which equals the paper's eq. (3) in steady state.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.util.validation import require_positive


def ideal_latency(message_length: int, hops: int, flit_time: int = 1) -> int:
    """Contention-free latency of a message (paper eq. (2) with w = 0)."""
    require_positive(message_length, "message_length")
    require_positive(hops, "hops")
    return (message_length + hops - 1) * flit_time


def achieved_utilization(
    flits_moved: int, cycles: int, num_channels: int
) -> float:
    """Measured channel utilization: flit crossings / channel-cycles."""
    require_positive(cycles, "cycles")
    require_positive(num_channels, "num_channels")
    return flits_moved / (cycles * num_channels)


def normalized_throughput(
    messages_delivered: int,
    total_hops: int,
    message_length: int,
    cycles: int,
    num_channels: int,
) -> float:
    """Paper eq. (3) with measured quantities.

    ``total_hops`` is the sum of hop counts over the delivered messages, so
    ``total_hops * message_length`` is the channel-bandwidth those messages
    consumed.
    """
    require_positive(cycles, "cycles")
    require_positive(num_channels, "num_channels")
    if messages_delivered == 0:
        return 0.0
    return total_hops * message_length / (cycles * num_channels)


def nearest_rank_percentile(
    sorted_values: Sequence[float], mark: float
) -> float:
    """The *mark*-th percentile of *sorted_values* by the nearest-rank rule.

    Nearest-rank: the smallest value such that at least ``mark`` percent
    of the sample is <= it, i.e. index ``ceil(mark/100 * n) - 1`` of the
    ascending-sorted sample.  (The earlier ``(n-1) * mark // 100``
    indexing was biased low for small samples: with n = 4 it returned
    the 3rd value as the 95th percentile instead of the maximum.)
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0 < mark <= 100:
        raise ValueError(f"percentile mark must be in (0, 100], got {mark}")
    n = len(sorted_values)
    index = math.ceil(mark / 100.0 * n) - 1
    if index < 0:
        index = 0
    return float(sorted_values[index])


__all__ = [
    "achieved_utilization",
    "ideal_latency",
    "nearest_rank_percentile",
    "normalized_throughput",
]
