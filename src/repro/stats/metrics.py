"""Latency and throughput metrics (paper eqs. (2)-(4)).

Latency of one message: ``w + (m_l + d - 1) * f_t`` with wait time w,
message length m_l flits, d hops and flit time f_t = 1 cycle — the
simulator measures it directly as delivery cycle minus creation cycle.

Normalized throughput (average channel utilization) is the fraction of raw
network channel bandwidth carrying flits.  The simulator counts actual flit
crossings, which equals the paper's eq. (3) in steady state.
"""

from __future__ import annotations

from repro.util.validation import require_positive


def ideal_latency(message_length: int, hops: int, flit_time: int = 1) -> int:
    """Contention-free latency of a message (paper eq. (2) with w = 0)."""
    require_positive(message_length, "message_length")
    require_positive(hops, "hops")
    return (message_length + hops - 1) * flit_time


def achieved_utilization(
    flits_moved: int, cycles: int, num_channels: int
) -> float:
    """Measured channel utilization: flit crossings / channel-cycles."""
    require_positive(cycles, "cycles")
    require_positive(num_channels, "num_channels")
    return flits_moved / (cycles * num_channels)


def normalized_throughput(
    messages_delivered: int,
    total_hops: int,
    message_length: int,
    cycles: int,
    num_channels: int,
) -> float:
    """Paper eq. (3) with measured quantities.

    ``total_hops`` is the sum of hop counts over the delivered messages, so
    ``total_hops * message_length`` is the channel-bandwidth those messages
    consumed.
    """
    require_positive(cycles, "cycles")
    require_positive(num_channels, "num_channels")
    if messages_delivered == 0:
        return 0.0
    return total_hops * message_length / (cycles * num_channels)


__all__ = [
    "achieved_utilization",
    "ideal_latency",
    "normalized_throughput",
]
