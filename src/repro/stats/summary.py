"""The result of one simulation point."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, ClassVar, Dict, FrozenSet, List, Optional


@dataclass
class SimulationResult:
    """Converged (or best-effort) measurements for one simulation point.

    Attributes mirror the paper's reported quantities: the x-axis
    ``offered_load`` (offered channel utilization), and the y-axes
    ``average_latency`` (cycles) and ``achieved_utilization`` (normalized
    throughput).
    """

    algorithm: str
    traffic: str
    offered_load: float
    injection_rate: float

    average_latency: float
    latency_error_bound: float
    #: Mean queueing/blocking time: latency minus the pipelined term
    #: (m_l + d - 1), i.e. the *w* of the paper's eq. (2), averaged over
    #: delivered messages.
    average_wait: float
    achieved_utilization: float
    delivered_throughput: float

    samples_used: int
    converged: bool
    cycles_simulated: int
    messages_generated: int
    messages_delivered: int
    messages_refused: int

    #: Latency distribution percentiles (50/95/99) over delivered
    #: messages — beyond the paper's averages, useful for tail analysis.
    latency_percentiles: Dict[int, float] = field(default_factory=dict)
    #: Mean latency per hop-class (stratum), for deeper analysis.
    hop_class_latency: Dict[int, float] = field(default_factory=dict)
    #: Flits carried per virtual-channel class, summed over all physical
    #: channels during sampling periods only — the paper's VC load-balance
    #: discussion, on the same denominator as ``achieved_utilization``.
    vc_class_usage: List[int] = field(default_factory=list)
    #: The load the sources actually offered.  Equals ``offered_load``
    #: except when the requested load exceeds the generation capacity
    #: (one message per node per cycle) and the injection rate was
    #: clamped; ``None`` on results predating this field.
    offered_load_actual: Optional[float] = None
    #: Aggregated observability metrics (``repro.obs``), present when the
    #: point ran with ``SimulationConfig.obs=True``; carried into sweep
    #: checkpoint files.
    obs_metrics: Optional[Dict[str, Any]] = None
    #: Wall-clock seconds this point took to simulate (warmup + samples +
    #: gaps), set by the sweep runner.  Excluded from equality on purpose:
    #: serial and parallel sweeps promise bit-identical *simulated*
    #: results, while wall time is machine noise.
    wall_seconds: Optional[float] = field(default=None, compare=False)
    #: Extra context (profile name, switching mode, ...).
    notes: Optional[str] = None

    #: Fields intentionally absent from the flat :meth:`to_dict` CSV row
    #: (the SER001 exclusion list — every other field must appear there):
    #: ``obs_metrics`` is a nested, schema-versioned aggregate that only
    #: travels via :meth:`to_json_dict` checkpoints, and ``wall_seconds``
    #: is machine noise deliberately kept out of comparable tables (it is
    #: already excluded from equality above).
    SERIALIZE_EXCLUDE: ClassVar[FrozenSet[str]] = frozenset(
        {"obs_metrics", "wall_seconds"}
    )

    @property
    def refusal_rate(self) -> float:
        """Fraction of generated messages refused by congestion control."""
        offered = self.messages_generated + self.messages_refused
        if offered == 0:
            return 0.0
        return self.messages_refused / offered

    def to_dict(self) -> Dict[str, object]:
        """Flat dict for CSV writers and tables.

        Every reported quantity appears: compound fields are flattened —
        ``latency_percentiles`` into ``latency_p50/p95/p99`` columns
        (0.0 when no message was delivered), and ``vc_class_usage`` /
        ``hop_class_latency`` into single ``;``-joined columns so the
        schema stays fixed across algorithms with different
        virtual-channel counts and topologies with different diameters.
        Omissions are the audited exception: :data:`SERIALIZE_EXCLUDE`
        names them, and the SER001 lint rule holds this method to it.
        """
        return {
            "algorithm": self.algorithm,
            "traffic": self.traffic,
            "offered_load": self.offered_load,
            "offered_load_actual": (
                self.offered_load
                if self.offered_load_actual is None
                else self.offered_load_actual
            ),
            "injection_rate": self.injection_rate,
            "average_latency": self.average_latency,
            "latency_error_bound": self.latency_error_bound,
            "average_wait": self.average_wait,
            "latency_p50": float(self.latency_percentiles.get(50, 0.0)),
            "latency_p95": float(self.latency_percentiles.get(95, 0.0)),
            "latency_p99": float(self.latency_percentiles.get(99, 0.0)),
            "achieved_utilization": self.achieved_utilization,
            "delivered_throughput": self.delivered_throughput,
            "samples_used": self.samples_used,
            "converged": self.converged,
            "cycles_simulated": self.cycles_simulated,
            "messages_generated": self.messages_generated,
            "messages_delivered": self.messages_delivered,
            "messages_refused": self.messages_refused,
            "refusal_rate": self.refusal_rate,
            "vc_class_usage": ";".join(
                str(count) for count in self.vc_class_usage
            ),
            "hop_class_latency": ";".join(
                f"{hops}:{latency:.4f}"
                for hops, latency in sorted(self.hop_class_latency.items())
            ),
            "notes": self.notes or "",
        }

    def to_json_dict(self) -> Dict[str, Any]:
        """Lossless dict for JSON persistence (sweep checkpoints).

        Unlike :meth:`to_dict` (a flat CSV row), this captures *every*
        field so a result written to a checkpoint file deserializes back
        to an equal :class:`SimulationResult`.
        """
        return asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_json_dict` output.

        JSON turns the int keys of ``latency_percentiles`` and
        ``hop_class_latency`` into strings; they are converted back here
        so the round-trip is exact.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        for int_keyed in ("latency_percentiles", "hop_class_latency"):
            mapping = kwargs.get(int_keyed)
            if mapping:
                kwargs[int_keyed] = {
                    int(key): value for key, value in mapping.items()
                }
        return cls(**kwargs)

    def __str__(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        timing = ""
        if self.wall_seconds:
            rate = self.cycles_simulated / self.wall_seconds
            timing = f" [{self.wall_seconds:.2f}s, {rate:,.0f} cyc/s]"
        return (
            f"{self.algorithm}/{self.traffic} offered={self.offered_load:.2f}"
            f" -> latency={self.average_latency:.1f}"
            f" (+/-{self.latency_error_bound:.1f})"
            f" util={self.achieved_utilization:.3f}"
            f" [{self.samples_used} samples, {status}]{timing}"
        )


__all__ = ["SimulationResult"]
