"""Raw per-sample measurements collected by the engine."""

from __future__ import annotations

from typing import Dict, List, Tuple


class SampleRecord:
    """Everything measured during one sampling period.

    ``deliveries`` holds one ``(latency, hops)`` pair per message delivered
    while the sample was active; hops is the message's (minimal) path
    length and doubles as its hop-class/stratum id.

    ``vc_usage`` is the flits carried per virtual-channel class during
    this sample only — the same window ``flits_moved`` counts, so the
    two share a denominator (gap-cycle traffic is excluded from both).
    """

    __slots__ = (
        "start_cycle",
        "cycles",
        "deliveries",
        "flits_moved",
        "generated",
        "refused",
        "vc_usage",
    )

    def __init__(self, start_cycle: int) -> None:
        self.start_cycle = start_cycle
        self.cycles = 0
        self.deliveries: List[Tuple[int, int]] = []
        self.flits_moved = 0
        self.generated = 0
        self.refused = 0
        self.vc_usage: List[int] = []

    @property
    def delivered(self) -> int:
        return len(self.deliveries)

    def extend_deliveries(
        self, latencies: List[int], hops: List[int]
    ) -> None:
        """Append one batch of (latency, hops) pairs in delivery order.

        Batched entry point for engines that buffer per-cycle delivery
        stats as array chunks instead of appending scalar pairs.
        """
        self.deliveries.extend(zip(latencies, hops))

    def mean_latency(self) -> float:
        """Unweighted mean latency of this sample (0 if empty)."""
        if not self.deliveries:
            return 0.0
        return sum(lat for lat, _ in self.deliveries) / len(self.deliveries)

    def latencies_by_hops(self) -> Dict[int, List[int]]:
        """Group latencies into hop-class strata."""
        strata: Dict[int, List[int]] = {}
        for latency, hops in self.deliveries:
            strata.setdefault(hops, []).append(latency)
        return strata

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SampleRecord(start={self.start_cycle}, cycles={self.cycles}, "
            f"delivered={self.delivered}, flits={self.flits_moved})"
        )


__all__ = ["SampleRecord"]
