"""Statistics: sampling, stratified estimation, convergence, metrics.

Implements the paper's methodology (Section 3): warm-up, periodic sampling
with fresh random streams between samples, a stratified population-mean
latency estimator weighted by hop-class frequencies, dual 5%-error
convergence criteria with a minimum of three and a bounded maximum number
of samples, and the latency/normalized-throughput metrics of eqs. (2)-(4).
"""

from repro.stats.convergence import ConvergenceChecker, StratifiedEstimate
from repro.stats.counters import SampleRecord
from repro.stats.metrics import (
    achieved_utilization,
    ideal_latency,
    normalized_throughput,
)
from repro.stats.summary import SimulationResult

__all__ = [
    "ConvergenceChecker",
    "SampleRecord",
    "SimulationResult",
    "StratifiedEstimate",
    "achieved_utilization",
    "ideal_latency",
    "normalized_throughput",
]
