"""Structure-of-arrays message state for the batch backend's relaxed mode.

The relaxed identity mode used to mirror every in-flight worm with a
Python ``_BatchMessage`` object, which put ~0.5M scalar attribute
touches per congested window on the hot path (release bookkeeping, the
transmit epilogue, ejection accounting, the per-winner commit loop).
This module replaces those objects with flat numpy columns carrying a
leading batch axis, so the batch engine's per-cycle phases can read and
write message state with masked gathers/scatters only.

Three containers:

* :class:`MessageSlab` — one row per in-flight message, ``[B, M]``
  columns (src/dst/length/flits-injected/flits-ejected/head/route-row/
  born/wait/...), preallocated and recycled through per-lane free-list
  stacks; capacity doubles when any lane's stack runs dry.  Slot numbers
  are bookkeeping only — no engine ordering may key on them — so growth
  handing fresh slots to every lane at once cannot perturb any lane's
  results (the composition-independence tests pin this).
* :class:`RequestPool` — the pending route requests (lane, slot, seq)
  with each entry's cached candidate VCs and last-blocked cycle.
  Blocked requests stay pooled; the engine re-tests one only when a
  candidate VC was released at or after the cycle it blocked (a
  vectorized park/wake).  Spurious wakes are harmless — a blocked
  request consumes no rng — so the stamp test's over-approximation is
  draw-for-draw equivalent to exact wake lists.
* :class:`DeliverQueue` — absolute VC indices currently delivering at
  their destination, in registration order (the order strict mode keeps
  in ``lane.delivering``).

All three grow by doubling and never shrink; the engine holds exactly
one of each.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Tuple

import numpy as np

#: Initial per-lane message capacity (slots); doubled on exhaustion.
INITIAL_SLOTS = 256

#: Initial request-pool / deliver-queue capacity (entries).
INITIAL_ENTRIES = 256


class MessageView(NamedTuple):
    """A read-only snapshot of one slab row (deadlock reports, debugging).

    Field names match the attributes the strict path's ``_BatchMessage``
    exposes, so diagnostic code can walk either representation.
    """

    msg_id: int
    src: int
    dst: int
    distance: int
    head_node: int
    created_at: int
    flits_to_inject: int
    flits_ejected: int
    route_row: int
    wait_since: int


class MessageSlab:
    """Per-message state as ``[B, M]`` columns with per-lane free lists.

    A message is a *slot* in its lane: allocation pops slot numbers off
    the lane's free stack, completion pushes them back.  The engine's
    owner arrays store the slot (not a message id), and every column has
    a flat 1-D view addressed by the global index ``g = b * M + slot``
    (recomputed by callers after any potential growth point — ``alloc``
    is the only one).
    """

    # Column types (created via setattr from _COLUMNS in __init__).
    src: np.ndarray
    dst: np.ndarray
    dist: np.ndarray
    length: np.ndarray
    inj: np.ndarray
    ej: np.ndarray
    head: np.ndarray
    head_flat: np.ndarray
    tail_flat: np.ndarray
    src_flat: np.ndarray
    row: np.ndarray
    born: np.ndarray
    wait: np.ndarray
    mid: np.ndarray
    cls: np.ndarray
    live: np.ndarray
    src_f: np.ndarray
    dst_f: np.ndarray
    dist_f: np.ndarray
    length_f: np.ndarray
    inj_f: np.ndarray
    ej_f: np.ndarray
    head_f: np.ndarray
    head_flat_f: np.ndarray
    tail_flat_f: np.ndarray
    src_flat_f: np.ndarray
    row_f: np.ndarray
    born_f: np.ndarray
    wait_f: np.ndarray
    mid_f: np.ndarray
    cls_f: np.ndarray
    live_f: np.ndarray

    __slots__ = (
        "batch",
        "capacity",
        "src",
        "dst",
        "dist",
        "length",
        "inj",
        "ej",
        "head",
        "head_flat",
        "tail_flat",
        "src_flat",
        "row",
        "born",
        "wait",
        "mid",
        "cls",
        "live",
        "src_f",
        "dst_f",
        "dist_f",
        "length_f",
        "inj_f",
        "ej_f",
        "head_f",
        "head_flat_f",
        "tail_flat_f",
        "src_flat_f",
        "row_f",
        "born_f",
        "wait_f",
        "mid_f",
        "cls_f",
        "live_f",
        "_free",
        "_free_top",
        "grow_count",
    )

    #: (name, dtype, fill) for every column; -1 fills mark "no VC yet".
    _COLUMNS: Tuple[Tuple[str, type, int], ...] = (
        ("src", np.int32, 0),
        ("dst", np.int32, 0),
        ("dist", np.int32, 0),
        ("length", np.int32, 0),
        ("inj", np.int32, 0),  # flits injected (have left the source)
        ("ej", np.int32, 0),  # flits ejected at the destination
        ("head", np.int32, 0),  # head node
        ("head_flat", np.int32, -1),  # newest VC held (path tail)
        ("tail_flat", np.int32, -1),  # oldest VC held (next released)
        ("src_flat", np.int32, -1),  # first-hop VC, -1 until allocated
        ("row", np.int64, 0),  # interned RouteTable row
        ("born", np.int64, 0),
        ("wait", np.int64, 0),  # cycle the current route request queued
        ("mid", np.int64, 0),  # per-lane message id
        ("cls", np.int32, 0),  # interned message-class id
        ("live", np.bool_, 0),
    )

    def __init__(self, batch: int, capacity: int = INITIAL_SLOTS) -> None:
        if batch < 1 or capacity < 1:
            raise ValueError("slab needs batch >= 1 and capacity >= 1")
        self.batch = batch
        self.capacity = capacity
        for name, dtype, fill in self._COLUMNS:
            col = np.full((batch, capacity), fill, dtype=dtype)
            setattr(self, name, col)
            setattr(self, name + "_f", col.reshape(-1))
        #: Free slot stacks: _free[b, :_free_top[b]] are b's free slots,
        #: popped from the top (highest index) first.
        self._free = np.tile(
            np.arange(capacity, dtype=np.int32), (batch, 1)
        )
        self._free_top = np.full(batch, capacity, dtype=np.int64)
        self.grow_count = 0

    def free_slots(self, lane: int) -> int:
        """How many slots lane *lane* can allocate without growing."""
        return int(self._free_top[lane])

    def live_count(self, lane: int) -> int:
        return int(np.count_nonzero(self.live[lane]))

    def ensure(self, lane: int, count: int) -> None:
        """Grow until lane *lane* has at least *count* free slots."""
        while int(self._free_top[lane]) < count:
            self.grow()

    def grow(self) -> None:
        """Double capacity; every lane's stack gains the fresh slots.

        Growth preserves slot numbers (columns extend on the right), so
        owner arrays holding slots stay valid; and because nothing in
        the engine orders by slot number, handing new slots to lanes
        that did not ask for them is behaviorally invisible.
        """
        old = self.capacity
        new = old * 2
        for name, dtype, fill in self._COLUMNS:
            col = np.full((self.batch, new), fill, dtype=dtype)
            col[:, :old] = getattr(self, name)
            setattr(self, name, col)
            setattr(self, name + "_f", col.reshape(-1))
        free = np.empty((self.batch, new), dtype=np.int32)
        free[:, :old] = self._free
        tops = self._free_top
        rows = np.repeat(np.arange(self.batch, dtype=np.intp), old)
        cols = (
            tops[:, None] + np.arange(old, dtype=np.int64)[None, :]
        ).reshape(-1)
        free[rows, cols] = np.tile(
            np.arange(old, new, dtype=np.int32), self.batch
        )
        self._free = free
        self._free_top = tops + old
        self.capacity = new
        self.grow_count += 1

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def alloc(self, lane: int, count: int) -> np.ndarray:
        """Pop *count* slot numbers for lane *lane* (after ``ensure``)."""
        top = int(self._free_top[lane])
        slots = self._free[lane, top - count:top].copy()
        self._free_top[lane] = top - count
        return slots

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def release(self, lane: int, slots: np.ndarray) -> None:
        """Push completed messages' slots back on lane *lane*'s stack."""
        top = int(self._free_top[lane])
        count = slots.shape[0]
        self._free[lane, top:top + count] = slots
        self._free_top[lane] = top + count

    def view(self, lane: int, slot: int) -> MessageView:
        """One row as a named tuple (cold path: reports, tests)."""
        return MessageView(
            msg_id=int(self.mid[lane, slot]),
            src=int(self.src[lane, slot]),
            dst=int(self.dst[lane, slot]),
            distance=int(self.dist[lane, slot]),
            head_node=int(self.head[lane, slot]),
            created_at=int(self.born[lane, slot]),
            flits_to_inject=int(
                self.length[lane, slot] - self.inj[lane, slot]
            ),
            flits_ejected=int(self.ej[lane, slot]),
            route_row=int(self.row[lane, slot]),
            wait_since=int(self.wait[lane, slot]),
        )

    def iter_live(self, lane: int) -> Iterator[MessageView]:
        """Live messages of one lane as views (cold path)."""
        for slot in np.nonzero(self.live[lane])[0].tolist():
            yield self.view(lane, slot)


#: ``blocked`` stamp for tombstoned entries — far above any cycle
#: number, so the park/wake test can never wake them.
DEAD_STAMP = np.int64(2**62)


class RequestPool:
    """Pending route requests: parallel (lane, slot, seq, …) columns.

    Entries persist while blocked.  Each entry caches its candidate
    VCs' *absolute* flat indices (``cand``, -1 padded — a request's
    route-table row is fixed for its pool lifetime) and the cycle it
    last blocked (``blocked``, -1 for never-tested entries), which is
    what the engine's vectorized park/wake test gathers against.
    ``cand`` is stored transposed — [width, capacity], one contiguous
    row per candidate position — so the per-cycle wake test runs as
    ``width`` cheap 1-D gathers instead of one strided 2-D gather.

    Winners are tombstoned in place (:meth:`kill` sets lane -1 and a
    ``DEAD_STAMP`` park stamp so they never wake) rather than
    compacted out every cycle; the engine calls :meth:`prune` once
    the dead fraction crosses a threshold.  Storage order is
    irrelevant — the engine sorts the woken subset by (lane, seq)
    each routing pass.
    """

    __slots__ = (
        "lane", "slot", "seq", "blocked", "cand", "width", "n", "dead"
    )

    def __init__(
        self, width: int, capacity: int = INITIAL_ENTRIES
    ) -> None:
        self.width = width
        self.lane = np.zeros(capacity, dtype=np.intp)
        self.slot = np.zeros(capacity, dtype=np.int32)
        self.seq = np.zeros(capacity, dtype=np.int64)
        self.blocked = np.zeros(capacity, dtype=np.int64)
        self.cand = np.zeros((width, capacity), dtype=np.int64)
        self.n = 0
        self.dead = 0

    def _reserve(self, extra: int) -> None:
        need = self.n + extra
        cap = self.lane.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("lane", "slot", "seq", "blocked"):
            old = getattr(self, name)
            col = np.zeros(cap, dtype=old.dtype)
            col[:self.n] = old[:self.n]
            setattr(self, name, col)
        wide = np.zeros((self.width, cap), dtype=np.int64)
        wide[:, :self.n] = self.cand[:, :self.n]
        self.cand = wide

    def widen(self, width: int) -> None:
        """Grow the candidate width (the route table widened)."""
        if width <= self.width:
            return
        wide = np.full(
            (width, self.lane.shape[0]), -1, dtype=np.int64
        )
        wide[:self.width, :self.n] = self.cand[:, :self.n]
        self.cand = wide
        self.width = width

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def extend(
        self,
        lanes: np.ndarray,
        slots: np.ndarray,
        seqs: np.ndarray,
        cand: np.ndarray,
    ) -> None:
        count = lanes.shape[0]
        if cand.shape[1] != self.width:
            self.widen(cand.shape[1])
        self._reserve(count)
        n = self.n
        self.lane[n:n + count] = lanes
        self.slot[n:n + count] = slots
        self.seq[n:n + count] = seqs
        self.blocked[n:n + count] = -1
        self.cand[:, n:n + count] = cand.T
        self.n = n + count

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def kill(self, idx: np.ndarray) -> None:
        """Tombstone the indexed entries (request granted a VC)."""
        self.lane[idx] = -1
        self.blocked[idx] = DEAD_STAMP
        self.dead += int(idx.shape[0])

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def compact(self, keep: np.ndarray) -> None:
        """Drop the masked-out entries, preserving order."""
        count = int(keep.sum())
        n = self.n
        if count == n:
            return
        self.lane[:count] = self.lane[:n][keep]
        self.slot[:count] = self.slot[:n][keep]
        self.seq[:count] = self.seq[:n][keep]
        self.blocked[:count] = self.blocked[:n][keep]
        self.cand[:, :count] = self.cand[:, :n][:, keep]
        self.n = count

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def prune(self) -> None:
        """Compact the tombstones away (amortized, threshold-driven)."""
        self.compact(self.lane[:self.n] >= 0)
        self.dead = 0

    def drop_lane(self, lane: int) -> None:
        """Remove one lane's requests (lane salvage / stop).

        Tombstones ride along — they belong to no lane.
        """
        live = self.lane[:self.n]
        self.compact((live != lane) & (live >= 0))
        self.dead = 0

    def lane_entries(self, lane: int) -> Tuple[np.ndarray, np.ndarray]:
        """One lane's (slot, seq) pairs in seq order (cold path)."""
        n = self.n
        mask = self.lane[:n] == lane
        slots = self.slot[:n][mask]
        seqs = self.seq[:n][mask]
        order = np.argsort(seqs, kind="stable")
        return slots[order], seqs[order]


class DeliverQueue:
    """Absolute VC indices delivering at their destination, in order."""

    __slots__ = ("abs", "n")

    def __init__(self, capacity: int = INITIAL_ENTRIES) -> None:
        self.abs = np.zeros(capacity, dtype=np.intp)
        self.n = 0

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def extend(self, entries: np.ndarray) -> None:
        count = entries.shape[0]
        need = self.n + count
        cap = self.abs.shape[0]
        if need > cap:
            while cap < need:
                cap *= 2
            col = np.zeros(cap, dtype=np.intp)
            col[:self.n] = self.abs[:self.n]
            self.abs = col
        self.abs[self.n:need] = entries
        self.n = need

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def keep(self, mask: np.ndarray) -> None:
        """Compact to the masked-in entries, preserving order."""
        kept = self.abs[:self.n][mask]
        self.abs[:kept.shape[0]] = kept
        self.n = kept.shape[0]

    def take_lane(self, lane: int, stride: int) -> np.ndarray:
        """Remove and return one lane's entries (lane salvage / stop)."""
        n = self.n
        entries = self.abs[:n]
        mask = entries // stride == lane
        taken = entries[mask].copy()
        self.keep(~mask)
        return taken


__all__ = [
    "DeliverQueue",
    "INITIAL_ENTRIES",
    "INITIAL_SLOTS",
    "MessageSlab",
    "MessageView",
    "RequestPool",
]
