"""The cycle-driven flit-level network engine.

Each simulated cycle has four phases:

1. **Generation** — geometric arrivals produce messages; the
   input-buffer-limit congestion control admits or refuses each one.
2. **Ejection** — flits that settled in destination buffers last cycle
   are consumed (before this cycle's transfers, so the final hop streams
   at full rate); tail consumption completes the message and releases its
   last channel.
3. **Routing / virtual-channel allocation** — every message whose head flit
   sits at a router (or at its source) and lacks a next channel asks its
   routing algorithm for candidate (link, virtual-channel-class) pairs and
   tries to reserve a free one.  Requests are served in FIFO order, the
   paper's starvation-avoidance discipline; among several free candidates
   the configurable selection policy picks one (default: the link whose
   channel currently multiplexes the fewest worms).
4. **Transmission** — every physical channel moves at most one flit,
   round-robin among its ready virtual channels (the paper's
   time-multiplexed bandwidth sharing with f_t = 1).

Virtual channels are released as the tail drains past them, which is what
makes the same engine model wormhole (1-flit buffers: a blocked worm spans
many channels), virtual cut-through (packet-sized buffers: a blocked packet
collapses into one buffer) and store-and-forward (packet-sized buffers plus
the full-packet-before-forwarding rule) — the three switching techniques
the paper compares in Section 3.4.

A watchdog raises :class:`~repro.util.errors.DeadlockError` if traffic is
in flight but nothing has moved for a long time; all six paper algorithms
are deadlock-free, so it fires only on buggy or deliberately broken
algorithms (it is exercised in the test suite with one of those).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from collections import deque
from heapq import heappop, heappush
from operator import attrgetter
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer
    from repro.traffic.trace import MessageTrace

from repro.network.fabric import Fabric
from repro.network.message import Message
from repro.network.physical_channel import PhysicalChannel
from repro.network.virtual_channel import VirtualChannel
from repro.routing.base import RoutingAlgorithm
from repro.simulator.config import SimulationConfig
from repro.simulator.injection import InjectionController
from repro.simulator.sanitizer import WaitForGraph
from repro.stats.counters import SampleRecord
from repro.topology.base import Topology
from repro.traffic.arrivals import GeometricArrivals
from repro.traffic.base import TrafficPattern
from repro.traffic.load import offered_load_to_rate
from repro.util.errors import ConfigurationError, DeadlockError
from repro.util.fingerprint import state_fingerprint as route_state_fingerprint
from repro.util.rng import (
    STREAM_ARRIVALS,
    STREAM_DESTINATIONS,
    STREAM_ROUTING,
    RngStreams,
)

#: A routing candidate resolved to runtime objects.
_Candidate = Tuple[VirtualChannel, PhysicalChannel]

#: Sort key for re-poll lists (ascending active-set insertion order).
_BY_ACTIVE_SEQ = attrgetter("active_seq")


class Engine:
    """One simulation instance: network state plus the cycle loop."""

    def __init__(
        self,
        config: SimulationConfig,
        topology: Optional[Topology] = None,
        algorithm: Optional[RoutingAlgorithm] = None,
        traffic: Optional[TrafficPattern] = None,
        trace: Optional["MessageTrace"] = None,
    ) -> None:
        self.config = config
        self.topology = topology if topology is not None else (
            config.build_topology()
        )
        self.algorithm = algorithm if algorithm is not None else (
            config.build_algorithm(self.topology)
        )
        self.traffic = traffic if traffic is not None else (
            config.build_traffic(self.topology)
        )
        self.fabric = Fabric(
            self.topology,
            self.algorithm.num_virtual_channels,
            config.effective_buffer_depth(),
        )
        self.rng = RngStreams(config.seed)
        self.injection_rate = offered_load_to_rate(
            config.offered_load,
            self.topology,
            config.message_length,
            self.traffic.mean_distance(),
        )
        self.arrivals = GeometricArrivals(
            self.topology.num_nodes, self.injection_rate
        )
        self.arrivals.start(0, self.rng.stream(STREAM_ARRIVALS))
        self.controller = InjectionController(config.injection_limit)

        # Trace-driven mode (paper §4 future work): replay recorded send
        # events with blocking-send semantics instead of stochastic
        # arrivals.
        if trace is not None:
            trace.validate_for(self.topology)
            self._trace_events: Optional[Deque] = deque(trace)
        else:
            self._trace_events = None
        self._trace_pending: Deque[Tuple[int, int]] = deque()

        self.cycle = 0
        self.in_flight = 0
        self._msg_counter = 0
        self._saf = config.switching == "saf"
        self._ideal = config.flow_control == "ideal"
        self._highest_class_first = config.mux_policy == "highest_class"
        self._route_queue: Deque[Message] = deque()
        # Opt-in wait-for-graph sanitizer (config.sanitize): tracks what
        # every blocked message holds and requests so a watchdog trip can
        # name the deadlock cycle.
        self.sanitizer: Optional[WaitForGraph] = (
            WaitForGraph() if config.sanitize else None
        )
        # Insertion-ordered set of channels with >= 1 reserved VC, so the
        # transmission scan touches only potentially active links and the
        # iteration order is deterministic.
        self._active_channels: Dict[PhysicalChannel, None] = {}
        self._delivering: List[VirtualChannel] = []
        self._last_progress = 0
        # Scheduler selection (config.scheduler).  "scan" keeps the seed
        # code paths exactly: _route drains a FIFO deque and _transmit
        # polls every active channel each cycle.  "active" (the default)
        # is the activity-tracked scheduler: routing requests live in a
        # min-heap ordered by enqueue sequence (same service order as the
        # FIFO), blocked messages park on their candidate VCs' waiter
        # lists until a release wakes them, and transmission polls only
        # channels *armed* by an event that could have made them ready
        # (allocation, a flit arrival/departure on an adjacent VC, an
        # ejection).  Both produce bit-identical flit schedules; the
        # golden-trace and fuzz tests pin that equivalence.
        self._active_scheduler = config.scheduler == "active"
        self._route_heap: List[Tuple[int, Message]] = []
        self._route_seq = 0
        self._parked: Dict[int, Message] = {}
        self._next_active_seq = 0
        # Engine-level memo of resolved candidate sets, keyed by
        # (head node, destination, algorithm state key); only consulted
        # by the active scheduler so "scan" stays the seed path.
        self._resolved_cache: Dict[
            Tuple[int, int, Hashable], Tuple[_Candidate, ...]
        ] = {}
        if self._active_scheduler:
            self._route_pending = self._route_heap
            self._route_step = self._route_active
            self._transmit_step = self._transmit_active
        else:
            self._route_pending = self._route_queue
            self._route_step = self._route
            self._transmit_step = self._transmit
        # Parking requires that nobody needs to see a blocked message
        # every cycle: the sanitizer and the observer both register
        # per-cycle blocked events, so parking turns off while either is
        # attached (attach_observer/detach_observer keep this current).
        self._parking = self._active_scheduler and self.sanitizer is None
        # Hot-path caches: the channel array (so _release and
        # _compute_candidates skip two attribute hops) and the named rng
        # streams (so per-cycle phases skip the stream-dictionary lookup;
        # refreshed by _refresh_streams whenever the epoch advances).
        self._channels = self.fabric.channels
        # Reusable scratch lists for _select, so the per-allocation cost
        # of the free/best candidate filters is paid once per engine.
        self._free_scratch: List[_Candidate] = []
        self._best_scratch: List[_Candidate] = []
        self._refresh_streams()

        # lifetime counters
        self.flits_moved_total = 0
        self.generated_total = 0
        self.delivered_total = 0

        # sampling state
        self._sample: Optional[SampleRecord] = None
        self._sample_flits_base = 0
        self._sample_generated_base = 0
        self._sample_refused_base = 0
        self._sample_vc_base: List[int] = []

        # Optional repro.obs observer.  When None (the default) the
        # engine runs the seed code path: step() takes the unobserved
        # branch and the per-event hook checks all fail in one
        # attribute-is-None test.
        self._obs: Optional["Observer"] = None
        if config.obs:
            from repro.obs.observer import ObsConfig, Observer

            self.attach_observer(
                Observer(ObsConfig.from_options(config.obs_options))
            )

    # ------------------------------------------------------------------
    # public driving interface
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        if self._obs is not None:
            # The observed path duplicates the phase sequence below so
            # the unobserved path stays exactly the seed hot path (this
            # one branch is its entire per-cycle overhead).
            self._step_observed(self._obs)
            return
        progressed = False
        self._generate_arrivals()
        if self._delivering:
            # Ejection first: flits settled at the destination leave their
            # buffers before this cycle's link transfers, so the final hop
            # streams at full rate just like every other hop.
            progressed |= self._eject()
        if self._route_pending:
            progressed |= self._route_step()
        if self._active_channels:
            progressed |= self._transmit_step()
        if progressed:
            self._last_progress = self.cycle
        elif (
            self.in_flight
            and self.cycle - self._last_progress
            > self.config.deadlock_threshold
        ):
            self._report_deadlock()
        self.cycle += 1

    def _step_observed(self, obs: "Observer") -> None:
        """One cycle with observability: same phases, plus hooks.

        Phase order and all engine state transitions are identical to
        :meth:`step`; the additions only read state (probes, heatmap)
        or time the phases, so observed runs stay bit-identical to
        unobserved ones (pinned by the golden-trace tests).
        """
        profiler = obs.profiler
        progressed = False
        if profiler is not None:
            t0 = perf_counter()
            self._generate_arrivals()
            profiler.add("generation", perf_counter() - t0)
            if self._delivering:
                t0 = perf_counter()
                progressed |= self._eject()
                profiler.add("ejection", perf_counter() - t0)
            if self._route_pending:
                t0 = perf_counter()
                progressed |= self._route_step()
                profiler.add("routing", perf_counter() - t0)
            if self._active_channels:
                t0 = perf_counter()
                progressed |= self._transmit_step()
                profiler.add("transmission", perf_counter() - t0)
        else:
            self._generate_arrivals()
            if self._delivering:
                progressed |= self._eject()
            if self._route_pending:
                progressed |= self._route_step()
            if self._active_channels:
                progressed |= self._transmit_step()
        if progressed:
            self._last_progress = self.cycle
        elif (
            self.in_flight
            and self.cycle - self._last_progress
            > self.config.deadlock_threshold
        ):
            self._report_deadlock()
        self.cycle += 1
        if profiler is not None:
            t0 = perf_counter()
            obs.on_cycle_end(self)
            profiler.add("observe", perf_counter() - t0)
        else:
            obs.on_cycle_end(self)

    def run_cycles(self, cycles: int) -> None:
        """Advance the simulation by *cycles* cycles.

        Idle-cycle fast-forward: while nothing is in flight, a cycle's
        four phases reduce to a no-op arrival poll, so the clock jumps
        straight to the next scheduled arrival instead of stepping through
        empty cycles one by one.  This is bit-identical to stepping (the
        skipped cycles touch neither state nor any rng stream) and makes
        low-load and drain phases effectively free.
        """
        end = self.cycle + cycles
        step = self.step
        while self.cycle < end:
            if self.in_flight == 0 and self._trace_events is None:
                next_due = self.arrivals.next_due
                if next_due > self.cycle:
                    self.cycle = next_due if next_due < end else end
                    if self.cycle == end:
                        return
            step()

    def advance_streams(self) -> None:
        """Switch to fresh random streams (between sampling periods)."""
        self.rng.advance_epoch()
        self._refresh_streams()
        self.arrivals.reseed(self.cycle, self._rng_arrivals)

    def _refresh_streams(self) -> None:
        """Re-cache the named rng streams for the current epoch."""
        self._rng_arrivals = self.rng.stream(STREAM_ARRIVALS)
        self._rng_destinations = self.rng.stream(STREAM_DESTINATIONS)
        self._rng_routing = self.rng.stream(STREAM_ROUTING)

    # -- observability ---------------------------------------------------

    @property
    def observer(self) -> Optional["Observer"]:
        """The attached repro.obs observer, if any."""
        return self._obs

    def attach_observer(self, observer: "Observer") -> None:
        """Attach a :class:`repro.obs.Observer` to this engine.

        The observer's hooks start firing from the next cycle on.  Flit-
        level tracing (``trace_flits``) shadows ``_handle_flit_arrival``
        with an instance attribute so the transmit loop itself needs no
        per-flit branch when it is off.
        """
        if self._obs is not None:
            raise ConfigurationError(
                "an observer is already attached to this engine"
            )
        observer.bind(self)
        self._obs = observer
        # The observer's on_message_blocked hook must fire every cycle a
        # message stays blocked, so parking (which skips those re-polls)
        # turns off — and any already-parked message returns to the heap.
        if self._parking:
            self._parking = False
            if self._parked:
                self._unpark_all()
        if observer.trace_flit_moves:
            inner = self._handle_flit_arrival

            def traced_arrival(vc: VirtualChannel) -> None:
                observer.on_flit_arrival(self, vc)
                inner(vc)

            self._handle_flit_arrival = traced_arrival  # type: ignore[method-assign]

    def detach_observer(self) -> Optional["Observer"]:
        """Detach and return the observer (None if none was attached)."""
        observer = self._obs
        self._obs = None
        # Remove the flit-arrival shadow, if tracing installed one.
        self.__dict__.pop("_handle_flit_arrival", None)
        self._parking = self._active_scheduler and self.sanitizer is None
        return observer

    # -- sampling --------------------------------------------------------

    def start_sample(self) -> None:
        """Begin recording a sampling period."""
        assert self._sample is None, "a sample is already active"
        self._sample = SampleRecord(self.cycle)
        self._sample_flits_base = self.flits_moved_total
        self._sample_generated_base = self.controller.admitted
        self._sample_refused_base = self.controller.refused
        # Per-class flit counters accumulate across gap cycles too; the
        # snapshot restricts the sample's vc_usage to its own window so
        # it shares a denominator with flits_moved.
        self._sample_vc_base = self.fabric.vc_class_totals()

    def end_sample(self) -> SampleRecord:
        """Stop recording and return the finished sample."""
        sample = self._sample
        assert sample is not None, "no sample is active"
        sample.cycles = self.cycle - sample.start_cycle
        sample.flits_moved = self.flits_moved_total - self._sample_flits_base
        sample.generated = (
            self.controller.admitted - self._sample_generated_base
        )
        sample.refused = self.controller.refused - self._sample_refused_base
        sample.vc_usage = [
            total - base
            for total, base in zip(
                self.fabric.vc_class_totals(), self._sample_vc_base
            )
        ]
        self._sample = None
        return sample

    # ------------------------------------------------------------------
    # phase 1: generation
    # ------------------------------------------------------------------

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _generate_arrivals(self) -> None:
        if self._trace_events is not None:
            self._generate_trace_arrivals()
            return
        if self.arrivals.next_due > self.cycle:
            return  # cheap peek: no heap traffic on arrival-free cycles
        due = self.arrivals.pop_due(self.cycle, self._rng_arrivals)
        rng_dest = self._rng_destinations
        for node in due:
            self._generate(node, rng_dest)

    def _generate_trace_arrivals(self) -> None:
        events = self._trace_events
        while events and events[0][0] <= self.cycle:
            _, src, dst = events.popleft()
            self._trace_pending.append((src, dst))
        # Blocking-send semantics: refused events retry every cycle, in
        # issue order, until congestion control admits them.
        for _ in range(len(self._trace_pending)):
            src, dst = self._trace_pending.popleft()
            if not self._inject(src, dst):
                self._trace_pending.append((src, dst))

    @property
    def trace_exhausted(self) -> bool:
        """True once every trace event has been admitted (trace mode)."""
        return not self._trace_events and not self._trace_pending

    def _generate(self, src: int, rng: random.Random) -> None:
        dst = self.traffic.sample_destination(src, rng)
        if dst is not None:
            self._inject(src, dst)

    def _inject(self, src: int, dst: int) -> bool:
        algorithm = self.algorithm
        state = algorithm.new_state(src, dst)
        msg_class = algorithm.message_class(src, dst, state)
        if not self.controller.try_admit(src, msg_class):
            if self._obs is not None:
                self._obs.on_message_refused(self, src, dst)
            return False
        message = Message(
            msg_id=self._msg_counter,
            src=src,
            dst=dst,
            length=self.config.message_length,
            distance=self.topology.distance(src, dst),
            route_state=state,
            msg_class=msg_class,
            created_at=self.cycle,
        )
        self._msg_counter += 1
        self.generated_total += 1
        self.in_flight += 1
        self._enqueue_route(message)
        if self._obs is not None:
            self._obs.on_message_created(self, message)
        return True

    # ------------------------------------------------------------------
    # phase 2: routing / virtual-channel allocation
    # ------------------------------------------------------------------

    def _enqueue_route(self, message: Message) -> None:
        """Hand *message* to the routing phase (scheduler-appropriate)."""
        if self._active_scheduler:
            seq = self._route_seq
            self._route_seq = seq + 1
            message.route_seq = seq
            # Sequence numbers are strictly increasing, so the new entry
            # is >= everything in the heap and heappush is O(1) here.
            heappush(self._route_heap, (seq, message))
        else:
            self._route_queue.append(message)

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _route_active(self) -> bool:
        """Routing phase of the activity-tracked scheduler.

        Serves requests in ascending enqueue sequence — exactly the FIFO
        order of the scan scheduler, because a deque processed with
        ``for _ in range(len(queue))`` also handles each message once per
        cycle in most-recent-enqueue order.  A message with no free
        candidate parks on its candidates' waiter lists (when parking is
        on) instead of being re-polled every cycle; _wake_waiters puts it
        back with its original sequence number, so the service order
        after a wake is identical to the scan scheduler's queue order.
        """
        heap = self._route_heap
        batch = sorted(heap)  # unique seqs: messages never compared
        heap.clear()
        policy = self.config.selection_policy
        rng = self._rng_routing
        sanitizer = self.sanitizer
        obs = self._obs
        parking = self._parking
        progressed = False
        for entry in batch:
            message = entry[1]
            candidates = message.cached_candidates
            if candidates is None:
                candidates = self._memo_candidates(message)
                message.cached_candidates = candidates
            chosen = self._select(candidates, policy, rng)
            if chosen is None:
                if parking:
                    self._park(message, candidates)
                    continue
                if sanitizer is not None:
                    sanitizer.record_blocked(
                        message,
                        [
                            (vc.link.index, vc.vc_class)
                            for vc, _ in candidates
                        ],
                    )
                if obs is not None:
                    obs.on_message_blocked(self, message, candidates)
                heappush(heap, entry)  # retry next cycle
                continue
            if sanitizer is not None:
                sanitizer.clear(message.msg_id)
            self._allocate(message, chosen)
            if obs is not None:
                obs.on_vc_acquired(self, message, chosen[0])
            progressed = True
        return progressed

    def _park(
        self, message: Message, candidates: Sequence[_Candidate]
    ) -> None:
        """Shelve a blocked message until a candidate VC is released.

        A blocked message consumes no rng (the free filter in _select
        returns before any randrange when nothing is free), so skipping
        its re-polls cannot perturb the random stream — parking is
        invisible to the flit schedule.  Waiter entries carry a parking
        epoch; stale entries from an earlier park of the same message
        are ignored at wake time rather than eagerly removed.
        """
        epoch = message.park_epoch + 1
        message.park_epoch = epoch
        message.parked = True
        self._parked[message.msg_id] = message
        for vc, _ in candidates:
            waiters = vc.waiters
            if waiters is None:
                vc.waiters = [(epoch, message)]
            else:
                waiters.append((epoch, message))

    def _wake_waiters(self, vc: VirtualChannel) -> None:
        """A VC was released: requeue every message parked on it."""
        waiters = vc.waiters
        vc.waiters = None
        heap = self._route_heap
        parked = self._parked
        for epoch, message in waiters:  # type: ignore[union-attr]
            if message.parked and message.park_epoch == epoch:
                message.parked = False
                del parked[message.msg_id]
                heappush(heap, (message.route_seq, message))

    def _unpark_all(self) -> None:
        """Return every parked message to the heap (observer attach)."""
        heap = self._route_heap
        for message in self._parked.values():
            message.parked = False
            heappush(heap, (message.route_seq, message))
        self._parked.clear()
        # Waiter-list entries left behind are invalidated by the parked
        # flag / epoch check in _wake_waiters.

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _memo_candidates(self, message: Message) -> Sequence[_Candidate]:
        """Resolved candidates via the engine-level memo table.

        Algorithms expose a hashable digest of the candidate-relevant
        part of their route state (state_key); when available, the
        resolved (VirtualChannel, PhysicalChannel) tuple for a given
        (position, destination, digest) is computed once per engine.
        """
        algorithm = self.algorithm
        key = algorithm.state_key(message.route_state)
        if key is None:
            return self._compute_candidates(message)
        cache = self._resolved_cache
        path = message.path
        node = path[-1].link.dst if path else message.src
        entry = (node, message.dst, key)
        resolved = cache.get(entry)
        if resolved is None:
            choices = algorithm.candidates_cached(
                message.route_state, node, message.dst
            )
            channels = self._channels
            resolved = tuple(
                (channels[link.index].vcs[vc_class], channels[link.index])
                for link, vc_class in choices
            )
            cache[entry] = resolved
        return resolved

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _route(self) -> bool:
        queue = self._route_queue
        policy = self.config.selection_policy
        rng = self._rng_routing
        sanitizer = self.sanitizer
        obs = self._obs
        progressed = False
        for _ in range(len(queue)):
            message = queue.popleft()
            candidates = message.cached_candidates
            if candidates is None:
                candidates = self._compute_candidates(message)
                message.cached_candidates = candidates
            chosen = self._select(candidates, policy, rng)
            if chosen is None:
                if sanitizer is not None:
                    sanitizer.record_blocked(
                        message,
                        [
                            (vc.link.index, vc.vc_class)
                            for vc, _ in candidates
                        ],
                    )
                if obs is not None:
                    obs.on_message_blocked(self, message, candidates)
                queue.append(message)  # retry next cycle, FIFO order kept
                continue
            if sanitizer is not None:
                sanitizer.clear(message.msg_id)
            self._allocate(message, chosen)
            if obs is not None:
                obs.on_vc_acquired(self, message, chosen[0])
            progressed = True
        return progressed

    def _compute_candidates(self, message: Message) -> List[_Candidate]:
        choices = self.algorithm.candidates(
            message.route_state, message.head_node, message.dst
        )
        channels = self._channels
        resolved: List[_Candidate] = []
        for link, vc_class in choices:
            channel = channels[link.index]
            resolved.append((channel.vcs[vc_class], channel))
        return resolved

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _select(
        self,
        candidates: Sequence[_Candidate],
        policy: str,
        rng: random.Random,
    ) -> Optional[_Candidate]:
        if len(candidates) == 1:
            entry = candidates[0]
            return entry if entry[0].owner is None else None
        # The free/best filters reuse per-engine scratch lists: _route can
        # run this thousands of times per cycle under load, and the two
        # throwaway list allocations were visible in profiles.
        free = self._free_scratch
        free.clear()
        for entry in candidates:
            if entry[0].owner is None:
                free.append(entry)
        if not free:
            return None
        if len(free) == 1 or policy == "first":
            return free[0]
        if policy == "random":
            return free[rng.randrange(len(free))]
        # least_multiplexed: fewest already-reserved VCs on the physical
        # channel — the "least congested" local choice the paper ascribes
        # to adaptive routers; ties broken randomly.
        best = self._best_scratch
        best.clear()
        best_load = free[0][1].owned_count
        for entry in free:
            load = entry[1].owned_count
            if load < best_load:
                best_load = load
                best.clear()
                best.append(entry)
            elif load == best_load:
                best.append(entry)
        if len(best) == 1:
            return best[0]
        return best[rng.randrange(len(best))]

    def _allocate(self, message: Message, chosen: _Candidate) -> None:
        vc, channel = chosen
        current = message.head_node  # before the new hop is appended
        # reserve() captures the upstream VC from message.path and keeps
        # the channel's owned_count / owned_idx bookkeeping.
        vc.reserve(message)
        if channel.owned_count == 1:
            channel.active_seq = self._next_active_seq
            self._next_active_seq += 1
            self._active_channels[channel] = None
        if channel.armed_cycle < self.cycle:
            channel.armed_cycle = self.cycle
        message.path.append(vc)
        message.route_state = self.algorithm.advance(
            message.route_state, current, vc.link, vc.vc_class
        )
        message.cached_candidates = None

    # ------------------------------------------------------------------
    # phase 3: transmission
    # ------------------------------------------------------------------

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _transmit(self) -> bool:
        saf = self._saf
        ideal = self._ideal
        priority = self._highest_class_first
        cycle = self.cycle
        moved = 0
        handle_arrival = self._handle_flit_arrival
        pending = list(self._active_channels)
        while pending:
            retry: List[PhysicalChannel] = []
            progress = False
            for channel in pending:
                vc = channel.transmit(cycle, saf, ideal, priority)
                if vc is None:
                    # Re-poll only channels blocked on a condition that
                    # can still change this cycle (buffer space / SAF
                    # assembly); every other failure is final, so the
                    # fixpoint converges in far fewer passes.
                    if ideal and channel.retry_hint:
                        retry.append(channel)
                    continue
                progress = True
                moved += 1
                handle_arrival(vc)
            if not ideal or not progress:
                break
            # Ideal flow control: slots freed this pass may unblock
            # channels that failed earlier in the same cycle (simultaneous
            # shift on the clock edge).  Iterate to the fixpoint; the
            # settled-flits rule still caps every flit at one hop/cycle.
            pending = retry
        self.flits_moved_total += moved
        return moved > 0

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _transmit_active(self) -> bool:
        """Transmission phase of the activity-tracked scheduler.

        Polls only channels *armed* for the current cycle instead of the
        whole active set.  A channel is armed by every event that can
        change one of its blocking conditions: gaining a reserved VC
        (_allocate), an ejection freeing space in one of its target VCs
        (_eject), and — below — a flit departure freeing space one hop
        back or a flit arrival giving the next hop something to forward.
        The arming-event enumeration is complete (settled-flit counts
        only change at cycle boundaries, via exactly these events), so an
        unarmed channel's poll would fail; skipping it is unobservable.

        Within the cycle, successes happen in ascending active-set order
        — the full scan's order — because the armed subset is drained
        through a min-heap keyed on ``active_seq``, and a move that could
        unblock a channel mid-cycle (ideal flow control / SAF assembly)
        splices that channel into the current pass when its turn is still
        ahead, or into the next fixpoint pass when it already went.  That
        reproduces the scan fixpoint's poll outcomes exactly, modulo
        polls that fail with no side effect.

        The per-channel poll is :meth:`PhysicalChannel.transmit` fused
        inline (the scan scheduler still calls the method, and the
        golden-trace identity tests pin the two code paths against each
        other), so the arming predicates and the arrival bookkeeping can
        reuse the values the poll just loaded instead of re-reading
        half a dozen attribute chains per flit.  One flit per channel
        per cycle needs no explicit guard here: a successful poll clears
        the channel from every poll list for the rest of the cycle (the
        queue_cycle/last_transmit_cycle splice guards below), so a
        channel is never polled again after it moved.
        """
        saf = self._saf
        ideal = self._ideal
        priority = self._highest_class_first
        cycle = self.cycle
        next_cycle = cycle + 1
        moved = 0
        # Flit tracing shadows _handle_flit_arrival with an instance
        # attribute; use it instead of the fused arrival epilogue so the
        # observer hook keeps firing per flit.
        traced = self.__dict__.get("_handle_flit_arrival")
        controller = self.controller
        delivering = self._delivering
        # The active set is insertion-ordered by ascending active_seq, so
        # the armed subset is already sorted in the scan's polling order.
        pending: List[PhysicalChannel] = []
        append_pending = pending.append
        for channel in self._active_channels:
            if channel.armed_cycle >= cycle:
                channel.queue_cycle = cycle
                append_pending(channel)
        # Channels spliced into the *current* pass by a mid-pass event,
        # ahead of the poll position.  Almost always empty, so the inner
        # loop degrades to a plain list walk.
        aux: List[Tuple[int, PhysicalChannel]] = []
        while True:
            progress = False
            retry: List[PhysicalChannel] = []
            i = 0
            n = len(pending)
            while i < n or aux:
                if aux and (
                    i >= n or aux[0][0] < pending[i].active_seq
                ):
                    channel = heappop(aux)[1]
                else:
                    channel = pending[i]
                    i += 1
                channel.queue_cycle = -1  # no longer scheduled
                # -- PhysicalChannel.transmit, fused ------------------
                # The round-robin rotation walks owned_idx with a
                # wrapping cursor instead of materializing the rotated
                # list the method version builds (same visit order, no
                # per-poll allocation).
                vcs = channel.vcs
                owned = channel.owned_idx
                m = channel.owned_count
                if priority:
                    # Strict priority: top virtual-channel class down.
                    pos = m - 1
                    step = -1
                else:
                    step = 1
                    if m == 1:
                        pos = 0
                    else:
                        pos = bisect_left(owned, channel._rr_next)
                        if pos == m:
                            pos = 0
                for _ in range(m):
                    idx = owned[pos]
                    pos += step
                    if pos == m:
                        pos = 0
                    vc = vcs[idx]
                    owner = vc.owner
                    if owner is None:
                        # Free (skipped), or see the tail-guard below.
                        continue
                    owner_len = owner.length
                    f_in = vc.flits_in
                    if f_in >= owner_len:
                        # Whole worm already passed through: vc.upstream
                        # may be reused by another message, so this guard
                        # must come before any upstream access.
                        continue
                    occupancy = vc.occupancy
                    cap = vc.capacity
                    if ideal:
                        if occupancy >= cap:
                            continue
                    elif (
                        # had_space(cycle), inlined.
                        occupancy
                        - (vc.last_arrival_cycle == cycle)
                        + (vc.last_departure_cycle == cycle)
                        >= cap
                    ):
                        continue
                    upstream = vc.upstream
                    if upstream is None:
                        inject_left = owner.flits_to_inject
                        if inject_left <= 0:
                            continue
                        owner.flits_to_inject = inject_left - 1
                        up_occ = up_fin = up_fout = 0
                    else:
                        up_occ = upstream.occupancy
                        # settled_flits(cycle) <= 0, inlined.
                        if (
                            up_occ
                            - (upstream.last_arrival_cycle == cycle)
                            <= 0
                        ):
                            continue
                        up_fin = upstream.flits_in
                        if saf and up_fin < owner_len:
                            continue
                        up_occ -= 1
                        upstream.occupancy = up_occ
                        up_fout = upstream.flits_out + 1
                        upstream.flits_out = up_fout
                        upstream.last_departure_cycle = cycle
                    occupancy += 1
                    vc.occupancy = occupancy
                    f_in += 1
                    vc.flits_in = f_in
                    vc.last_arrival_cycle = cycle
                    vc.flits_carried_total += 1
                    channel.flits_moved += 1
                    channel.last_transmit_cycle = cycle
                    if not priority:
                        next_idx = idx + 1
                        channel._rr_next = (
                            0 if next_idx == channel.num_vcs else next_idx
                        )
                    break
                else:
                    # No ready VC.  Unlike the scan fixpoint (which
                    # re-polls every channel that failed on buffer space
                    # or assembly), same-cycle retries here are purely
                    # event-driven: a failed channel is re-queued below
                    # exactly when a move frees its space or completes
                    # its packet, and the scan's extra re-polls are
                    # no-ops without such an event — so the success
                    # sequence is unchanged.
                    continue
                # -- move epilogue: event hooks + arrival bookkeeping --
                progress = True
                moved += 1
                # Re-arm this channel for next cycle only if the VC that
                # just moved can move again (more flits upstream, buffer
                # space, assembly done) or other reserved VCs share the
                # channel.  Every skipped condition is re-established
                # only by an event that re-arms the channel itself.
                if channel.owned_count > 1 or (
                    f_in < owner_len
                    and occupancy < cap
                    and (
                        inject_left > 1
                        if upstream is None
                        else (
                            up_occ > 0
                            and (not saf or up_fin >= owner_len)
                        )
                    )
                ):
                    channel.armed_cycle = next_cycle
                if upstream is not None:
                    # The departed flit freed a slot in *upstream*: the
                    # channel feeding it may move next cycle — or this
                    # one, under ideal flow control.  Queue it unless it
                    # is already scheduled this cycle or already took
                    # its one move.
                    up_ch = upstream.channel
                    uu = upstream.upstream
                    if up_ch.armed_cycle < next_cycle and (
                        up_ch.owned_count > 1
                        or (
                            up_fin < owner_len
                            and (
                                owner.flits_to_inject > 0
                                if uu is None
                                else (
                                    uu.occupancy > 0
                                    and (
                                        not saf
                                        or uu.flits_in >= owner_len
                                    )
                                )
                            )
                        )
                    ):
                        up_ch.armed_cycle = next_cycle
                    if (
                        ideal
                        and up_ch.queue_cycle != cycle
                        and up_ch.last_transmit_cycle != cycle
                    ):
                        up_ch.queue_cycle = cycle
                        up_seq = up_ch.active_seq
                        if up_seq > channel.active_seq:
                            heappush(aux, (up_seq, up_ch))
                        else:
                            retry.append(up_ch)
                downstream = vc.downstream
                if downstream is not None:
                    # The arrived flit settles next cycle for the channel
                    # forwarding out of *vc*; under SAF it may also have
                    # completed packet assembly, a condition the scan
                    # fixpoint lets take effect within the cycle (same
                    # pass if the consumer's turn is still ahead, next
                    # pass under ideal flow control otherwise).
                    down_ch = downstream.channel
                    if down_ch.armed_cycle < next_cycle and (
                        down_ch.owned_count > 1
                        or (
                            downstream.flits_in < owner_len
                            and downstream.occupancy
                            < downstream.capacity
                            and (not saf or f_in >= owner_len)
                        )
                    ):
                        down_ch.armed_cycle = next_cycle
                    if (
                        saf
                        and down_ch.queue_cycle != cycle
                        and down_ch.last_transmit_cycle != cycle
                    ):
                        down_seq = down_ch.active_seq
                        if down_seq > channel.active_seq:
                            down_ch.queue_cycle = cycle
                            heappush(aux, (down_seq, down_ch))
                        elif ideal:
                            down_ch.queue_cycle = cycle
                            retry.append(down_ch)
                # After the arming reads (a release below would clear the
                # upstream/downstream links read above):
                # _handle_flit_arrival, fused, on the poll's locals.
                if traced is not None:
                    traced(vc)
                    continue
                if vc is owner.path[-1] and vc.link.dst != owner.dst:
                    # The worm's front advanced into an intermediate
                    # router: request the next channel once the router
                    # has seen the head flit (wormhole/VCT) or the whole
                    # packet (SAF).
                    if f_in == (owner_len if saf else 1):
                        self._enqueue_route(owner)
                elif vc.link.dst == owner.dst and f_in == 1:
                    delivering.append(vc)
                if upstream is None:
                    if inject_left == 1:  # flits_to_inject hit zero
                        controller.injection_complete(
                            owner.src, owner.msg_class
                        )
                elif up_occ == 0 and up_fout >= owner_len:
                    # upstream.drained, inlined.
                    self._release(upstream, owner)
            if not ideal or not progress or not retry:
                break
            # attrgetter key: C-level extraction instead of one Python
            # __lt__ call per comparison (seqs are unique, so the order
            # is the same either way).
            retry.sort(key=_BY_ACTIVE_SEQ)
            pending = retry
        self.flits_moved_total += moved
        return moved > 0

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _handle_flit_arrival(self, vc: VirtualChannel) -> None:
        owner = vc.owner
        if vc is owner.path[-1] and vc.link.dst != owner.dst:
            # The worm's front advanced into an intermediate router:
            # request the next channel once the router has seen the
            # head flit (wormhole/VCT) or the whole packet (SAF).
            trigger = owner.length if self._saf else 1
            if vc.flits_in == trigger:
                self._enqueue_route(owner)
        elif vc.link.dst == owner.dst and vc.flits_in == 1:
            self._delivering.append(vc)
        upstream = vc.upstream
        if upstream is None:
            if owner.flits_to_inject == 0:
                self.controller.injection_complete(
                    owner.src, owner.msg_class
                )
        elif upstream.occupancy == 0 and upstream.flits_out >= owner.length:
            # upstream.drained, inlined (this runs once per flit moved).
            self._release(upstream, owner)

    # ------------------------------------------------------------------
    # phase 4: ejection
    # ------------------------------------------------------------------

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _eject(self) -> bool:
        cycle = self.cycle
        still: List[VirtualChannel] = []
        ejected_any = False
        for vc in self._delivering:
            owner = vc.owner
            # Only flits present since the start of the cycle are consumed,
            # giving the paper's exact zero-load latency m_l + d - 1.
            # (settled_flits(cycle), inlined.)
            flits = vc.occupancy - (vc.last_arrival_cycle == cycle)
            if flits > 0:
                vc.occupancy -= flits
                vc.flits_out += flits
                owner.flits_ejected += flits
                ejected_any = True
                # Space freed at the destination: the channel feeding
                # this VC may move again this very cycle (ejection runs
                # before transmission, and _eject leaves
                # last_departure_cycle untouched so even conservative
                # flow control sees the slots immediately).
                channel = vc.channel
                if channel.armed_cycle < cycle:
                    channel.armed_cycle = cycle
            if owner.flits_ejected >= owner.length:
                self._complete(vc, owner)
            else:
                still.append(vc)
        self._delivering = still
        return ejected_any

    def _complete(self, vc: VirtualChannel, owner: Message) -> None:
        owner.delivered_at = self.cycle
        self._release(vc, owner)
        assert not owner.path, "delivered message still holds channels"
        self.in_flight -= 1
        self.delivered_total += 1
        sample = self._sample
        if sample is not None:
            sample.deliveries.append(
                (owner.delivered_at - owner.created_at, owner.distance)
            )
        if self._obs is not None:
            self._obs.on_message_delivered(self, owner)

    # ------------------------------------------------------------------
    # shared bookkeeping
    # ------------------------------------------------------------------

    def _release(self, vc: VirtualChannel, owner: Message) -> None:
        assert owner.path[0] is vc, "releasing out of tail order"
        owner.path.popleft()
        # release() keeps the channel's owned_count / owned_idx current.
        vc.release()
        channel = vc.channel
        if channel.owned_count == 0:
            self._active_channels.pop(channel, None)
        if vc.waiters is not None:
            self._wake_waiters(vc)

    def _report_deadlock(self) -> None:
        stuck = []
        if self._active_scheduler:
            waiting: List[Message] = [
                entry[1] for entry in sorted(self._route_heap)
            ]
            waiting.extend(self._parked.values())
        else:
            waiting = list(self._route_queue)
        for message in waiting[:8]:
            stuck.append(
                f"msg#{message.msg_id} {message.src}->{message.dst} "
                f"head at {message.head_node}"
            )
        summary = (
            f"no progress for {self.config.deadlock_threshold} cycles at "
            f"cycle {self.cycle} with {self.in_flight} messages in flight "
            f"(algorithm={self.algorithm.name}); sample of waiting "
            f"messages: {'; '.join(stuck) or 'none in route queue'}"
        )
        if self.sanitizer is None:
            if self._obs is not None:
                self._obs.on_deadlock(self, summary, None)
            raise DeadlockError(
                summary
                + " (run with SimulationConfig.sanitize=True for a "
                "wait-for-graph diagnosis)"
            )
        report = self.sanitizer.build_report()
        if self._obs is not None:
            self._obs.on_deadlock(self, summary, report)
        raise DeadlockError(summary + "\n" + report.format(), report=report)

    # ------------------------------------------------------------------
    # introspection helpers (used by tests and analysis)
    # ------------------------------------------------------------------

    def network_flits(self) -> int:
        """Flits currently buffered in the network."""
        return self.fabric.occupied_flits()

    def conservation_check(self) -> bool:
        """Invariant: every admitted flit is at the source, in flight or ejected.

        Used by integration and property tests.
        """
        length = self.config.message_length
        expected = self.generated_total * length
        at_source = 0
        ejected = 0
        for message in self._iter_live_messages():
            at_source += message.flits_to_inject
            ejected += message.flits_ejected
        delivered_flits = self.delivered_total * length
        in_network = self.network_flits()
        return expected == at_source + in_network + ejected + delivered_flits

    def _iter_live_messages(self) -> Iterator[Message]:
        seen = set()
        for message in self._route_queue:
            if message.msg_id not in seen:
                seen.add(message.msg_id)
                yield message
        for _, message in self._route_heap:
            if message.msg_id not in seen:
                seen.add(message.msg_id)
                yield message
        for message in self._parked.values():
            if message.msg_id not in seen:
                seen.add(message.msg_id)
                yield message
        for channel in self._active_channels:
            for vc in channel.vcs:
                owner = vc.owner
                if owner is not None and owner.msg_id not in seen:
                    seen.add(owner.msg_id)
                    yield owner

    def state_fingerprint(self) -> Tuple:
        """Hashable digest of the engine's complete dynamic state.

        Two engines driven through the same configuration must agree on
        this no matter which scheduler ran them — it is the equivalence
        oracle of the scan-vs-active fuzz tests.  Scheduler-internal
        bookkeeping (armed stamps, retry hints, waiter lists, parking
        epochs) is deliberately excluded; everything that can influence
        future simulated behaviour is included, down to the rng stream
        states and the round-robin pointers of every channel.
        """
        channels_fp = tuple(
            (
                channel.flits_moved,
                channel._rr_next,
                channel.last_transmit_cycle,
                tuple(
                    (
                        vc.vc_class,
                        vc.owner.msg_id if vc.owner is not None else None,
                        vc.occupancy,
                        vc.flits_in,
                        vc.flits_out,
                        vc.last_arrival_cycle,
                        vc.last_departure_cycle,
                        vc.flits_carried_total,
                    )
                    for vc in channel.vcs
                    if vc.owner is not None or vc.flits_carried_total
                ),
            )
            for channel in self._channels
        )
        if self._active_scheduler:
            pending = sorted(
                [entry[1].msg_id for entry in self._route_heap]
                + list(self._parked)
            )
        else:
            pending = sorted(
                message.msg_id for message in self._route_queue
            )
        messages_fp = tuple(
            sorted(
                (
                    message.msg_id,
                    message.src,
                    message.dst,
                    message.created_at,
                    message.flits_to_inject,
                    message.flits_ejected,
                    message.head_node,
                    route_state_fingerprint(message.route_state),
                )
                for message in self._iter_live_messages()
            )
        )
        delivering = tuple(
            (vc.link.index, vc.vc_class) for vc in self._delivering
        )
        controller = self.controller
        return (
            self.cycle,
            self._msg_counter,
            self.flits_moved_total,
            self.generated_total,
            self.delivered_total,
            self.in_flight,
            self.arrivals.next_due,
            controller.admitted,
            controller.refused,
            tuple(sorted(controller._outstanding.items())),
            tuple(pending),
            messages_fp,
            delivering,
            channels_fp,
            self.rng.stream(STREAM_ARRIVALS).getstate(),
            self.rng.stream(STREAM_DESTINATIONS).getstate(),
            self.rng.stream(STREAM_ROUTING).getstate(),
        )


__all__ = ["Engine"]
