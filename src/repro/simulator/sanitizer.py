"""Runtime wait-for-graph sanitizer for the simulation engine.

With ``SimulationConfig.sanitize=True`` the engine reports every failed
virtual-channel allocation here: the blocked message's *held* resources
(the virtual channels its worm currently occupies) and its *requested*
resources (the candidate channels it is waiting on, all busy).  The graph
is maintained incrementally — a message's edges are replaced whenever it
blocks again and dropped when it allocates — so when the watchdog trips,
:meth:`WaitForGraph.build_report` can immediately search the current
hold->request graph for a cycle and name the `(link, vc_class)` resources
and blocked messages involved, upgrading the bare "no progress for N
cycles" :class:`~repro.util.errors.DeadlockError` into an actionable
diagnostic.

Adaptive caveat (same as the static analysis): a message waits on its
*whole* candidate set, so a cycle here is strong evidence, not proof, of
deadlock — but when the watchdog has already established that nothing
moves, the cycle is exactly the diagnostic a developer needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.analysis.dependency_graph import Resource, find_cycle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.message import Message


class BlockedMessage:
    """Snapshot of one message that failed to allocate a channel."""

    __slots__ = ("msg_id", "src", "dst", "head_node", "held", "requested")

    def __init__(
        self,
        msg_id: int,
        src: int,
        dst: int,
        head_node: int,
        held: List[Resource],
        requested: List[Resource],
    ) -> None:
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        self.head_node = head_node
        self.held = held
        self.requested = requested

    def describe(self) -> str:
        held = (
            ", ".join(_resource_name(r) for r in self.held) or "nothing"
        )
        requested = (
            ", ".join(_resource_name(r) for r in self.requested)
            or "nothing (empty candidate set)"
        )
        return (
            f"msg#{self.msg_id} {self.src}->{self.dst} head at "
            f"{self.head_node}: holds {held}; waits on {requested}"
        )


def _resource_name(resource: Resource) -> str:
    link, vc_class = resource
    return f"(link {link}, vc {vc_class})"


class DeadlockReport:
    """What the sanitizer found when the watchdog tripped."""

    def __init__(
        self,
        cycle: Optional[List[Resource]],
        blocked: List[BlockedMessage],
        holders: Dict[Resource, int],
    ) -> None:
        #: Resources along one hold->request cycle, or None when the
        #: wait-for graph is acyclic (e.g. messages stuck on an empty
        #: candidate set, or starvation rather than deadlock).
        self.cycle = cycle
        #: Every message blocked at report time, in msg_id order.
        self.blocked = blocked
        #: resource -> msg_id of the blocked message holding it.
        self.holders = holders

    def cycle_messages(self) -> List[int]:
        """msg_ids of the blocked messages holding the cycle's resources."""
        if not self.cycle:
            return []
        seen: Set[int] = set()
        ordered: List[int] = []
        for resource in self.cycle:
            msg_id = self.holders.get(resource)
            if msg_id is not None and msg_id not in seen:
                seen.add(msg_id)
                ordered.append(msg_id)
        return ordered

    def format(self, max_blocked: int = 16) -> str:
        lines: List[str] = []
        if self.cycle:
            lines.append(
                f"wait-for cycle of {len(self.cycle)} resources:"
            )
            length = len(self.cycle)
            for position, resource in enumerate(self.cycle):
                holder = self.holders.get(resource)
                held_by = (
                    f" held by msg#{holder}" if holder is not None else ""
                )
                nxt = self.cycle[(position + 1) % length]
                lines.append(
                    f"  {_resource_name(resource)}{held_by} -> waits on "
                    f"{_resource_name(nxt)}"
                )
        else:
            lines.append(
                "no wait-for cycle among blocked messages (stuck on "
                "empty candidate sets or starved, not cyclically "
                "deadlocked)"
            )
        lines.append(f"{len(self.blocked)} blocked messages:")
        for entry in self.blocked[:max_blocked]:
            lines.append(f"  {entry.describe()}")
        if len(self.blocked) > max_blocked:
            lines.append(
                f"  ... and {len(self.blocked) - max_blocked} more"
            )
        return "\n".join(lines)


class WaitForGraph:
    """Incrementally maintained hold->request graph of blocked messages."""

    def __init__(self) -> None:
        self._blocked: Dict[int, BlockedMessage] = {}

    def __len__(self) -> int:
        return len(self._blocked)

    def record_blocked(
        self,
        message: "Message",
        requested: List[Resource],
    ) -> None:
        """(Re-)record a message that failed this cycle's allocation.

        The held set is re-derived from the message's current channel
        chain — the tail may have drained some channels since the last
        failure, so stale edges are replaced, not accumulated.
        """
        held = [(vc.link.index, vc.vc_class) for vc in message.path]
        self._blocked[message.msg_id] = BlockedMessage(
            msg_id=message.msg_id,
            src=message.src,
            dst=message.dst,
            head_node=message.head_node,
            held=held,
            requested=requested,
        )

    def clear(self, msg_id: int) -> None:
        """Drop a message's edges after it successfully allocates."""
        self._blocked.pop(msg_id, None)

    def edges(self) -> Dict[Resource, Set[Resource]]:
        """The current hold->request edge set."""
        edges: Dict[Resource, Set[Resource]] = {}
        for entry in self._blocked.values():
            for held in entry.held:
                edges.setdefault(held, set()).update(entry.requested)
        return edges

    def build_report(self) -> DeadlockReport:
        """Search the current graph for a cycle and snapshot the blockage."""
        holders: Dict[Resource, int] = {}
        for entry in self._blocked.values():
            for held in entry.held:
                holders[held] = entry.msg_id
        cycle = find_cycle(self.edges())
        blocked = sorted(
            self._blocked.values(), key=lambda entry: entry.msg_id
        )
        return DeadlockReport(cycle=cycle, blocked=blocked, holders=holders)


__all__ = ["BlockedMessage", "DeadlockReport", "WaitForGraph"]
