"""Input-buffer-limit congestion control (paper Section 3).

Following Lam & Reiser's input-buffer-limit scheme, a node may inject a new
message only while fewer than ``limit`` messages *of the same class* are
still being injected from that node; otherwise the message is refused.
Refused messages are dropped and counted (the paper's sources are throttled
— this is what keeps saturation latencies bounded in its figures).

Message classes are algorithm-specific (paper, footnote 2): the virtual
channel number(s) a message can use for hop schemes and 2pn, the intended
first (link, virtual channel) for e-cube and nlast.  The class key itself
is computed by :meth:`repro.routing.base.RoutingAlgorithm.message_class`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple


class InjectionController:
    """Per-(node, class) outstanding-injection counters."""

    def __init__(self, limit: Optional[int]) -> None:
        self.limit = limit
        self._outstanding: Dict[Tuple[int, Hashable], int] = {}
        self.admitted = 0
        self.refused = 0

    def try_admit(self, node: int, msg_class: Hashable) -> bool:
        """Admit a new message at *node*, or refuse it.

        Returns True (and starts tracking the message) if the node's
        outstanding same-class injection count is under the limit.
        """
        if self.limit is None:
            self.admitted += 1
            return True
        key = (node, msg_class)
        count = self._outstanding.get(key, 0)
        if count >= self.limit:
            self.refused += 1
            return False
        self._outstanding[key] = count + 1
        self.admitted += 1
        return True

    def injection_complete(self, node: int, msg_class: Hashable) -> None:
        """A message finished leaving *node*; free its slot."""
        if self.limit is None:
            return
        key = (node, msg_class)
        count = self._outstanding.get(key, 0)
        assert count > 0, "injection_complete without matching try_admit"
        if count == 1:
            del self._outstanding[key]
        else:
            self._outstanding[key] = count - 1

    def outstanding(self, node: int, msg_class: Hashable) -> int:
        """Current outstanding injections for a (node, class)."""
        return self._outstanding.get((node, msg_class), 0)

    def total_outstanding(self) -> int:
        """Messages still being injected, summed over every (node, class).

        With ``limit=None`` occupancy is not tracked and this reports 0;
        the ``injection_backlog`` probe documents that caveat.
        """
        return sum(self._outstanding.values())

    def reset_counters(self) -> None:
        """Zero the admitted/refused statistics (not the occupancy)."""
        self.admitted = 0
        self.refused = 0


__all__ = ["InjectionController"]
