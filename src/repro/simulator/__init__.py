"""The cycle-driven flit-level simulator.

One engine implements all three switching techniques the paper touches:

* **wormhole** — single-flit virtual-channel buffers; a blocked worm holds
  its chain of channels (the paper's main mode);
* **virtual cut-through** — buffers deep enough for a whole packet, so a
  blocked packet drains out of the network (Section 3.4's experiment);
* **store-and-forward** — like VCT, but a packet must be fully buffered at
  a node before its first flit moves on (the substrate the hop schemes'
  deadlock-freedom argument is derived from).
"""

from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine
from repro.simulator.injection import InjectionController

__all__ = ["Engine", "InjectionController", "SimulationConfig"]
