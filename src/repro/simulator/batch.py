"""Vectorized lockstep multi-seed backend (``SimulationConfig.backend="batch"``).

B simulations of one (topology, algorithm, traffic, load) configuration —
differing only by seed — advance in lockstep, one shared cycle at a time.
All per-virtual-channel state (ownership, buffer occupancy, worm flit
counters, arrival/departure stamps, lifetime counters) and all per-physical-
channel state (round-robin pointer, activity sequence) live in flat numpy
arrays with a leading batch axis, so the transmission and ejection phases
become a handful of array-at-once kernels instead of a Python scan per
lane.  Routing stays scalar per active head (algorithm callbacks and rng
tie-breaks are inherently per-message) behind a gather/scatter seam,
reusing the object engine's candidate memoization.

**Bit-identity contract** (``identity="strict"``, the default).  For
every supported configuration the batch backend reproduces the object
engine's flit schedule and
:meth:`~repro.simulator.engine.Engine.state_fingerprint` exactly, per seed
(the object engine stays the oracle; the cross-backend tests pin this).
The vectorization rests on one property of the engine's *conservative*
flow control: within a cycle, every transmit decision is a pure function
of the post-ejection, pre-transmission state.  The snapshot timestamps
(``last_arrival_cycle``/``last_departure_cycle``) exist precisely to make
the object engine's sequential channel scan order-invariant — which means
a simultaneous whole-array evaluation commits the exact same set of moves.

**Unsupported configurations** raise
:class:`~repro.util.errors.ConfigurationError`:

* ``flow_control="ideal"`` — the ideal-flow-control fixpoint lets a flit
  enter a slot freed *earlier in the same cycle*, so the committed move
  set depends on the intra-cycle poll order (a later pass can hand a
  freed slot to a lower-round-robin-rank VC).  That is a sequential
  data dependence, not vectorizable bit-identically.
* ``switching="saf"`` — store-and-forward reads the *live* upstream
  ``flits_in`` during the pass (packet assembly can complete mid-cycle),
  which is order-dependent even under conservative flow control.
* ``obs=True`` / ``sanitize=True`` — per-cycle per-message hooks defeat
  the point of batching; attach them to an object-backend run instead.

Wormhole and VCT, both mux policies, and all selection policies are
supported (conservative wormhole uses the 2-flit buffers
``effective_buffer_depth`` already assigns it).

**Relaxed identity** (``identity="relaxed"``) trades per-seed
bit-identity for speed past the scalar seam: per-lane ``random.Random``
streams become per-lane numpy Generators with draws batched per phase
(geometric arrival gaps and destination uniforms prefetched through
stream-order-preserving buffers, routing tie-breaks drawn per round),
and the scalar routing/VC-allocation loop becomes a round-based
vectorized kernel gathering candidate sets from an interned
:class:`repro.routing.tables.RouteTable`.  Message state itself is
structure-of-arrays (:class:`repro.simulator.soa.MessageSlab`):
per-message columns in ``[B, M]`` slabs addressed by free-list-recycled
slots, so no ``_BatchMessage`` object is constructed or touched
anywhere on the relaxed per-cycle path (strict mode keeps the object
representation — it is the bit-identity oracle).  Results remain
deterministic per (config, seed) and independent of batch composition —
each lane's draw and buffer consumption sequence depends only on its
own state — but differ per seed from the strict schedule; their
distributions are validated against strict runs by
:mod:`repro.analysis.equivalence`.

**Performance structure.**  The strict per-cycle cost has three tiers:

1. the transmit/eject kernels — whole-array work shared by all lanes,
   indexed through 1-D views with absolute indices ``b*C*V + flat``;
2. the scalar seam (routing, generation, move consequences) — reads go
   through plain-Python mirror lists (``owner``/``owned-count`` per
   lane), and array writes from VC allocation/release are *deferred*
   into pending lists flushed as one batched scatter per cycle just
   before the transmit kernel (``_flush``), so the seam never pays
   per-element numpy indexing;
3. sparse move consequences (head arrivals, releases, injection
   completion) — extracted by the kernel, applied scalar per lane in
   ascending moving-channel ``active_seq`` order, which is exactly the
   object engine's poll order over its insertion-ordered active set.

The relaxed path replaces tiers 2–3 with masked array kernels over the
slabs: generation writes admitted messages as column scatters, routing
is a park/wake pass (blocked requests re-test only when a candidate
VC's release stamp advances — see ``_rel_stamp``) over a tombstoning
:class:`~repro.simulator.soa.RequestPool`, and move consequences
(release bookkeeping, ejection, injection completion, per-winner
commits) are masked scatters in the per-cycle epilogue.  What remains
per cycle is numpy kernel dispatch roughly balanced across transmit,
route, and generate — the residual floor recorded in
docs/performance.md.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappush
from typing import (
    Any,
    Deque,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.routing.base import RoutingAlgorithm
from repro.routing.tables import RouteTable
from repro.simulator.config import SimulationConfig
from repro.simulator.injection import InjectionController
from repro.simulator.soa import DeliverQueue, MessageSlab, RequestPool
from repro.stats.counters import SampleRecord
from repro.topology.base import Link, Topology
from repro.traffic.arrivals import (
    GapBuffer,
    GeometricArrivals,
    UniformBuffer,
)
from repro.traffic.base import (
    TrafficPattern,
    destinations_from_uniforms,
)
from repro.traffic.load import offered_load_to_rate
from repro.util.errors import ConfigurationError, DeadlockError
from repro.util.fingerprint import state_fingerprint as route_state_fingerprint
from repro.util.rng import (
    STREAM_ARRIVALS,
    STREAM_DESTINATIONS,
    STREAM_ROUTING,
    RngStreams,
)

#: A routing candidate resolved to array coordinates:
#: (flat VC index = channel * V + vc_class, channel index, vc_class, link).
_Candidate = Tuple[int, int, int, Link]

#: Masked-out load in the relaxed least-multiplexed kernel (any value
#: above every possible per-channel reserved-VC count works).
_LOAD_INF = np.int64(1) << 62

#: "Never due" sentinel for the relaxed arrival array (matches the
#: scalar GeometricArrivals/geometric_gaps sentinel).
_ARR_NEVER = 1 << 60


class _BatchMessage:
    """One worm of one lane; mirrors :class:`repro.network.message.Message`
    with the flit counters externalized into the engine's arrays."""

    __slots__ = (
        "msg_id",
        "src",
        "dst",
        "distance",
        "route_state",
        "msg_class",
        "created_at",
        "delivered_at",
        "path",
        "head_node",
        "src_flat",
        "cached_candidates",
        "route_seq",
        "parked",
        "park_epoch",
    )

    def __init__(
        self,
        msg_id: int,
        src: int,
        dst: int,
        distance: int,
        route_state: Any,
        msg_class: Hashable,
        created_at: int,
    ) -> None:
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        self.distance = distance
        self.route_state = route_state
        self.msg_class = msg_class
        self.created_at = created_at
        self.delivered_at: Optional[int] = None
        #: Flat VC indices currently held, oldest first (cf. Message.path).
        self.path: Deque[int] = deque()
        self.head_node = src
        #: Flat index of the first-hop VC (None until allocated); the
        #: lane's flits_to_inject counter lives in the inject array there.
        self.src_flat: Optional[int] = None
        self.cached_candidates: Optional[Sequence[_Candidate]] = None
        self.route_seq = -1
        self.parked = False
        self.park_epoch = 0


class _Lane:
    """Per-seed scalar state: everything that is not a flat array."""

    __slots__ = (
        "index",
        "off",
        "seed",
        "relaxed",
        "rng",
        "rng_arrivals",
        "rng_destinations",
        "rng_routing",
        "gen_arrivals",
        "gen_destinations",
        "gen_routing",
        "injection_rate",
        "arr_buf",
        "dst_buf",
        "arrivals",
        "controller",
        "msgs",
        "route_heap",
        "route_seq",
        "parked",
        "waiters",
        "delivering",
        "frozen_pending",
        "owner_py",
        "owned_py",
        "cycle",
        "in_flight",
        "msg_counter",
        "generated_total",
        "delivered_total",
        "flits_moved_total",
        "last_progress",
        "next_active_seq",
        "owned_total",
        "sample",
        "sample_chunks",
        "sample_flits_base",
        "sample_generated_base",
        "sample_refused_base",
        "sample_vc_base",
        "error",
    )

    def __init__(
        self,
        index: int,
        off: int,
        seed: int,
        num_nodes: int,
        num_flat: int,
        num_channels: int,
        injection_rate: float,
        injection_limit: Optional[int],
        relaxed: bool = False,
    ) -> None:
        self.index = index
        #: This lane's offset into the 1-D array views: index * C * V.
        self.off = off
        self.seed = seed
        self.relaxed = relaxed
        self.injection_rate = injection_rate
        self.rng = RngStreams(seed)
        if relaxed:
            # Relaxed identity: per-phase numpy Generators; the arrival
            # schedule lives in the engine's lane-fused due array, so
            # the lane carries no arrivals object.  Strict lanes never
            # touch the numpy streams, relaxed lanes never touch the
            # scalar ones.
            self.arrivals: Any = None
        else:
            self.arrivals = GeometricArrivals(num_nodes, injection_rate)
            self.arrivals.start(0, self.rng.stream(STREAM_ARRIVALS))
        self.controller = InjectionController(injection_limit)
        #: Live (undelivered) messages by id; owner arrays store the ids.
        self.msgs: Dict[int, _BatchMessage] = {}
        self.route_heap: List[Tuple[int, _BatchMessage]] = []
        self.route_seq = 0
        self.parked: Dict[int, _BatchMessage] = {}
        #: flat VC index -> [(park_epoch, message), ...] waiter lists.
        self.waiters: Dict[int, List[Tuple[int, _BatchMessage]]] = {}
        #: Flat VC indices delivering at their destination, in
        #: registration order (cf. Engine._delivering).
        self.delivering: List[int] = []
        #: Relaxed/SoA: slab slots of route requests frozen when the
        #: lane stopped (the shared pool drops them; fingerprints and
        #: deadlock reports still need the pending set).
        self.frozen_pending: List[int] = []
        #: Plain-Python mirrors of the owner / per-channel owned-count
        #: array state, so the scalar routing seam reads without numpy
        #: scalar indexing (the arrays are batch-updated in _flush).
        self.owner_py: List[int] = [-1] * num_flat
        self.owned_py: List[int] = [0] * num_channels
        self.cycle = 0
        self.in_flight = 0
        self.msg_counter = 0
        self.generated_total = 0
        self.delivered_total = 0
        self.flits_moved_total = 0
        self.last_progress = 0
        self.next_active_seq = 0
        #: Reserved VCs across the lane (drives the all-idle early-out).
        self.owned_total = 0
        self.sample: Optional[SampleRecord] = None
        #: Relaxed/SoA delivery buffering: per-cycle (latency, hops)
        #: array chunks, materialized into the sample at end_sample.
        self.sample_chunks: List[Tuple[np.ndarray, np.ndarray]] = []
        self.sample_flits_base = 0
        self.sample_generated_base = 0
        self.sample_refused_base = 0
        self.sample_vc_base: List[int] = []
        #: DeadlockError recorded when this lane's watchdog fired.
        self.error: Optional[DeadlockError] = None
        self.refresh_streams()

    def refresh_streams(self) -> None:
        if self.relaxed:
            self.gen_arrivals = self.rng.numpy_stream(STREAM_ARRIVALS)
            self.gen_destinations = self.rng.numpy_stream(
                STREAM_DESTINATIONS
            )
            self.gen_routing = self.rng.numpy_stream(STREAM_ROUTING)
            # Prefetch buffers over the fresh streams: every arrival /
            # destination draw goes through these (stream order
            # preserved; see GapBuffer), so they renew with the
            # generators on epoch boundaries.
            self.arr_buf = GapBuffer(
                self.injection_rate, self.gen_arrivals
            )
            self.dst_buf = UniformBuffer(self.gen_destinations)
        else:
            self.rng_arrivals = self.rng.stream(STREAM_ARRIVALS)
            self.rng_destinations = self.rng.stream(STREAM_DESTINATIONS)
            self.rng_routing = self.rng.stream(STREAM_ROUTING)


class BatchEngine:
    """B lockstep simulation lanes over shared flat-array network state.

    Array layout (``B`` lanes, ``C`` physical channels, ``V`` virtual
    channels per channel, flat VC index ``f = c * V + v``, absolute index
    ``a = b * C * V + f``; every [B, C*V] array also has a 1-D view used
    with absolute indices):

    ========================  =============  ==================================
    array                     shape/dtype    meaning
    ========================  =============  ==================================
    ``owner``                 [B, C*V] i64   owning msg_id, -1 when free
    ``occ/fin/fout``          [B, C*V] i32   buffer occupancy / flits in / out
    ``la/ld``                 [B, C*V] i32   last arrival/departure cycle (-1)
    ``carried``               [B, C*V] i64   lifetime flits carried
    ``up``                    [B, C*V] i32   upstream flat index, -1 at source
    ``up_abs``                [B, C*V] intp  absolute upstream index (gather)
    ``inject``                [B, C*V] i32   source-side flits_to_inject
    ``issrc/front/isdst``     [B, C*V] bool  source-fed / worm front / at dst
    ``ejected``               [B, C*V] i32   flits ejected at this dst VC
    ``rr_next``               [B, C]   i32   round-robin cursor
    ``ch_moved/last_tx``      [B, C]         lifetime moves / last move cycle
    ``active_seq``            [B, C]   i64   active-set insertion order
    ``rr_key``                [B, C, V] i16  mux scan rank of each VC
    ========================  =============  ==================================
    """

    def __init__(
        self,
        config: SimulationConfig,
        seeds: Sequence[int],
        topology: Optional[Topology] = None,
        algorithm: Optional[RoutingAlgorithm] = None,
        traffic: Optional[TrafficPattern] = None,
        slab_slots: Optional[int] = None,
    ) -> None:
        if not seeds:
            raise ConfigurationError("batch backend needs at least one seed")
        if config.flow_control != "conservative":
            raise ConfigurationError(
                "the batch backend requires flow_control='conservative': "
                "ideal flow control resolves same-cycle buffer reuse with "
                "an order-dependent fixpoint that cannot be vectorized "
                "bit-identically (see repro.simulator.batch)"
            )
        if config.switching == "saf":
            raise ConfigurationError(
                "the batch backend does not support switching='saf': "
                "packet assembly completes mid-cycle, an order-dependent "
                "condition (see repro.simulator.batch)"
            )
        if config.obs or config.sanitize:
            raise ConfigurationError(
                "the batch backend does not support obs/sanitize hooks; "
                "use backend='object' for observed or sanitized runs"
            )
        if config.message_length >= 2 ** 15:
            raise ConfigurationError(
                "the batch backend stores flit counters as int16; "
                f"message_length {config.message_length} does not fit"
            )
        self.config = config
        self.topology = topology if topology is not None else (
            config.build_topology()
        )
        self.algorithm = algorithm if algorithm is not None else (
            config.build_algorithm(self.topology)
        )
        self.traffic = traffic if traffic is not None else (
            config.build_traffic(self.topology)
        )
        self.injection_rate = offered_load_to_rate(
            config.offered_load,
            self.topology,
            config.message_length,
            self.traffic.mean_distance(),
        )
        self.seeds = list(seeds)

        b = len(self.seeds)
        c = len(self.topology.links)
        v = self.algorithm.num_virtual_channels
        self._b = b
        self._c = c
        self._v = v
        cv = c * v
        self._cv = cv
        self._length = config.message_length
        self._cap = config.effective_buffer_depth()
        self._priority = config.mux_policy == "highest_class"
        self._links: List[Link] = list(self.topology.links)

        # Relaxed identity mode: table-driven routing kernels + batched
        # numpy rng + structure-of-arrays message state (see the
        # identity-modes section of the module/config docs).  The strict
        # path below never reads any of this state.
        self._relaxed = config.identity == "relaxed"
        if self._relaxed:
            self._table = RouteTable(self.algorithm)
            self._dest_table = self.traffic.destination_table()
            nn = self.topology.num_nodes
            self._num_nodes = nn
            #: Dense (src * N + dst) injection caches — route row,
            #: interned class id, distance — filled on each pair's first
            #: arrival (the callbacks are deterministic per pair), then
            #: gathered array-at-once per generation cycle.
            self._ic_row = np.full(nn * nn, -1, dtype=np.int64)
            self._ic_cls = np.zeros(nn * nn, dtype=np.int64)
            self._ic_dist = np.zeros(nn * nn, dtype=np.int64)
            self._class_ids: Dict[Hashable, int] = {}
            self._class_list: List[Hashable] = []
            #: Outstanding injections, class-major [B, K*N]: the
            #: vectorized InjectionController occupancy (class columns
            #: append as classes intern; admission keys are unique per
            #: lane-cycle because arrival gaps are >= 1).
            self._outst = np.zeros((b, nn), dtype=np.int64)
            self._outst_f = self._outst.reshape(-1)
            #: Per-channel reserved-VC counts: least-multiplexed loads
            #: and 0->1 activation detection both gather from these
            #: (relaxed keeps no owned_py mirrors).
            self._owned_ch = np.zeros((b, c), dtype=np.int64)
            self._owned_ch_f = self._owned_ch.reshape(-1)
            #: The SoA message state: no _BatchMessage objects anywhere
            #: on the relaxed per-cycle path.
            self._slab = (
                MessageSlab(b)
                if slab_slots is None
                else MessageSlab(b, slab_slots)
            )
            self._pool = RequestPool(self._table.cand_flat.shape[1])
            self._dv = DeliverQueue()
            #: Cycle each VC was last released (park/wake stamp): a
            #: pooled request re-tests only when some candidate's stamp
            #: reaches its blocked-at cycle.  One extra sentinel slot
            #: at the end holds -inf so the pool's -1 candidate padding
            #: (which wraps to index b*cv) can never trigger a wake.
            self._rel_stamp = np.full(b * cv + 1, -1, dtype=np.int64)
            self._rel_stamp[b * cv] = np.iinfo(np.int64).min
            #: Per-lane route-request / active-set sequence counters
            #: (the array counterparts of lane.route_seq and
            #: lane.next_active_seq).
            self._rseq = np.zeros(b, dtype=np.int64)
            self._nact = np.zeros(b, dtype=np.int64)
            self._progress = np.zeros(b, dtype=bool)
            #: Reserved VCs across all lanes (transmit-phase early-out).
            self._owned_any = 0

        def flat2(dtype: Any, fill: int = 0) -> Tuple[np.ndarray, np.ndarray]:
            arr = np.full((b, cv), fill, dtype=dtype)
            return arr, arr.reshape(-1)

        # Flit counters are int16 (validated above: message_length fits)
        # to halve the memory traffic of the per-cycle readiness scan.
        self._owner, self._owner_f = flat2(np.int64, -1)
        # occ and inject share one backing pool so the transmit kernel's
        # supply check is a single gather: a VC's supply index is its
        # upstream's occupancy cell, or (pool_offset + own cell) when
        # source-fed — no masked overwrite per cycle.
        n_flat = b * cv
        self._supply_pool = np.zeros(2 * n_flat, dtype=np.int16)
        self._occ_f = self._supply_pool[:n_flat]
        self._occ = self._occ_f.reshape(b, cv)
        self._fin, self._fin_f = flat2(np.int16)
        self._fout, self._fout_f = flat2(np.int16)
        self._la, self._la_f = flat2(np.int32, -1)
        self._ld, self._ld_f = flat2(np.int32, -1)
        self._carried, self._carried_f = flat2(np.int64)
        self._up, self._up_f = flat2(np.int32, -1)
        # Absolute supply index for the one big gather in the transmit
        # kernel: the upstream VC's occupancy cell, or the VC's own
        # inject cell (pool offset + abs) when source-fed; 0 (a valid
        # dummy) when unowned.
        self._up_abs, self._up_abs_f = flat2(np.intp)
        self._issrc, self._issrc_f = flat2(bool)
        self._inject_f = self._supply_pool[n_flat:]
        self._inject = self._inject_f.reshape(b, cv)
        self._front, self._front_f = flat2(bool)
        self._isdst, self._isdst_f = flat2(bool)
        self._ejected, self._ejected_f = flat2(np.int16)

        self._rr_next = np.zeros((b, c), dtype=np.int32)
        self._rr_next_f = self._rr_next.reshape(-1)
        self._ch_moved = np.zeros((b, c), dtype=np.int64)
        self._ch_moved_f = self._ch_moved.reshape(-1)
        self._last_tx = np.full((b, c), -1, dtype=np.int32)
        self._last_tx_f = self._last_tx.reshape(-1)
        self._active_seq = np.full((b, c), -1, dtype=np.int64)
        self._active_seq_f = self._active_seq.reshape(-1)

        # Mux keys are *packed*: (rank << 6) | vc_class, so one min
        # reduction per channel yields the winning rank AND its VC (low
        # six bits) without a separate argmin pass.  rank < V <= 63.
        if v > 63:
            raise ConfigurationError(
                "the batch backend packs mux keys into 6-bit VC slots; "
                f"{v} virtual channels per physical channel exceed 63"
            )
        self._sentinel = np.int16(v << 6)
        #: Successor table for the round-robin cursor: nextv[v] = (v+1)%V.
        self._nextv = np.arange(1, v + 1, dtype=np.int32)
        self._nextv[v - 1] = 0
        #: rrk_table[r] is the packed key row for cursor r.
        vrange = np.arange(v, dtype=np.int16)
        self._rrk_table = (
            ((vrange[None, :] - vrange[:, None]) % v) << 6 | vrange[None, :]
        ).astype(np.int16)
        if self._priority:
            # Static strict-priority key: highest class first.
            self._rr_key = (
                ((v - 1 - vrange) << 6 | vrange).astype(np.int16).reshape(1, 1, v)
            )
            self._rr_key2 = self._rr_key.reshape(1, v)
        else:
            # Cyclic round-robin rank (v - rr_next) mod V, maintained
            # sparsely as rr_next moves; rr_next starts at 0 everywhere.
            self._rr_key = np.tile(self._rrk_table[0], (b, c, 1))
            self._rr_key2 = self._rr_key.reshape(b * c, v)

        # Transmit-kernel scratch (one allocation per engine, not cycle).
        n = b * cv
        self._n_flat = n
        self._sc_ready = np.zeros(n, dtype=bool)
        self._sc_tmp = np.zeros(n, dtype=bool)
        self._sc_upocc = np.zeros(n, dtype=np.int16)
        self._sc_key = np.empty((b, c, v), dtype=np.int16)
        self._sc_key_f = self._sc_key.reshape(-1)
        self._sc_key2 = self._sc_key.reshape(b * c, v)
        self._sc_min = np.empty((b, c), dtype=np.int16)
        self._sc_min_f = self._sc_min.reshape(-1)
        self._sc_move = np.empty(b * c, dtype=bool)
        # "Still transmitting" mask (owned AND worm not fully received),
        # maintained incrementally — set on allocation (_flush), cleared
        # when the last flit lands (_transmit_kernel) or on release — so
        # the per-cycle ready scan starts from one bool array instead of
        # re-deriving owner >= 0 and fin < L from the wide arrays.
        self._txable_f = np.zeros(n, dtype=bool)

        self._lane_on = np.ones(b, dtype=bool)
        self._lane_mask_f = np.ones(n, dtype=bool)
        self._all_on = True

        # Deferred allocation/release writes, flushed as one batched
        # scatter per cycle (see _flush).  The scalar seam reads only the
        # per-lane Python mirrors, so these can lag until the next kernel.
        self._pend_rel: List[int] = []  # absolute indices to free
        #: Allocation rows (abs index, msg_id, upstream flat or -1,
        #: absolute upstream or 0, source-fed?, ends at destination?);
        #: one tuple per reservation, unzipped into scatters by _flush.
        self._pa_rows: List[Tuple[int, int, int, int, bool, bool]] = []
        #: Relaxed-mode allocation blocks: per-round ndarray tuples
        #: (abs, msg_id, up, up_abs, issrc, isdst) landed by _flush.
        self._pa_blocks: List[Tuple[np.ndarray, ...]] = []
        self._pa_act_ch: List[int] = []  # activation: absolute channel
        self._pa_act_seq: List[int] = []  # activation: assigned seq
        #: SoA-mode array counterparts (strict never appends to these):
        #: release blocks of absolute indices, and (channel, seq)
        #: activation block pairs.
        self._pend_rel_blocks: List[np.ndarray] = []
        self._pa_act_blocks: List[Tuple[np.ndarray, np.ndarray]] = []

        self.cycle = 0
        self.lanes: List[_Lane] = [
            _Lane(
                index,
                index * cv,
                seed,
                self.topology.num_nodes,
                cv,
                c,
                self.injection_rate,
                config.injection_limit,
                self._relaxed,
            )
            for index, seed in enumerate(self.seeds)
        ]
        if self._relaxed:
            # Lane-fused arrival schedule: every lane's per-node due
            # cycles in one [B, N] array, polled with one mask per cycle
            # instead of one numpy round-trip per lane.  Gap redraws
            # stay per lane (each lane's own stream), so a lane's
            # arrival sequence is independent of the batch composition.
            n_nodes = self.topology.num_nodes
            self._num_nodes = n_nodes
            self._gen_due = np.empty((b, n_nodes), dtype=np.int64)
            self._gen_due_f = self._gen_due.reshape(-1)
            for lane in self.lanes:
                # First arrivals at or after cycle 0 (cf.
                # BatchedGeometricArrivals.start(0, gen)).
                self._gen_due[lane.index] = -1 + lane.arr_buf.take(
                    n_nodes
                )
            self._gen_next = int(self._gen_due.min())
        self._running: List[Tuple[int, _Lane]] = list(enumerate(self.lanes))
        # Shared resolved-candidate cache, keyed like the object engine's
        # (head node, destination, algorithm state key); identical across
        # lanes because topology/algorithm are shared and deterministic.
        self._resolved_cache: Dict[
            Tuple[int, int, Hashable], Tuple[_Candidate, ...]
        ] = {}
        # _select scratch lists (cf. Engine._free_scratch/_best_scratch).
        self._free_scratch: List[_Candidate] = []
        self._best_scratch: List[_Candidate] = []

    # ------------------------------------------------------------------
    # public driving interface
    # ------------------------------------------------------------------

    @property
    def has_running_lanes(self) -> bool:
        return bool(self._running)

    @property
    def running_lane_indices(self) -> List[int]:
        return [b for b, _ in self._running]

    def lane_errors(self) -> Dict[int, DeadlockError]:
        """Deadlock errors recorded per failed lane index."""
        return {
            lane.index: lane.error
            for lane in self.lanes
            if lane.error is not None
        }

    def stop_lane(self, index: int) -> None:
        """Freeze a finished lane; the rest keep advancing in lockstep."""
        self._running = [
            (b, lane) for b, lane in self._running if b != index
        ]
        self._lane_on[index] = False
        self._lane_mask_f = np.repeat(self._lane_on, self._cv)
        self._all_on = False
        if self._relaxed:
            # A frozen lane must stop generating: its due row would
            # otherwise keep matching the poll mask every cycle.
            self._gen_due[index] = _ARR_NEVER
            self._gen_next = int(self._gen_due.min())
            # Pull the lane's pending requests and delivering entries
            # out of the shared pools so the remaining lanes' kernels
            # never revisit them; both freeze on the lane
            # (state_fingerprint and deadlock reports still need them).
            lane = self.lanes[index]
            slots_p, _seqs = self._pool.lane_entries(index)
            if slots_p.shape[0]:
                lane.frozen_pending.extend(slots_p.tolist())
            self._pool.drop_lane(index)
            taken = self._dv.take_lane(index, self._cv)
            if taken.shape[0]:
                off = index * self._cv
                for a in taken.tolist():
                    lane.delivering.append(a - off)

    def run_cycles(self, cycles: int) -> None:
        """Advance every running lane by *cycles* lockstep cycles.

        Idle fast-forward mirrors the object engine's: when every running
        lane has nothing in flight, the clock jumps to the earliest
        pending arrival across lanes (the skipped cycles touch no state
        and no rng stream in any lane, so this is bit-identical to
        stepping each of them).
        """
        end = self.cycle + cycles
        while self.cycle < end:
            running = self._running
            if not running:
                self.cycle = end
                return
            if all(lane.in_flight == 0 for _, lane in running):
                if self._relaxed:
                    next_due = self._gen_next
                else:
                    next_due = min(
                        lane.arrivals.next_due for _, lane in running
                    )
                if next_due > self.cycle:
                    target = next_due if next_due < end else end
                    delta = target - self.cycle
                    self.cycle = target
                    for _, lane in running:
                        lane.cycle += delta
                    if self.cycle == end:
                        return
            self.step()

    def step(self) -> None:
        """One lockstep cycle: the object engine's four phases, batched."""
        if self._relaxed:
            self._step_soa()
        else:
            self._step_strict()

    def _step_strict(self) -> None:
        """One strict-identity cycle (scalar seam + shared kernels)."""
        cyc = self.cycle
        running = self._running
        for _, lane in running:
            if lane.arrivals.next_due <= cyc:
                self._generate_lane(lane, cyc)
        eject_flags: Optional[np.ndarray] = None
        for _, lane in running:
            if lane.delivering:
                eject_flags = self._eject_all(cyc)
                break
        policy = self.config.selection_policy
        route_flags = {}
        for b, lane in running:
            if lane.route_heap:
                route_flags[b] = self._route_lane(lane, b, policy)
        moves: Optional[np.ndarray] = None
        for _, lane in running:
            if lane.owned_total:
                self._flush()
                moves = self._transmit_kernel(cyc)
                break
        dead: List[Tuple[int, _Lane]] = []
        threshold = self.config.deadlock_threshold
        moves_list = moves.tolist() if moves is not None else None
        for b, lane in running:
            progressed = route_flags.get(b, False)
            if moves_list is not None:
                moved = moves_list[b]
                if moved:
                    lane.flits_moved_total += moved
                    progressed = True
            if eject_flags is not None and eject_flags[b]:
                progressed = True
            if progressed:
                lane.last_progress = cyc
            elif lane.in_flight and cyc - lane.last_progress > threshold:
                dead.append((b, lane))
        for b, lane in dead:
            self._fail_lane(b, lane)
        self.cycle = cyc + 1
        for _, lane in self._running:
            lane.cycle = self.cycle

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _step_soa(self) -> None:
        """One relaxed-identity cycle over the SoA message state.

        Same four phases; every per-message consequence (injection
        completion, release bookkeeping, ejection accounting, the
        epilogue, the winner commits) runs as masked array kernels over
        the slab — the per-lane loop below touches only O(B) progress
        counters, never messages.
        """
        cyc = self.cycle
        running = self._running
        if self._gen_next <= cyc:
            self._generate_soa(cyc)
        eject_flags: Optional[np.ndarray] = None
        if self._dv.n:
            eject_flags = self._eject_soa(cyc)
        progress = self._progress
        progress[:] = False
        if self._pool.n:
            self._route_soa(cyc)
        moves: Optional[np.ndarray] = None
        if self._owned_any:
            self._flush()
            moves = self._transmit_kernel(cyc)
        dead: List[Tuple[int, _Lane]] = []
        threshold = self.config.deadlock_threshold
        moves_list = moves.tolist() if moves is not None else None
        prog_list = progress.tolist()
        ej_list = (
            eject_flags.tolist() if eject_flags is not None else None
        )
        for b, lane in running:
            progressed = prog_list[b]
            if moves_list is not None:
                moved = moves_list[b]
                if moved:
                    lane.flits_moved_total += moved
                    progressed = True
            if ej_list is not None and ej_list[b]:
                progressed = True
            if progressed:
                lane.last_progress = cyc
            elif lane.in_flight and cyc - lane.last_progress > threshold:
                dead.append((b, lane))
        for b, lane in dead:
            self._fail_lane(b, lane)
        self.cycle = cyc + 1
        for _, lane in self._running:
            lane.cycle = self.cycle

    def advance_streams(self, index: int) -> None:
        """Fresh random streams for one lane (between sampling periods)."""
        lane = self.lanes[index]
        lane.rng.advance_epoch()
        lane.refresh_streams()
        if lane.relaxed:
            # Re-draw the lane's pending gaps from the fresh stream
            # (cf. BatchedGeometricArrivals.reseed).
            self._gen_due[index] = self.cycle + lane.arr_buf.take(
                self._num_nodes
            )
            self._gen_next = int(self._gen_due.min())
        else:
            lane.arrivals.reseed(self.cycle, lane.rng_arrivals)

    # -- sampling --------------------------------------------------------

    def start_sample(self, index: int) -> None:
        lane = self.lanes[index]
        assert lane.sample is None, "a sample is already active"
        lane.sample = SampleRecord(lane.cycle)
        lane.sample_chunks = []
        lane.sample_flits_base = lane.flits_moved_total
        lane.sample_generated_base = lane.controller.admitted
        lane.sample_refused_base = lane.controller.refused
        lane.sample_vc_base = self.vc_class_totals(index)

    def end_sample(self, index: int) -> SampleRecord:
        lane = self.lanes[index]
        sample = lane.sample
        assert sample is not None, "no sample is active"
        if self._relaxed:
            # Materialize the buffered per-cycle delivery chunks (the
            # SoA completion kernel never touches the record itself).
            for lat, hops in lane.sample_chunks:
                sample.extend_deliveries(lat.tolist(), hops.tolist())
            lane.sample_chunks = []
        sample.cycles = lane.cycle - sample.start_cycle
        sample.flits_moved = (
            lane.flits_moved_total - lane.sample_flits_base
        )
        sample.generated = (
            lane.controller.admitted - lane.sample_generated_base
        )
        sample.refused = lane.controller.refused - lane.sample_refused_base
        sample.vc_usage = [
            total - base
            for total, base in zip(
                self.vc_class_totals(index), lane.sample_vc_base
            )
        ]
        lane.sample = None
        return sample

    # ------------------------------------------------------------------
    # phase 1: generation (scalar per lane; identical to the object path)
    # ------------------------------------------------------------------

    def _generate_lane(self, lane: _Lane, cycle: int) -> None:
        due = lane.arrivals.pop_due(cycle, lane.rng_arrivals)
        rng_dest = lane.rng_destinations
        traffic = self.traffic
        for node in due:
            dst = traffic.sample_destination(node, rng_dest)
            if dst is not None:
                self._inject_lane(lane, node, dst, cycle)

    def _inject_lane(
        self, lane: _Lane, src: int, dst: int, cycle: int
    ) -> bool:
        algorithm = self.algorithm
        state = algorithm.new_state(src, dst)
        msg_class = algorithm.message_class(src, dst, state)
        if not lane.controller.try_admit(src, msg_class):
            return False
        message = _BatchMessage(
            msg_id=lane.msg_counter,
            src=src,
            dst=dst,
            distance=self.topology.distance(src, dst),
            route_state=state,
            msg_class=msg_class,
            created_at=cycle,
        )
        lane.msg_counter += 1
        lane.generated_total += 1
        lane.in_flight += 1
        lane.msgs[message.msg_id] = message
        self._enqueue_route(lane, message)
        return True

    # ------------------------------------------------------------------
    # phase 2: ejection (array kernel + scalar completions)
    # ------------------------------------------------------------------

    def _eject_all(self, cycle: int) -> np.ndarray:
        """Consume settled destination flits across all lanes at once."""
        blocks_a: List[np.ndarray] = []
        for _, lane in self._running:
            if lane.delivering:
                entries = np.asarray(lane.delivering, dtype=np.intp)
                entries += lane.off
                blocks_a.append(entries)
        ea = blocks_a[0] if len(blocks_a) == 1 else np.concatenate(blocks_a)
        flags, comp_a = self._eject_kernel(ea, cycle)
        if comp_a.size:
            cv = self._cv
            completed: Dict[int, Set[int]] = {}
            for a in comp_a.tolist():
                b, f = divmod(a, cv)
                lane = self.lanes[b]
                self._complete(lane, f)
                completed.setdefault(b, set()).add(f)
            for b, done in completed.items():
                lane = self.lanes[b]
                lane.delivering = [
                    f for f in lane.delivering if f not in done
                ]
        return flags

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _eject_kernel(
        self, ea: np.ndarray, cycle: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array-at-once ejection over the gathered delivering VCs.

        Only settled flits (present since the start of the cycle) are
        consumed; ejection never stamps last_departure_cycle, so the
        freed slots are visible to this same cycle's transmission — both
        exactly as in Engine._eject.
        """
        occ_f = self._occ_f
        settled = occ_f[ea] - (self._la_f[ea] == cycle)
        pos = settled > 0
        pa = ea[pos]
        ps = settled[pos]
        occ_f[pa] -= ps
        self._fout_f[pa] += ps
        ej_new = self._ejected_f[pa] + ps
        self._ejected_f[pa] = ej_new
        flags = np.zeros(self._b, dtype=bool)
        flags[pa // self._cv] = True
        comp = ej_new >= self._length
        return flags, pa[comp]

    def _complete(self, lane: _Lane, flat: int) -> None:
        message = lane.msgs[lane.owner_py[flat]]
        message.delivered_at = lane.cycle
        self._release(lane, flat, message)
        assert not message.path, "delivered message still holds channels"
        lane.in_flight -= 1
        lane.delivered_total += 1
        del lane.msgs[message.msg_id]
        sample = lane.sample
        if sample is not None:
            sample.deliveries.append(
                (message.delivered_at - message.created_at,
                 message.distance)
            )

    # ------------------------------------------------------------------
    # phase 3: routing / VC allocation (scalar per lane, parked waiters)
    # ------------------------------------------------------------------

    def _enqueue_route(self, lane: _Lane, message: _BatchMessage) -> None:
        seq = lane.route_seq
        lane.route_seq = seq + 1
        message.route_seq = seq
        heappush(lane.route_heap, (seq, message))

    def _route_lane(self, lane: _Lane, b: int, policy: str) -> bool:
        """Port of Engine._route_active with parking always on.

        Parking is invisible to the flit schedule (a blocked request
        consumes no rng), and the batch backend never attaches the
        observer/sanitizer hooks that would need per-cycle re-polls.
        """
        heap = lane.route_heap
        batch = sorted(heap)  # unique seqs: messages never compared
        heap.clear()
        rng = lane.rng_routing
        owner_py = lane.owner_py
        progressed = False
        for _seq, message in batch:
            candidates = message.cached_candidates
            if candidates is None:
                candidates = self._memo_candidates(message)
                message.cached_candidates = candidates
            # Inlined singleton fast path (deterministic algorithms and
            # single-free-candidate states dominate; no rng draw).
            if len(candidates) == 1:
                chosen: Optional[_Candidate] = candidates[0]
                if owner_py[candidates[0][0]] >= 0:
                    chosen = None
            else:
                chosen = self._select(lane, candidates, policy, rng)
            if chosen is None:
                self._park(lane, message, candidates)
                continue
            self._allocate(lane, b, message, chosen)
            progressed = True
        return progressed

    def _memo_candidates(
        self, message: _BatchMessage
    ) -> Sequence[_Candidate]:
        """Resolved candidates via the shared memo (cf. Engine version)."""
        algorithm = self.algorithm
        key = algorithm.state_key(message.route_state)
        v = self._v
        node = message.head_node
        if key is None:
            choices = algorithm.candidates(
                message.route_state, node, message.dst
            )
            return [
                (link.index * v + vc_class, link.index, vc_class, link)
                for link, vc_class in choices
            ]
        cache = self._resolved_cache
        entry = (node, message.dst, key)
        resolved = cache.get(entry)
        if resolved is None:
            choices = algorithm.candidates_cached(
                message.route_state, node, message.dst
            )
            resolved = tuple(
                (link.index * v + vc_class, link.index, vc_class, link)
                for link, vc_class in choices
            )
            cache[entry] = resolved
        return resolved

    def _select(
        self,
        lane: _Lane,
        candidates: Sequence[_Candidate],
        policy: str,
        rng: random.Random,
    ) -> Optional[_Candidate]:
        """Port of Engine._select over the lane's mirror state.

        rng consumption is identical: a randrange fires exactly when the
        object engine's would (>=2 free candidates under "random", or a
        least-multiplexed tie), so the routing stream stays in lockstep.
        """
        owner_py = lane.owner_py
        if len(candidates) == 1:
            entry = candidates[0]
            return entry if owner_py[entry[0]] < 0 else None
        free = self._free_scratch
        free.clear()
        for entry in candidates:
            if owner_py[entry[0]] < 0:
                free.append(entry)
        if not free:
            return None
        if len(free) == 1 or policy == "first":
            return free[0]
        if policy == "random":
            return free[rng.randrange(len(free))]
        owned_py = lane.owned_py
        best = self._best_scratch
        best.clear()
        best_load = owned_py[free[0][1]]
        for entry in free:
            load = owned_py[entry[1]]
            if load < best_load:
                best_load = load
                best.clear()
                best.append(entry)
            elif load == best_load:
                best.append(entry)
        if len(best) == 1:
            return best[0]
        return best[rng.randrange(len(best))]

    def _park(
        self,
        lane: _Lane,
        message: _BatchMessage,
        candidates: Sequence[_Candidate],
    ) -> None:
        epoch = message.park_epoch + 1
        message.park_epoch = epoch
        message.parked = True
        lane.parked[message.msg_id] = message
        waiters = lane.waiters
        for entry in candidates:
            bucket = waiters.get(entry[0])
            if bucket is None:
                waiters[entry[0]] = [(epoch, message)]
            else:
                bucket.append((epoch, message))

    def _wake_waiters(self, lane: _Lane, flat: int) -> None:
        waiters = lane.waiters.pop(flat, None)
        if waiters is None:
            return
        heap = lane.route_heap
        parked = lane.parked
        for epoch, message in waiters:
            if message.parked and message.park_epoch == epoch:
                message.parked = False
                del parked[message.msg_id]
                heappush(heap, (message.route_seq, message))

    def _allocate(
        self,
        lane: _Lane,
        b: int,
        message: _BatchMessage,
        chosen: _Candidate,
    ) -> None:
        """Reserve a VC for the message's next hop (cf. Engine._allocate +
        VirtualChannel.reserve).  Mirrors update immediately; the array
        writes are deferred into the pending lists for _flush."""
        flat, channel, vc_class, link = chosen
        current = message.head_node
        msg_id = message.msg_id
        off = lane.off
        lane.owner_py[flat] = msg_id
        path = message.path
        if path:
            up = path[-1]
            self._pa_rows.append(
                (off + flat, msg_id, up, off + up, False,
                 link.dst == message.dst)
            )
        else:
            message.src_flat = flat
            self._pa_rows.append(
                (off + flat, msg_id, -1, 0, True, link.dst == message.dst)
            )
        count = lane.owned_py[channel] + 1
        lane.owned_py[channel] = count
        if count == 1:
            self._pa_act_ch.append(b * self._c + channel)
            self._pa_act_seq.append(lane.next_active_seq)
            lane.next_active_seq += 1
        lane.owned_total += 1
        path.append(flat)
        message.head_node = link.dst
        message.route_state = self.algorithm.advance(
            message.route_state, current, link, vc_class
        )
        message.cached_candidates = None

    # ------------------------------------------------------------------
    # relaxed identity: SoA generation + table-driven routing kernels
    # ------------------------------------------------------------------

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _generate_soa(self, cycle: int) -> None:
        """Lane-fused generation straight into the message slab.

        One due-mask poll over every lane's per-node schedule; per due
        lane: batched gap redraws and destination draws (the lane's own
        streams, sizes determined only by its own schedule —
        composition-independent), vectorized injection-limit admission
        against the outstanding array (due nodes are unique within a
        poll because gaps are >= 1, so counts cannot interact within a
        cycle), then one block write of the admitted messages' slab
        columns and route requests.  No message objects are built.

        Frozen lanes hold _ARR_NEVER rows and never match the mask.
        Due node ids come out in ascending node order per lane (the
        scalar heap yields heap order — a relaxed-identity difference).
        """
        due_f = self._gen_due_f
        hits = np.nonzero(due_f <= cycle)[0]
        n = self._num_nodes
        lanes_h = hits // n
        nodes_h = hits - lanes_h * n
        cuts = np.nonzero(lanes_h[1:] != lanes_h[:-1])[0] + 1
        bounds = np.empty(cuts.shape[0] + 2, dtype=np.intp)
        bounds[0] = 0
        bounds[1:-1] = cuts
        bounds[-1] = hits.shape[0]
        lanes = self.lanes
        dest_table = self._dest_table
        # Only the prefetch-buffer slices are per lane (each lane's own
        # streams, sizes determined only by its own schedule); the
        # destination transform is elementwise per draw, so it — and
        # everything downstream: interning gathers, admission, the
        # slab/pool block writes — fuses across lanes into one batch
        # keyed by the lane-id column.
        u_parts: List[np.ndarray] = []
        for s, e in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
            lane = lanes[int(lanes_h[s])]
            due_f[hits[s:e]] = cycle + lane.arr_buf.take(e - s)
            u_parts.append(lane.dst_buf.take(e - s))
        self._gen_next = int(self._gen_due.min())
        if not u_parts:
            return
        ub = (
            u_parts[0]
            if len(u_parts) == 1
            else np.concatenate(u_parts)
        )
        dsts = destinations_from_uniforms(dest_table, nodes_h, ub)
        act = dsts >= 0
        if not act.any():
            return
        lb = lanes_h[act]
        srcs = nodes_h[act]
        dd = dsts[act]
        key = srcs * n + dd
        rows = self._ic_row[key]
        miss = rows < 0
        if miss.any():
            self._intern_pairs(np.unique(key[miss]))
            rows = self._ic_row[key]
        cls = self._ic_cls[key]
        limit = self.config.injection_limit
        if limit is not None:
            # Admission keys are unique within the batch (gaps >= 1
            # mean one arrival per node per lane-cycle), so the masked
            # increment below cannot self-interact.
            okey = lb * self._outst.shape[1] + cls * n + srcs
            admit = self._outst_f[okey] < limit
            if not admit.all():
                ref_l = np.bincount(lb[~admit], minlength=self._b)
                for b in np.nonzero(ref_l)[0].tolist():
                    lanes[b].controller.refused += int(ref_l[b])
                lb = lb[admit]
                if not lb.shape[0]:
                    return
                srcs = srcs[admit]
                dd = dd[admit]
                key = key[admit]
                rows = rows[admit]
                cls = cls[admit]
                okey = okey[admit]
            self._outst_f[okey] += 1
        total = lb.shape[0]
        slab = self._slab
        slots = np.empty(total, dtype=np.int32)
        mids = np.empty(total, dtype=np.int64)
        seqs = np.empty(total, dtype=np.int64)
        arange_t = np.arange(total, dtype=np.int64)
        cuts2 = np.nonzero(lb[1:] != lb[:-1])[0] + 1
        bounds2 = np.empty(cuts2.shape[0] + 2, dtype=np.intp)
        bounds2[0] = 0
        bounds2[1:-1] = cuts2
        bounds2[-1] = total
        for s, e in zip(bounds2[:-1].tolist(), bounds2[1:].tolist()):
            b = int(lb[s])
            lane = lanes[b]
            count = e - s
            slab.ensure(b, count)
            slots[s:e] = slab.alloc(b, count)
            within = arange_t[s:e] - s
            mids[s:e] = lane.msg_counter + within
            seq0 = int(self._rseq[b])
            seqs[s:e] = seq0 + within
            self._rseq[b] = seq0 + count
            lane.msg_counter += count
            lane.generated_total += count
            lane.in_flight += count
            lane.controller.admitted += count
        # Column views are read after every ensure() — growth replaces
        # them but preserves slot numbers, so `g` stays valid.
        g = lb * slab.capacity + slots
        slab.src_f[g] = srcs
        slab.dst_f[g] = dd
        slab.dist_f[g] = self._ic_dist[key]
        slab.length_f[g] = self._length
        slab.inj_f[g] = 0
        slab.ej_f[g] = 0
        slab.head_f[g] = srcs
        slab.head_flat_f[g] = -1
        slab.tail_flat_f[g] = -1
        slab.src_flat_f[g] = -1
        slab.row_f[g] = rows
        slab.born_f[g] = cycle
        slab.wait_f[g] = cycle
        slab.mid_f[g] = mids
        slab.cls_f[g] = cls
        slab.live_f[g] = True
        cf = self._table.cand_flat[rows]
        cand_abs = np.where(
            cf >= 0, cf + (lb * self._cv)[:, None], -1
        )
        self._pool.extend(lb, slots, seqs, cand_abs)

    def _intern_pairs(self, keys: np.ndarray) -> None:
        """Intern (src, dst) pairs: route row, class id, distance.

        Amortized cold path — each pair runs the injection-time
        algorithm callbacks exactly once, like the object engine's
        memoization; new message classes append a column block to the
        outstanding array.
        """
        algorithm = self.algorithm
        table = self._table
        topology = self.topology
        n = self._num_nodes
        for key in keys.tolist():
            src, dst = divmod(key, n)
            state = algorithm.new_state(src, dst)
            self._ic_row[key] = table.row_for(src, dst, state)
            msg_class = algorithm.message_class(src, dst, state)
            cid = self._class_ids.get(msg_class)
            if cid is None:
                cid = len(self._class_list)
                self._class_ids[msg_class] = cid
                self._class_list.append(msg_class)
                if (cid + 1) * n > self._outst.shape[1]:
                    wide = np.zeros(
                        (self._b, (cid + 1) * n), dtype=np.int64
                    )
                    wide[:, :self._outst.shape[1]] = self._outst
                    self._outst = wide
                    self._outst_f = wide.reshape(-1)
            self._ic_cls[key] = cid
            self._ic_dist[key] = topology.distance(src, dst)

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _route_soa(self, cycle: int) -> None:
        """Round-based routing/VC allocation over the woken requests.

        Park/wake, vectorized: a pooled request re-tests only when it
        has never been tested or some cached candidate VC's release
        stamp reached the cycle it blocked (a VC only turns free
        through a release, so skipped requests provably have zero free
        candidates — and since blocked requests consume no rng, the
        stamp test's spurious wakes are draw-for-draw invisible,
        exactly like the object engine's wake lists).

        The woken subset is ordered by (lane, seq) — the strict
        sequential scan order — then each round evaluates candidate
        freeness against the flushed owner array, applies the selection
        policy with per-lane batched tie-break draws, resolves same-VC
        conflicts by first occurrence, and commits the winners with
        masked scatters only (owner/activation writes deferred to
        _flush, slab columns updated in place).  Requests with no free
        candidate park with this cycle's stamp.

        Rng draws group per lane and depend only on that lane's own
        request state (lanes never contend for each other's VCs), so a
        lane's results are independent of the batch composition.
        """
        pool = self._pool
        m = pool.n
        cand_cols = pool.cand[:, :m]
        blk = pool.blocked[:m]
        # -1 candidate padding wraps to _rel_stamp's -inf sentinel;
        # tombstones carry DEAD_STAMP and can never wake.  One 1-D
        # gather per candidate position (the transposed pool layout)
        # beats a single strided 2-D gather ~3x here.
        rel_stamp = self._rel_stamp
        wake = blk < 0
        for w in range(cand_cols.shape[0]):
            wake |= rel_stamp[cand_cols[w]] >= blk
        test = np.nonzero(wake)[0]
        if not test.shape[0]:
            return
        lanes_all = pool.lane[:m]
        order = test[np.lexsort((pool.seq[:m][test], lanes_all[test]))]
        lanes_p = lanes_all[order]
        slots_p = pool.slot[:m][order]
        absc_p = cand_cols[:, order].T
        valid_p = absc_p >= 0
        slab = self._slab
        g_p = lanes_p * slab.capacity + slots_p
        offs = lanes_p * self._cv
        rows = slab.row_f[g_p]
        ups = slab.head_flat_f[g_p].astype(np.int64)
        table = self._table
        v = self._v
        owner_f = self._owner_f
        owned_ch_f = self._owned_ch_f
        policy = self.config.selection_policy
        progress = self._progress
        mt = order.shape[0]
        blocked = np.zeros(mt, dtype=bool)
        alive = np.arange(mt, dtype=np.intp)
        while alive.shape[0]:
            # Round start: land the previous round's reservations (and
            # any pending ejection releases) in the owner array.
            self._flush()
            r = rows[alive]
            valid = valid_p[alive]
            # Padded (-1) candidates index a garbage cell; every read
            # through `absc` is masked by `valid`.
            absc = absc_p[alive]
            free = valid & (owner_f[absc] < 0)
            nfree = free.sum(axis=1)
            has = nfree > 0
            if not has.all():
                blocked[alive[~has]] = True
                alive = alive[has]
                if not alive.shape[0]:
                    break
                r = r[has]
                free = free[has]
                nfree = nfree[has]
                absc = absc[has]
            if policy == "first":
                k = free.argmax(axis=1)
            elif policy == "random":
                t = self._relaxed_tiebreaks(lanes_p[alive], nfree)
                rank = free.cumsum(axis=1) - 1
                k = (free & (rank == t[:, None])).argmax(axis=1)
            else:  # least_multiplexed
                # abs // V = lane * C + channel: loads gather without a
                # second table lookup.
                loads = np.where(
                    free, owned_ch_f[absc // v], _LOAD_INF
                )
                tie = loads == loads.min(axis=1)[:, None]
                t = self._relaxed_tiebreaks(
                    lanes_p[alive], tie.sum(axis=1)
                )
                rank = tie.cumsum(axis=1) - 1
                k = (tie & (rank == t[:, None])).argmax(axis=1)
            chosen = absc[np.arange(alive.shape[0]), k]
            # First occurrence per VC wins; requests are ordered by
            # (lane, route_seq), so this is the strict sequential order.
            win = np.zeros(alive.shape[0], dtype=bool)
            win[np.unique(chosen, return_index=True)[1]] = True
            jw = alive[win]
            kw = k[win]
            ca = chosen[win]
            ro = r[win]
            g_w = g_p[jw]
            # Reserved-VC counts and 0->1 activations, in commit order.
            ch_abs = ca // v
            first = np.zeros(ch_abs.shape[0], dtype=bool)
            first[np.unique(ch_abs, return_index=True)[1]] = True
            newly = first & (owned_ch_f[ch_abs] == 0)
            np.add.at(owned_ch_f, ch_abs, 1)
            if newly.any():
                idx = np.nonzero(newly)[0]
                self._pa_act_blocks.append(
                    (
                        ch_abs[idx],
                        self._draw_seqs(lanes_p[jw[idx]], self._nact),
                    )
                )
            self._owned_any += int(jw.shape[0])
            # Allocation scatters queue as one block (landed by the
            # next _flush); successors gather from the table with a
            # scalar fallback for first-traversal interning.
            isdst = table.term[ro, kw]
            up = ups[jw]
            src_mask = up < 0
            up_abs = np.where(src_mask, 0, offs[jw] + up)
            self._pa_blocks.append(
                (
                    ca,
                    slots_p[jw].astype(np.int64),
                    up,
                    up_abs,
                    src_mask,
                    isdst,
                )
            )
            flat_w = ca - offs[jw]
            srows = table.succ[ro, kw]
            nonterm = np.nonzero(~isdst)[0]
            miss = nonterm[srows[nonterm] < 0]
            for i in miss.tolist():
                srows[i] = table.successor(int(ro[i]), int(kw[i]))
            slab.row_f[g_w[nonterm]] = srows[nonterm]
            slab.head_f[g_w] = table.cand_dst[ro, kw]
            slab.head_flat_f[g_w] = flat_w
            sm = np.nonzero(src_mask)[0]
            slab.src_flat_f[g_w[sm]] = flat_w[sm]
            slab.tail_flat_f[g_w[sm]] = flat_w[sm]
            progress[lanes_p[jw]] = True
            alive = alive[~win]
        # Winners tombstone in place; the blocked park with this
        # cycle's stamp (a release at or after it wakes them);
        # untested parked entries stay put untouched.  Compaction is
        # amortized: only once tombstones reach a quarter of the pool.
        pool.blocked[:m][order[blocked]] = cycle
        pool.kill(order[~blocked])
        if pool.dead * 4 > pool.n:
            pool.prune()

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _draw_seqs(
        self, nb: np.ndarray, counter: np.ndarray
    ) -> np.ndarray:
        """Per-lane consecutive sequence numbers for the lane-sorted id
        array *nb* (non-empty), advancing *counter* in place.

        Used for route-request seqs (epilogue order) and active-set
        seqs (commit order): each lane's entries take consecutive
        numbers from its own counter, exactly the strict per-lane
        increment order.
        """
        cuts = np.nonzero(nb[1:] != nb[:-1])[0] + 1
        starts = np.empty(cuts.shape[0] + 1, dtype=np.intp)
        starts[0] = 0
        starts[1:] = cuts
        counts = np.empty(starts.shape[0], dtype=np.int64)
        counts[:-1] = np.diff(starts)
        counts[-1] = nb.shape[0] - starts[-1]
        seg_lanes = nb[starts]
        base = counter[seg_lanes]
        within = np.arange(nb.shape[0], dtype=np.int64) - np.repeat(
            starts, counts
        )
        counter[seg_lanes] += counts
        return np.repeat(base, counts) + within

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _relaxed_tiebreaks(
        self, lane_ids: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """Per-lane batched tie-break draws: t[j] uniform in [0, high[j]).

        Entries with high <= 1 draw nothing (the strict scalar _select
        consumes rng only on a real choice, and the relaxed streams keep
        that discipline so draw counts stay lane-local).  *lane_ids* is
        non-decreasing (requests are built lane by lane), so the needed
        draws split into contiguous per-lane segments, each served by one
        Generator.integers call on its own lane's routing stream.
        """
        t = np.zeros(high.shape[0], dtype=np.int64)
        need = np.nonzero(high > 1)[0]
        if not need.shape[0]:
            return t
        nl = lane_ids[need]
        cuts = np.nonzero(nl[1:] != nl[:-1])[0] + 1
        bounds = np.empty(cuts.shape[0] + 2, dtype=np.intp)
        bounds[0] = 0
        bounds[1:-1] = cuts
        bounds[-1] = nl.shape[0]
        lanes = self.lanes
        for s, e in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
            idx = need[s:e]
            gen = lanes[int(nl[s])].gen_routing
            t[idx] = gen.integers(high[idx])
        return t

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _epilogue_soa(
        self,
        ev_b: np.ndarray,
        ev_flat: np.ndarray,
        ev_slot: np.ndarray,
        ev_up: np.ndarray,
        ev_code: np.ndarray,
        cycle: int,
    ) -> None:
        """Apply the move consequences as masked scatters over the slab.

        Events arrive sorted by (lane, active-set seq) — the object
        engine's poll order — so the per-lane route-request seq draws
        below assign consecutive numbers in exactly the strict order;
        every other consequence (delivery registration, injection
        completion, release) is order-free bookkeeping.
        """
        slab = self._slab
        g = ev_b * slab.capacity + ev_slot
        r0 = np.nonzero(ev_code & 1)[0]
        if r0.shape[0]:
            rows0 = slab.row_f[g[r0]]
            cf = self._table.cand_flat[rows0]
            cand_abs = np.where(
                cf >= 0, cf + (ev_b[r0] * self._cv)[:, None], -1
            )
            self._pool.extend(
                ev_b[r0],
                ev_slot[r0].astype(np.int32),
                self._draw_seqs(ev_b[r0], self._rseq),
                cand_abs,
            )
            slab.wait_f[g[r0]] = cycle
        r1 = np.nonzero(ev_code & 2)[0]
        if r1.shape[0]:
            self._dv.extend(ev_b[r1] * self._cv + ev_flat[r1])
        if self.config.injection_limit is not None:
            r2 = np.nonzero(ev_code & 4)[0]
            if r2.shape[0]:
                g2 = g[r2]
                okey = (
                    ev_b[r2] * self._outst.shape[1]
                    + slab.cls_f[g2].astype(np.int64) * self._num_nodes
                    + slab.src_f[g2]
                )
                np.subtract.at(self._outst_f, okey, 1)
        r3 = np.nonzero(ev_code & 8)[0]
        if r3.shape[0]:
            rel = ev_b[r3] * self._cv + ev_up[r3]
            self._pend_rel_blocks.append(rel)
            self._rel_stamp[rel] = cycle
            np.subtract.at(self._owned_ch_f, rel // self._v, 1)
            self._owned_any -= int(r3.shape[0])
            # Releases are tail-order: the freed upstream VC was the
            # worm's tail, and the event's target VC is the next link.
            slab.tail_flat_f[g[r3]] = ev_flat[r3]

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _eject_soa(self, cycle: int) -> np.ndarray:
        """_eject_kernel over the deliver queue with slab accounting.

        Same settled-flit consumption as the strict kernel; the per
        message ejected count lives in the slab (gathered through the
        owner array, which stores slots in relaxed mode), and completed
        messages retire through one masked kernel instead of scalar
        _complete calls.
        """
        dv = self._dv
        ea = dv.abs[:dv.n]
        occ_f = self._occ_f
        settled = occ_f[ea] - (self._la_f[ea] == cycle)
        pos_idx = np.nonzero(settled > 0)[0]
        pa = ea[pos_idx]
        ps = settled[pos_idx]
        occ_f[pa] -= ps
        self._fout_f[pa] += ps
        slab = self._slab
        gp = (pa // self._cv) * slab.capacity + self._owner_f[pa]
        ej_new = slab.ej_f[gp] + ps
        slab.ej_f[gp] = ej_new
        flags = np.zeros(self._b, dtype=bool)
        flags[pa // self._cv] = True
        comp = np.nonzero(ej_new >= self._length)[0]
        if comp.shape[0]:
            self._complete_soa(cycle, pa[comp], gp[comp])
            keep = np.ones(dv.n, dtype=bool)
            keep[pos_idx[comp]] = False
            dv.keep(keep)
        return flags

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _complete_soa(
        self, cycle: int, comp_abs: np.ndarray, g: np.ndarray
    ) -> None:
        """Retire fully-ejected messages: release the last VC, free the
        slot, buffer the sample delivery stats as array chunks.

        The stable lane sort preserves each lane's deliver-queue
        registration order, which is the order strict mode appends
        sample deliveries in.
        """
        slab = self._slab
        self._pend_rel_blocks.append(comp_abs)
        self._rel_stamp[comp_abs] = cycle
        np.subtract.at(self._owned_ch_f, comp_abs // self._v, 1)
        self._owned_any -= int(comp_abs.shape[0])
        slab.live_f[g] = False
        cap = slab.capacity
        bo = comp_abs // self._cv
        order = np.argsort(bo, kind="stable")
        go = g[order]
        bo = bo[order]
        lat = cycle - slab.born_f[go]
        hops = slab.dist_f[go].astype(np.int64)
        slots = (go - bo * cap).astype(np.int32)
        cuts = np.nonzero(bo[1:] != bo[:-1])[0] + 1
        bounds = np.empty(cuts.shape[0] + 2, dtype=np.intp)
        bounds[0] = 0
        bounds[1:-1] = cuts
        bounds[-1] = bo.shape[0]
        lanes = self.lanes
        for s, e in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
            lane = lanes[int(bo[s])]
            count = e - s
            lane.in_flight -= count
            lane.delivered_total += count
            slab.release(int(bo[s]), slots[s:e])
            if lane.sample is not None:
                lane.sample_chunks.append((lat[s:e], hops[s:e]))

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _flush(self) -> None:
        """Apply the deferred allocation/release writes as array scatters.

        Releases apply before allocations so a VC freed in one cycle and
        re-reserved the next lands owned.  Stale per-VC fields on *free*
        cells (front/up/issrc from a previous owner) are harmless: every
        kernel read of them is masked by ``owner >= 0``.
        """
        pend_rel = self._pend_rel
        if pend_rel:
            rel = np.asarray(pend_rel, dtype=np.intp)
            self._owner_f[rel] = -1
            self._txable_f[rel] = False
            pend_rel.clear()
        rel_blocks = self._pend_rel_blocks
        if rel_blocks:
            rel = (
                rel_blocks[0]
                if len(rel_blocks) == 1
                else np.concatenate(rel_blocks)
            )
            self._owner_f[rel] = -1
            self._txable_f[rel] = False
            rel_blocks.clear()
        rows = self._pa_rows
        if rows:
            c_abs, c_id, c_up, c_up_abs, c_src, c_dst = zip(*rows)
            self._flush_alloc(
                np.asarray(c_abs, dtype=np.intp),
                np.asarray(c_id, dtype=np.int64),
                np.asarray(c_up, dtype=np.int64),
                np.asarray(c_up_abs, dtype=np.intp),
                np.asarray(c_src, dtype=bool),
                np.asarray(c_dst, dtype=bool),
            )
            rows.clear()
        blocks = self._pa_blocks
        if blocks:
            if len(blocks) == 1:
                self._flush_alloc(*blocks[0])
            else:
                self._flush_alloc(
                    *(
                        np.concatenate(parts)
                        for parts in zip(*blocks)
                    )
                )
            blocks.clear()
        if self._pa_act_ch:
            self._active_seq_f[
                np.asarray(self._pa_act_ch, dtype=np.intp)
            ] = np.asarray(self._pa_act_seq, dtype=np.int64)
            self._pa_act_ch.clear()
            self._pa_act_seq.clear()
        act_blocks = self._pa_act_blocks
        if act_blocks:
            if len(act_blocks) == 1:
                chs, seqs = act_blocks[0]
            else:
                chs, seqs = (
                    np.concatenate(parts)
                    for parts in zip(*act_blocks)
                )
            self._active_seq_f[chs] = seqs
            act_blocks.clear()

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _flush_alloc(
        self,
        a: np.ndarray,
        ids: np.ndarray,
        up: np.ndarray,
        up_abs: np.ndarray,
        src: np.ndarray,
        isdst: np.ndarray,
    ) -> None:
        """Land one batch of allocation scatters in the flat arrays."""
        self._owner_f[a] = ids
        self._txable_f[a] = True
        self._fin_f[a] = 0
        self._fout_f[a] = 0
        self._la_f[a] = -1
        self._ld_f[a] = -1
        self._ejected_f[a] = 0
        self._up_f[a] = up.astype(np.int32)
        # Source-fed VCs gather supply from their own inject cell in the
        # pool's upper half (see _supply_pool).
        self._up_abs_f[a] = np.where(src, a + self._n_flat, up_abs)
        self._issrc_f[a] = src
        self._front_f[a] = True
        # The upstream VC stops being the worm front (its head moved
        # on); disjoint from `a` — a message allocates at most one
        # hop per cycle, so an upstream hop predates this batch.
        self._front_f[up_abs[~src]] = False
        self._isdst_f[a] = isdst
        self._inject_f[a[src]] = self._length

    # ------------------------------------------------------------------
    # phase 4: transmission (the vectorized core)
    # ------------------------------------------------------------------

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def _transmit_kernel(self, cycle: int) -> Optional[np.ndarray]:
        """Array-at-once conservative transmit over every lane and channel.

        Readiness of a VC (owned, worm not fully through, target space,
        a settled upstream flit or a source flit to inject) is evaluated
        simultaneously against the post-ejection state; per channel, the
        ready VC minimizing the cyclic round-robin rank (or the strict
        class priority) moves one flit.  Both match the object engine's
        sequential scan exactly because conservative flow control makes
        the scan's outcome order-invariant (see the module docstring).

        The caller applies the returned sparse events via
        _transmit_epilogue; lane_moves is the per-lane flit count.
        """
        b = self._b
        c = self._c
        v = self._v
        ready = self._sc_ready
        tmp = self._sc_tmp
        length = self._length
        np.copyto(ready, self._txable_f)
        np.less(self._occ_f, self._cap, out=tmp)
        np.logical_and(ready, tmp, out=ready)
        # Supply: the settled upstream occupancy, or the remaining source
        # flits on source-fed VCs — one gather from the shared pool (a
        # VC's supply index points at its upstream's occupancy cell or
        # its own inject cell, set at allocation time).
        np.take(self._supply_pool, self._up_abs_f, out=self._sc_upocc)
        np.greater(self._sc_upocc, 0, out=tmp)
        np.logical_and(ready, tmp, out=ready)
        if not self._all_on:
            np.logical_and(ready, self._lane_mask_f, out=ready)

        # Per-channel winner: the ready VC with the smallest packed mux
        # key.  Not-ready VCs get their key pushed up by one sentinel
        # (keys are < sentinel, so winner keys and the mover test are
        # unaffected); a min fold per channel delivers the rank and
        # (low six bits) the winning VC.
        key_f = self._sc_key_f
        np.logical_not(ready, out=tmp)
        np.multiply(tmp, self._sentinel, out=key_f, casting="unsafe")
        key2 = self._sc_key2
        np.add(key2, self._rr_key2, out=key2)
        minv_f = self._sc_min_f
        np.copyto(minv_f, key2[:, 0])
        for i in range(1, v):
            np.minimum(minv_f, key2[:, i], out=minv_f)
        np.less(self._sc_min_f, self._sentinel, out=self._sc_move)
        mv = np.nonzero(self._sc_move)[0]  # absolute channel: b*C + c
        if mv.shape[0] == 0:
            return None
        vm = self._sc_min_f[mv] & 63
        bm = mv // c
        flat = (mv - bm * c) * v + vm
        abs_m = bm * self._cv + flat

        # -- commit: target VC side -----------------------------------
        self._occ_f[abs_m] += 1
        fin_new = self._fin_f[abs_m] + 1
        self._fin_f[abs_m] = fin_new
        self._txable_f[abs_m[fin_new == length]] = False
        self._la_f[abs_m] = cycle
        self._carried_f[abs_m] += 1
        self._ch_moved_f[mv] += 1
        self._last_tx_f[mv] = cycle
        if not self._priority:
            rrn = self._nextv[vm]
            self._rr_next_f[mv] = rrn
            self._rr_key2[mv] = self._rrk_table[rrn]

        # -- commit: upstream / source side ---------------------------
        srcm = self._issrc_f[abs_m]
        upm = ~srcm
        up_g = self._up_f[abs_m]
        ua = self._up_abs_f[abs_m][upm]
        self._occ_f[ua] -= 1
        fout_new = self._fout_f[ua] + 1
        self._fout_f[ua] = fout_new
        self._ld_f[ua] = cycle
        sa = abs_m[srcm]
        inj_new = self._inject_f[sa] - 1
        self._inject_f[sa] = inj_new
        if self._relaxed and sa.shape[0]:
            # Per-message injected-flit accounting lives in the slab
            # (owner stores the slot in relaxed mode).
            slab = self._slab
            gi = (sa // self._cv) * slab.capacity + self._owner_f[sa]
            slab.inj_f[gi] += 1

        lane_moves = np.bincount(bm, minlength=b)

        # -- sparse move consequences ---------------------------------
        # Events pack into one int8 code per move (bit0 route request,
        # bit1 delivery, bit2 injection-complete, bit3 upstream release)
        # so the scalar epilogue walks a single list.
        k = abs_m.shape[0]
        head = fin_new == 1
        isdst_g = self._isdst_f[abs_m]
        code = np.zeros(k, dtype=np.int8)
        code[head & self._front_f[abs_m] & ~isdst_g] = 1
        code[head & isdst_g] = 2
        code[srcm] |= (inj_new == 0) << 2
        code[upm] |= ((self._occ_f[ua] == 0) & (fout_new >= length)) << 3
        idx = np.nonzero(code)[0]
        if idx.shape[0] == 0:
            return lane_moves
        # Object-engine order: events fire as their channels are polled,
        # in ascending active-set insertion order within each lane.
        seqs = self._active_seq_f[mv]
        sel = idx[np.lexsort((seqs[idx], bm[idx]))]
        if self._relaxed:
            self._epilogue_soa(
                bm[sel],
                flat[sel],
                self._owner_f[abs_m[sel]],
                up_g[sel].astype(np.int64),
                code[sel],
                cycle,
            )
        else:
            self._transmit_epilogue(
                bm[sel],
                flat[sel],
                self._owner_f[abs_m[sel]],
                up_g[sel],
                code[sel],
            )
        return lane_moves

    def _transmit_epilogue(
        self,
        ev_b: np.ndarray,
        ev_flat: np.ndarray,
        ev_owner: np.ndarray,
        ev_up: np.ndarray,
        ev_code: np.ndarray,
    ) -> None:
        """Apply the scalar move consequences in object-engine order.

        Per move the order matches Engine._handle_flit_arrival: the
        head-arrival action (route request or delivery registration)
        first, then injection-complete, then the upstream release.
        """
        lanes = self.lanes
        e_b = ev_b.tolist()
        e_flat = ev_flat.tolist()
        e_owner = ev_owner.tolist()
        e_up = ev_up.tolist()
        e_code = ev_code.tolist()
        for j in range(len(e_b)):
            lane = lanes[e_b[j]]
            message = lane.msgs[e_owner[j]]
            code = e_code[j]
            if code & 1:
                self._enqueue_route(lane, message)
            elif code & 2:
                lane.delivering.append(e_flat[j])
            if code & 4:
                lane.controller.injection_complete(
                    message.src, message.msg_class
                )
            if code & 8:
                self._release(lane, e_up[j], message)

    # ------------------------------------------------------------------
    # shared bookkeeping
    # ------------------------------------------------------------------

    def _release(
        self, lane: _Lane, flat: int, message: _BatchMessage
    ) -> None:
        popped = message.path.popleft()
        assert popped == flat, "releasing out of tail order"
        lane.owner_py[flat] = -1
        lane.owned_py[flat // self._v] -= 1
        lane.owned_total -= 1
        self._pend_rel.append(lane.off + flat)
        self._wake_waiters(lane, flat)

    def _fail_lane(self, b: int, lane: _Lane) -> None:
        """Record a deadlock on one lane and freeze it; others continue."""
        stuck = []
        if self._relaxed:
            # The lane's blocked requests sit in the shared pool (this
            # runs before stop_lane drops them); report from the slab.
            slots_p, _seqs = self._pool.lane_entries(b)
            for slot in slots_p[:8].tolist():
                mv = self._slab.view(b, slot)
                stuck.append(
                    f"msg#{mv.msg_id} {mv.src}->{mv.dst} "
                    f"head at {mv.head_node} "
                    f"(request queued at cycle {mv.wait_since})"
                )
        else:
            waiting: List[_BatchMessage] = [
                entry[1] for entry in sorted(lane.route_heap)
            ]
            waiting.extend(lane.parked.values())
            for message in waiting[:8]:
                stuck.append(
                    f"msg#{message.msg_id} {message.src}->{message.dst} "
                    f"head at {message.head_node}"
                )
        summary = (
            f"no progress for {self.config.deadlock_threshold} cycles at "
            f"cycle {self.cycle} with {lane.in_flight} messages in flight "
            f"(algorithm={self.algorithm.name}); sample of waiting "
            f"messages: {'; '.join(stuck) or 'none in route queue'}"
        )
        lane.error = DeadlockError(
            summary
            + f" [batch lane {b}, seed {lane.seed}]"
            + " (run with backend='object' and "
            "SimulationConfig.sanitize=True for a wait-for-graph "
            "diagnosis)"
        )
        self.stop_lane(b)

    # ------------------------------------------------------------------
    # introspection (mirrors the object engine's helpers, per lane)
    # ------------------------------------------------------------------

    def vc_class_totals(self, index: int) -> List[int]:
        """Lifetime flits carried per VC class in one lane."""
        carried = self._carried[index].reshape(self._c, self._v)
        return [int(x) for x in carried.sum(axis=0)]

    def network_flits(self, index: int) -> int:
        """Flits currently buffered in one lane's network."""
        return int(self._occ[index].sum())

    def _msg_flits_to_inject(self, b: int, message: _BatchMessage) -> int:
        src_flat = message.src_flat
        if src_flat is None:
            return self._length  # first hop never allocated yet
        lane = self.lanes[b]
        if lane.owner_py[src_flat] == message.msg_id:
            return int(self._inject[b, src_flat])
        return 0  # source VC drained and released: all flits left

    def _msg_flits_ejected(self, b: int, message: _BatchMessage) -> int:
        path = message.path
        if not path:
            return 0
        return int(self._ejected[b, path[-1]])

    def _iter_live_messages(self, lane: _Lane) -> Iterator[Any]:
        # Strict: lane.msgs holds exactly the undelivered messages
        # (inserted at admission, removed at completion), which is the
        # set Engine._iter_live_messages walks via queue/heap/parked/
        # owners.  Relaxed: the slab's live slots are the same set, and
        # the yielded MessageView exposes the same attribute names.
        if self._relaxed:
            return self._slab.iter_live(lane.index)
        return iter(lane.msgs.values())

    def conservation_check(self, index: int) -> bool:
        """Invariant: every admitted flit is accounted for, per lane."""
        self._flush()
        lane = self.lanes[index]
        length = self._length
        expected = lane.generated_total * length
        at_source = 0
        ejected = 0
        if self._relaxed:
            slab = self._slab
            live = slab.live[index]
            at_source = int(
                (slab.length[index][live] - slab.inj[index][live]).sum()
            )
            ejected = int(slab.ej[index][live].sum())
        else:
            for message in self._iter_live_messages(lane):
                at_source += self._msg_flits_to_inject(index, message)
                ejected += self._msg_flits_ejected(index, message)
        delivered_flits = lane.delivered_total * length
        return expected == (
            at_source + self.network_flits(index) + ejected
            + delivered_flits
        )

    def state_fingerprint(self, index: int) -> Tuple:
        """Per-lane digest, field-identical to Engine.state_fingerprint.

        The cross-backend tests compare this tuple against an object
        engine driven with the same config and this lane's seed.
        """
        self._flush()
        lane = self.lanes[index]
        b = index
        v = self._v
        if self._relaxed:
            # Relaxed owner cells hold slab slots; map them to the
            # per-lane message ids the object fingerprint reports.
            own_row = self._owner[b]
            own_l = np.where(
                own_row >= 0,
                self._slab.mid[b][own_row.clip(min=0)],
                -1,
            ).tolist()
        else:
            own_l = lane.owner_py
        occ_l = self._occ[b].tolist()
        fin_l = self._fin[b].tolist()
        fout_l = self._fout[b].tolist()
        la_l = self._la[b].tolist()
        ld_l = self._ld[b].tolist()
        car_l = self._carried[b].tolist()
        chm_l = self._ch_moved[b].tolist()
        rr_l = self._rr_next[b].tolist()
        ltx_l = self._last_tx[b].tolist()
        channels_fp = []
        for c in range(self._c):
            base = c * v
            vcs_fp = []
            for vc_class in range(v):
                f = base + vc_class
                owner_id = own_l[f]
                if owner_id >= 0 or car_l[f]:
                    vcs_fp.append(
                        (
                            vc_class,
                            owner_id if owner_id >= 0 else None,
                            occ_l[f],
                            fin_l[f],
                            fout_l[f],
                            la_l[f],
                            ld_l[f],
                            car_l[f],
                        )
                    )
            channels_fp.append(
                (chm_l[c], rr_l[c], ltx_l[c], tuple(vcs_fp))
            )
        if self._relaxed:
            slab = self._slab
            slots_p, _seqs = self._pool.lane_entries(b)
            mid_row = slab.mid[b]
            pending = sorted(
                int(mid_row[s])
                for s in slots_p.tolist() + lane.frozen_pending
            )
            rep_state = self._table.rep_state
            messages_fp = tuple(
                sorted(
                    (
                        int(mid_row[s]),
                        int(slab.src[b][s]),
                        int(slab.dst[b][s]),
                        int(slab.born[b][s]),
                        int(slab.length[b][s] - slab.inj[b][s]),
                        int(slab.ej[b][s]),
                        int(slab.head[b][s]),
                        route_state_fingerprint(
                            rep_state[int(slab.row[b][s])]
                        ),
                    )
                    for s in np.nonzero(slab.live[b])[0].tolist()
                )
            )
            # Running lanes' delivering flats live in the shared queue
            # (registration order); stopped lanes froze theirs locally.
            da = self._dv.abs[:self._dv.n]
            dflats = (
                (da[da // self._cv == b] - b * self._cv).tolist()
                + lane.delivering
            )
        else:
            pending = sorted(
                [entry[1].msg_id for entry in lane.route_heap]
                + list(lane.parked)
            )
            messages_fp = tuple(
                sorted(
                    (
                        message.msg_id,
                        message.src,
                        message.dst,
                        message.created_at,
                        self._msg_flits_to_inject(b, message),
                        self._msg_flits_ejected(b, message),
                        message.head_node,
                        route_state_fingerprint(message.route_state),
                    )
                    for message in self._iter_live_messages(lane)
                )
            )
            dflats = lane.delivering
        delivering = tuple(
            (f // v, f % v) for f in dflats
        )
        controller = lane.controller
        if self._relaxed:
            # Relaxed lanes draw from the numpy streams; digest those
            # (repr keeps the tuple hashable) instead of the untouched
            # scalar streams.
            next_due = int(self._gen_due[b].min())
            rng_fp: Tuple[Any, ...] = tuple(
                repr(lane.rng.numpy_stream(name).bit_generator.state)
                for name in (
                    STREAM_ARRIVALS, STREAM_DESTINATIONS, STREAM_ROUTING
                )
            )
            # The outstanding-injection dict lives in the _outst array
            # in relaxed mode; rebuild the nonzero items (the object
            # controller deletes keys that reach zero).
            nzo = np.nonzero(self._outst[b])[0]
            nn = self._num_nodes
            outst_items: Tuple[Any, ...] = tuple(
                sorted(
                    (
                        (int(k) % nn, self._class_list[int(k) // nn]),
                        int(self._outst[b][k]),
                    )
                    for k in nzo.tolist()
                )
            )
        else:
            next_due = lane.arrivals.next_due
            rng_fp = (
                lane.rng.stream(STREAM_ARRIVALS).getstate(),
                lane.rng.stream(STREAM_DESTINATIONS).getstate(),
                lane.rng.stream(STREAM_ROUTING).getstate(),
            )
            outst_items = tuple(sorted(controller._outstanding.items()))
        return (
            lane.cycle,
            lane.msg_counter,
            lane.flits_moved_total,
            lane.generated_total,
            lane.delivered_total,
            lane.in_flight,
            next_due,
            controller.admitted,
            controller.refused,
            outst_items,
            tuple(pending),
            messages_fp,
            delivering,
            tuple(channels_fp),
        ) + rng_fp


__all__ = ["BatchEngine"]
