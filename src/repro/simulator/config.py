"""Simulation configuration.

One :class:`SimulationConfig` fully determines a simulation point: network,
algorithm, traffic, load, switching technique, congestion control, and the
statistics schedule.  Experiments are reproducible from (config, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.routing.base import RoutingAlgorithm
from repro.routing.registry import make_algorithm
from repro.topology.base import Topology
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus
from repro.traffic.base import TrafficPattern
from repro.traffic.registry import make_traffic
from repro.util.errors import ConfigurationError
from repro.util.validation import (
    require,
    require_non_negative,
    require_positive,
)

#: Switching techniques understood by the engine.
SWITCHING_MODES = ("wormhole", "vct", "saf")

#: Adaptive output-selection policies.
SELECTION_POLICIES = ("least_multiplexed", "random", "first")

#: Flow-control models for buffer-space accounting.
FLOW_CONTROL_MODES = ("ideal", "conservative")

#: Physical-channel multiplexer policies.
MUX_POLICIES = ("round_robin", "highest_class")

#: Engine cycle schedulers: "scan" re-examines every queued message and
#: active channel each cycle (the seed engine's strategy); "active" is the
#: event-driven scheduler that re-examines a blocked resource only when a
#: condition it waits on changes.  Bit-identical flit schedules either way
#: (pinned by the golden-trace tests).
SCHEDULERS = ("scan", "active")

#: Simulation backends: "object" is the per-object Python engine
#: (:class:`repro.simulator.engine.Engine`); "batch" is the vectorized
#: flat-array engine (:class:`repro.simulator.batch.BatchEngine`) that
#: advances a whole batch of seeds of one configuration in lockstep.
#: Per-seed results are bit-identical between the two (fingerprint and
#: golden-trace tests); the batch backend requires conservative flow
#: control and wormhole/VCT switching (see the batch module docstring).
BACKENDS = ("object", "batch")

#: Batch-backend identity modes: "strict" reproduces the object engine's
#: flit schedule bit-identically per seed (per-lane ``random.Random``
#: streams, scalar routing seam); "relaxed" replaces the per-lane streams
#: with numpy ``Generator`` draws batched per phase and runs routing/VC
#: allocation through vectorized table-driven kernels.  Relaxed results
#: are still deterministic per (config, seed) — independent of batch
#: composition — but differ per seed from the object engine; their
#: *distributions* are validated against it by the statistical-
#: equivalence harness (:mod:`repro.analysis.equivalence`).
IDENTITY_MODES = ("strict", "relaxed")


@dataclass
class SimulationConfig:
    """Everything needed to run one simulation point.

    The defaults reproduce the paper's setup: a 16x16 torus with 16-flit
    worms, wormhole switching, minimal virtual-channel buffers, and
    input-buffer-limit congestion control.
    """

    # -- network ------------------------------------------------------------
    radix: int = 16
    n_dims: int = 2
    topology: str = "torus"

    # -- routing and switching ------------------------------------------------
    algorithm: str = "ecube"
    switching: str = "wormhole"
    #: Flow-control model: "ideal" lets a flit enter a buffer slot freed
    #: in the same cycle (simultaneous shift — the paper's single-flit
    #: buffers stream at full rate), "conservative" only uses slots free
    #: at the start of the cycle (credit-style; needs 2-flit buffers for
    #: full-rate streaming).
    flow_control: str = "ideal"
    #: Flit-buffer depth per virtual channel.  None selects the natural
    #: default: 1 flit for wormhole under ideal flow control (the paper's
    #: node model), 2 under conservative flow control, a full packet for
    #: VCT and SAF.
    vc_buffer_depth: Optional[int] = None
    #: How an adaptive router picks among several free candidate channels.
    selection_policy: str = "least_multiplexed"
    #: Physical-channel multiplexer: "round_robin" shares bandwidth
    #: fairly among ready virtual channels (the paper's time-multiplexed
    #: model); "highest_class" is a strict priority scan from the top
    #: class down, giving the most-progressed worms bandwidth first.
    mux_policy: str = "round_robin"
    #: Engine cycle scheduler: "active" (default) re-examines only the
    #: virtual channels, muxes and routing requests whose blocking
    #: conditions may have changed (several times faster in the congested
    #: regime); "scan" is the seed engine's full per-cycle rescan.  The
    #: flit schedule is bit-identical either way (golden-trace tests).
    scheduler: str = "active"
    #: Simulation backend: "object" runs one seed per engine; "batch"
    #: runs whole seed-batches in lockstep over flat numpy arrays
    #: (bit-identical per seed; requires conservative flow control and
    #: wormhole/VCT switching, and ignores `scheduler`).
    backend: str = "object"
    #: Batch-backend identity mode (see :data:`IDENTITY_MODES`).
    #: "strict" (default) keeps the bit-identical path; "relaxed" trades
    #: per-seed bit-identity for vectorized rng + routing kernels and is
    #: only meaningful (and only allowed) with ``backend="batch"``.
    #: Recorded in campaign-store signatures, so strict and relaxed
    #: results never alias in a shared store.
    identity: str = "strict"

    # -- traffic ------------------------------------------------------------
    traffic: str = "uniform"
    traffic_options: Dict[str, Any] = field(default_factory=dict)
    offered_load: float = 0.2
    message_length: int = 16

    # -- congestion control ------------------------------------------------------
    #: Max same-class messages simultaneously being injected per node;
    #: None disables congestion control (paper Section 3 uses it enabled).
    injection_limit: Optional[int] = 2

    # -- statistics schedule (paper Section 3, "Convergence criteria") ------------
    seed: int = 1
    warmup_cycles: int = 3000
    sample_cycles: int = 1500
    gap_cycles: int = 300
    min_samples: int = 3
    max_samples: int = 10
    relative_error: float = 0.05

    # -- safety ------------------------------------------------------------
    #: Cycles without any flit movement or channel grant (while traffic is
    #: in flight) before the watchdog declares deadlock.
    deadlock_threshold: int = 20000
    #: Opt-in wait-for-graph sanitizer: record hold->request edges during
    #: virtual-channel allocation so a watchdog trip reports the actual
    #: resource cycle and blocked messages instead of a bare
    #: :class:`~repro.util.errors.DeadlockError`.  Small per-blocked-
    #: message overhead; off by default for production sweeps.
    sanitize: bool = False

    # -- observability (repro.obs) -------------------------------------------
    #: Attach a :class:`repro.obs.Observer` to the engine.  Off by
    #: default: a disabled engine runs the exact seed code path (the
    #: golden-trace tests pin bit-identical behaviour either way).
    obs: bool = False
    #: Options forwarded to :meth:`repro.obs.ObsConfig.from_options`
    #: (stride, ring_capacity, trace, trace_limit, trace_flits, heatmap,
    #: profile, vectors, export_dir).  Validated lazily so configs stay
    #: picklable for parallel sweep workers without importing repro.obs.
    obs_options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require(self.topology in ("torus", "mesh"),
                f"topology must be 'torus' or 'mesh', got {self.topology!r}")
        require(self.switching in SWITCHING_MODES,
                f"switching must be one of {SWITCHING_MODES}, "
                f"got {self.switching!r}")
        require(self.selection_policy in SELECTION_POLICIES,
                f"selection_policy must be one of {SELECTION_POLICIES}, "
                f"got {self.selection_policy!r}")
        require(self.flow_control in FLOW_CONTROL_MODES,
                f"flow_control must be one of {FLOW_CONTROL_MODES}, "
                f"got {self.flow_control!r}")
        require(self.mux_policy in MUX_POLICIES,
                f"mux_policy must be one of {MUX_POLICIES}, "
                f"got {self.mux_policy!r}")
        require(self.scheduler in SCHEDULERS,
                f"scheduler must be one of {SCHEDULERS}, "
                f"got {self.scheduler!r}")
        require(self.backend in BACKENDS,
                f"backend must be one of {BACKENDS}, "
                f"got {self.backend!r}")
        require(self.identity in IDENTITY_MODES,
                f"identity must be one of {IDENTITY_MODES}, "
                f"got {self.identity!r}")
        if self.identity == "relaxed":
            require(self.backend == "batch",
                    "identity='relaxed' requires backend='batch': the "
                    "object engine is the strict oracle and has no "
                    "relaxed execution path")
        if self.backend == "batch":
            require(self.flow_control == "conservative",
                    "backend='batch' requires flow_control='conservative' "
                    "(ideal flow control's same-cycle fixpoint is order-"
                    "dependent and cannot be vectorized bit-identically)")
            require(self.switching != "saf",
                    "backend='batch' does not support switching='saf'")
            require(not self.obs and not self.sanitize,
                    "backend='batch' does not support obs/sanitize hooks")
        require_positive(self.message_length, "message_length")
        require_non_negative(self.offered_load, "offered_load")
        require_positive(self.warmup_cycles, "warmup_cycles")
        require_positive(self.sample_cycles, "sample_cycles")
        require_non_negative(self.gap_cycles, "gap_cycles")
        require_positive(self.min_samples, "min_samples")
        require(self.max_samples >= self.min_samples,
                "max_samples must be >= min_samples")
        require(0 < self.relative_error < 1,
                "relative_error must be in (0, 1)")
        if self.vc_buffer_depth is not None:
            require_positive(self.vc_buffer_depth, "vc_buffer_depth")
        if self.injection_limit is not None:
            require_positive(self.injection_limit, "injection_limit")

    # -- builders -------------------------------------------------------------

    def build_topology(self) -> Topology:
        if self.topology == "torus":
            return Torus(self.radix, self.n_dims)
        return Mesh(self.radix, self.n_dims)

    def build_algorithm(self, topology: Topology) -> RoutingAlgorithm:
        return make_algorithm(self.algorithm, topology)

    def build_traffic(self, topology: Topology) -> TrafficPattern:
        return make_traffic(self.traffic, topology, **self.traffic_options)

    def effective_buffer_depth(self) -> int:
        """Buffer depth in flits after applying the per-mode default."""
        if self.vc_buffer_depth is not None:
            if (
                self.switching in ("vct", "saf")
                and self.vc_buffer_depth < self.message_length
            ):
                raise ConfigurationError(
                    f"{self.switching} switching requires buffers holding a "
                    f"whole packet ({self.message_length} flits); got depth "
                    f"{self.vc_buffer_depth}"
                )
            return self.vc_buffer_depth
        if self.switching == "wormhole":
            return 1 if self.flow_control == "ideal" else 2
        return self.message_length

    def label(self) -> str:
        """Compact run identifier for tables and logs."""
        return (
            f"{self.algorithm}/{self.traffic}@{self.offered_load:.2f}"
            f" {self.radix}^{self.n_dims} {self.topology}"
            f" {self.switching}"
        )


__all__ = [
    "BACKENDS",
    "IDENTITY_MODES",
    "SCHEDULERS",
    "SELECTION_POLICIES",
    "SWITCHING_MODES",
    "SimulationConfig",
]
