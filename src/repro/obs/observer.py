"""The observer: one object the engine notifies about everything.

An :class:`Observer` bundles the four observability surfaces —
per-cycle probes, the structured event trace, spatial congestion
heatmaps, and the phase profiler — behind a handful of hooks the engine
calls from its observed step path.  The contract with the engine:

* **Disabled means gone.**  An engine without an attached observer runs
  the exact seed code path; the only residue is one ``is None`` check
  per cycle, per generated message, and per routing attempt.  The
  golden-trace tests pin the flit schedule either way.
* **Observation never perturbs.**  Hooks read engine state and write
  observer state; they never touch rng streams, channels, or queues, so
  an observed run is bit-identical to an unobserved one.

``metrics_summary`` folds everything into one JSON-ready aggregate
(embedded in sweep checkpoints by ``--obs`` campaigns), and ``export``
writes the full artifact set: NDJSON trace, probe series (NDJSON +
wide CSV), heatmap CSV/ASCII, and the metrics JSON.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.heatmap import CongestionHeatmap
from repro.obs.probes import ProbeRegistry
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import (
    EVENT_DEADLOCK,
    EVENT_FLIT_MOVED,
    EVENT_MSG_BLOCKED,
    EVENT_MSG_CREATED,
    EVENT_MSG_DELIVERED,
    EVENT_MSG_REFUSED,
    EVENT_VC_ACQUIRED,
    TraceWriter,
)
from repro.util.errors import ConfigurationError
from repro.util.validation import require_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.message import Message
    from repro.network.physical_channel import PhysicalChannel
    from repro.network.virtual_channel import VirtualChannel
    from repro.simulator.engine import Engine
    from repro.simulator.sanitizer import DeadlockReport

#: Schema identity of the metrics aggregate.
METRICS_SCHEMA = "repro.obs.metrics"
METRICS_SCHEMA_VERSION = 1


@dataclasses.dataclass
class ObsConfig:
    """What an observer records and how much memory it may use."""

    #: Probe sampling period in cycles.
    stride: int = 32
    #: Retained samples per probe (ring buffer capacity).
    ring_capacity: int = 2048
    #: Record the structured event trace.
    trace: bool = True
    #: Maximum retained trace events (the rest are counted as dropped).
    trace_limit: int = 50_000
    #: Also trace every flit arrival (high volume; off by default).
    trace_flits: bool = False
    #: Accumulate the spatial congestion heatmap.
    heatmap: bool = True
    #: Time the engine phases (wall-clock; observed path only).
    profile: bool = True
    #: Sample the per-channel / per-VC-class vector probes.
    vectors: bool = True
    #: Directory artifacts are exported to (None: no file export).
    export_dir: Optional[str] = None

    def __post_init__(self) -> None:
        require_positive(self.stride, "stride")
        require_positive(self.ring_capacity, "ring_capacity")
        require_positive(self.trace_limit, "trace_limit")

    @classmethod
    def from_options(cls, options: Dict[str, Any]) -> "ObsConfig":
        """Build from a plain options dict, rejecting unknown keys."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(options) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown obs option(s) {unknown}; "
                f"choose from {sorted(known)}"
            )
        return cls(**options)


class Observer:
    """Collects probes, events, heatmaps and timings from one engine."""

    def __init__(
        self,
        config: Optional[ObsConfig] = None,
        probes: Optional[ProbeRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ObsConfig()
        self._registry_override = probes
        self.probes: Optional[ProbeRegistry] = None
        self.trace: Optional[TraceWriter] = None
        self.heatmap: Optional[CongestionHeatmap] = None
        self.profiler: Optional[PhaseProfiler] = None
        #: Event counts by type, maintained even when tracing is off.
        self.event_counts: Dict[str, int] = {}
        self._engine: Optional["Engine"] = None
        self._first_cycle = 0
        self._stride = self.config.stride

    # -- lifecycle ---------------------------------------------------------

    @property
    def bound(self) -> bool:
        return self._engine is not None

    def bind(self, engine: "Engine") -> None:
        """Wire the observer to one engine (called by attach_observer)."""
        if self._engine is not None:
            raise ConfigurationError(
                "an Observer instance observes exactly one engine"
            )
        self._engine = engine
        self._first_cycle = engine.cycle
        config = self.config
        if self._registry_override is not None:
            self.probes = self._registry_override
        else:
            self.probes = ProbeRegistry.default(
                ring_capacity=config.ring_capacity,
                vectors=config.vectors,
            )
        if config.heatmap:
            self.heatmap = CongestionHeatmap(engine.topology)
            heatmap = self.heatmap
            self.probes.register(
                "blocked_waits_total",
                lambda e: sum(heatmap.blocked),
            )
        if config.trace:
            self.trace = TraceWriter(
                limit=config.trace_limit,
                meta={
                    "label": engine.config.label(),
                    "seed": engine.config.seed,
                    "stride": config.stride,
                    "first_cycle": self._first_cycle,
                },
            )
        if config.profile:
            self.profiler = PhaseProfiler()

    @property
    def trace_flit_moves(self) -> bool:
        """Whether the engine should report individual flit arrivals."""
        return self.config.trace and self.config.trace_flits

    def _count(self, event: str) -> None:
        self.event_counts[event] = self.event_counts.get(event, 0) + 1

    # -- engine hooks ------------------------------------------------------

    def on_message_created(
        self, engine: "Engine", message: "Message"
    ) -> None:
        self._count(EVENT_MSG_CREATED)
        if self.trace is not None:
            self.trace.emit(
                engine.cycle,
                EVENT_MSG_CREATED,
                msg=message.msg_id,
                src=message.src,
                dst=message.dst,
                distance=message.distance,
            )

    def on_message_refused(
        self, engine: "Engine", src: int, dst: int
    ) -> None:
        self._count(EVENT_MSG_REFUSED)
        if self.trace is not None:
            self.trace.emit(
                engine.cycle, EVENT_MSG_REFUSED, src=src, dst=dst
            )

    def on_message_blocked(
        self,
        engine: "Engine",
        message: "Message",
        candidates: List[Tuple["VirtualChannel", "PhysicalChannel"]],
    ) -> None:
        self._count(EVENT_MSG_BLOCKED)
        heatmap = self.heatmap
        if heatmap is not None:
            for _, channel in candidates:
                heatmap.note_blocked(channel.link.index)
        if self.trace is not None:
            self.trace.emit(
                engine.cycle,
                EVENT_MSG_BLOCKED,
                msg=message.msg_id,
                node=message.head_node,
                candidates=[
                    [vc.link.index, vc.vc_class] for vc, _ in candidates
                ],
            )

    def on_vc_acquired(
        self,
        engine: "Engine",
        message: "Message",
        vc: "VirtualChannel",
    ) -> None:
        self._count(EVENT_VC_ACQUIRED)
        if self.trace is not None:
            self.trace.emit(
                engine.cycle,
                EVENT_VC_ACQUIRED,
                msg=message.msg_id,
                link=vc.link.index,
                vc=vc.vc_class,
            )

    def on_flit_arrival(
        self, engine: "Engine", vc: "VirtualChannel"
    ) -> None:
        self._count(EVENT_FLIT_MOVED)
        if self.trace is not None:
            owner = vc.owner
            self.trace.emit(
                engine.cycle,
                EVENT_FLIT_MOVED,
                msg=owner.msg_id if owner is not None else None,
                link=vc.link.index,
                vc=vc.vc_class,
            )

    def on_message_delivered(
        self, engine: "Engine", message: "Message"
    ) -> None:
        self._count(EVENT_MSG_DELIVERED)
        if self.trace is not None:
            self.trace.emit(
                engine.cycle,
                EVENT_MSG_DELIVERED,
                msg=message.msg_id,
                src=message.src,
                dst=message.dst,
                latency=message.delivered_at - message.created_at,
                hops=message.distance,
            )

    def on_deadlock(
        self,
        engine: "Engine",
        summary: str,
        report: Optional["DeadlockReport"],
    ) -> None:
        self._count(EVENT_DEADLOCK)
        if self.trace is not None:
            fields: Dict[str, Any] = {"summary": summary}
            if report is not None:
                fields["cycle_resources"] = (
                    [list(resource) for resource in report.cycle]
                    if report.cycle
                    else None
                )
                fields["blocked_messages"] = len(report.blocked)
            self.trace.emit(engine.cycle, EVENT_DEADLOCK, **fields)

    def on_cycle_end(self, engine: "Engine") -> None:
        """Stride-gated sampling, called once per observed cycle."""
        if engine.cycle % self._stride:
            return
        if self.heatmap is not None:
            self.heatmap.observe_channels(engine.fabric.channels)
        if self.probes is not None:
            self.probes.sample(engine, engine.cycle)

    # -- aggregation -------------------------------------------------------

    def _finalize(self) -> None:
        """Fold any counter tail accumulated since the last stride."""
        if self._engine is not None and self.heatmap is not None:
            self.heatmap.observe_channels(self._engine.fabric.channels)

    def metrics_summary(self) -> Dict[str, Any]:
        """One JSON-ready aggregate of everything observed."""
        self._finalize()
        engine = self._engine
        summary: Dict[str, Any] = {
            "schema": METRICS_SCHEMA,
            "version": METRICS_SCHEMA_VERSION,
            "stride": self.config.stride,
            "first_cycle": self._first_cycle,
            "last_cycle": engine.cycle if engine is not None else None,
            "events": dict(sorted(self.event_counts.items())),
        }
        if self.trace is not None:
            summary["trace"] = {
                "kept": len(self.trace),
                "dropped": self.trace.dropped,
            }
        if self.probes is not None:
            summary["probes"] = self.probes.scalar_summary()
        if self.heatmap is not None:
            heatmap = self.heatmap
            totals = heatmap.totals()
            summary["heatmap"] = {
                "flits_carried": totals["flits_carried"],
                "blocked_waits": totals["blocked_waits"],
                "max_carried": max(heatmap.carried),
                "max_blocked": max(heatmap.blocked),
                "hottest_blocked_link": heatmap.hottest("blocked"),
            }
        if self.profiler is not None:
            summary["profile"] = self.profiler.as_dict()
        return summary

    # -- export ------------------------------------------------------------

    def export(
        self, directory: Optional[str] = None, prefix: str = "obs"
    ) -> List[str]:
        """Write every artifact; returns the list of paths written."""
        target = directory or self.config.export_dir
        if target is None:
            raise ConfigurationError(
                "no export directory: pass one or set ObsConfig.export_dir"
            )
        self._finalize()
        os.makedirs(target, exist_ok=True)
        written: List[str] = []

        def path(suffix: str) -> str:
            full = os.path.join(target, f"{prefix}.{suffix}")
            written.append(full)
            return full

        if self.trace is not None:
            self.trace.write_path(path("trace.ndjson"))
        if self.probes is not None:
            with open(path("probes.ndjson"), "w") as stream:
                self.probes.write_ndjson(stream)
            with open(path("probes.csv"), "w", newline="") as stream:
                self.probes.write_csv(stream)
        if self.heatmap is not None:
            with open(path("heatmap.csv"), "w", newline="") as stream:
                self.heatmap.write_csv(stream)
            with open(path("heatmap.txt"), "w") as stream:
                stream.write(self.heatmap.ascii("carried"))
                stream.write("\n\n")
                stream.write(self.heatmap.ascii("blocked"))
                stream.write("\n")
        with open(path("metrics.json"), "w") as stream:
            json.dump(self.metrics_summary(), stream, indent=2)
            stream.write("\n")
        return written


__all__ = [
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_VERSION",
    "ObsConfig",
    "Observer",
]
