"""Per-cycle probes: named time series sampled from a running engine.

A :class:`Probe` is a named function of the engine returning either a
scalar (message counts, queue depths, cumulative totals) or a vector
(one value per physical channel or per virtual-channel class).  The
:class:`ProbeRegistry` holds the set sampled by an observer; sampling
happens every ``stride`` cycles into per-probe ring buffers, so the
congestion build-up the paper discusses in Section 3.4 (wormhole worms
backing up vs. VCT packets collapsing into buffers) is visible as a
trajectory instead of a single end-of-run average.

Cumulative probes (``*_total``) are sampled as raw counters; consumers
difference adjacent samples for rates, which stays exact even when the
ring buffer drops old samples.
"""

from __future__ import annotations

import csv
import json
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    TextIO,
    Tuple,
    Union,
)

from repro.obs.ring import RingBuffer
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.engine import Engine

#: What a probe may return: one number, or one number per channel/class.
ProbeValue = Union[int, float, List[int], List[float]]
ProbeFn = Callable[["Engine"], ProbeValue]

#: One recorded sample: (cycle, value).
Sample = Tuple[int, ProbeValue]


class Probe:
    """A named engine measurement, scalar or vector."""

    __slots__ = ("name", "fn", "vector")

    def __init__(self, name: str, fn: ProbeFn, vector: bool = False) -> None:
        self.name = name
        self.fn = fn
        #: Vector probes return one value per channel (or per VC class);
        #: they are exported to NDJSON but not to the wide CSV.
        self.vector = vector


def _builtin_probes() -> List[Probe]:
    return [
        Probe("in_flight_messages", lambda e: e.in_flight),
        Probe("network_flits", lambda e: e.fabric.occupied_flits()),
        # _route_pending aliases the scheduler's pending-routing container
        # (FIFO deque or the active scheduler's heap), so the depth probe
        # reports the same quantity under either scheduler.
        Probe("route_queue_depth", lambda e: len(e._route_pending)),
        Probe(
            "injection_backlog",
            lambda e: e.controller.total_outstanding(),
        ),
        Probe("generated_total", lambda e: e.generated_total),
        Probe("delivered_total", lambda e: e.delivered_total),
        Probe("refused_total", lambda e: e.controller.refused),
        Probe("flits_moved_total", lambda e: e.flits_moved_total),
        Probe(
            "channel_occupancy",
            lambda e: e.fabric.channel_occupancies(),
            vector=True,
        ),
        Probe(
            "vc_class_occupancy",
            lambda e: e.fabric.vc_class_occupancies(),
            vector=True,
        ),
    ]


class ProbeRegistry:
    """The set of probes one observer samples, with their ring buffers."""

    def __init__(self, ring_capacity: int = 2048) -> None:
        self.ring_capacity = ring_capacity
        self._probes: Dict[str, Probe] = {}
        self._series: Dict[str, RingBuffer] = {}

    @classmethod
    def default(
        cls, ring_capacity: int = 2048, vectors: bool = True
    ) -> "ProbeRegistry":
        """A registry preloaded with every built-in probe."""
        registry = cls(ring_capacity)
        for probe in _builtin_probes():
            if probe.vector and not vectors:
                continue
            registry.add(probe)
        return registry

    def add(self, probe: Probe) -> None:
        if probe.name in self._probes:
            raise ConfigurationError(
                f"probe {probe.name!r} is already registered"
            )
        self._probes[probe.name] = probe
        self._series[probe.name] = RingBuffer(self.ring_capacity)

    def register(
        self, name: str, fn: ProbeFn, vector: bool = False
    ) -> None:
        """Register a custom probe by name."""
        self.add(Probe(name, fn, vector))

    @property
    def names(self) -> List[str]:
        return list(self._probes)

    def scalar_names(self) -> List[str]:
        return [
            name
            for name, probe in self._probes.items()
            if not probe.vector
        ]

    def sample(self, engine: "Engine", cycle: int) -> None:
        """Record one sample of every probe at *cycle*."""
        for name, probe in self._probes.items():
            self._series[name].append((cycle, probe.fn(engine)))

    def series(self, name: str) -> List[Sample]:
        """All retained samples of one probe, oldest first."""
        return self._series[name].to_list()

    def dropped(self, name: str) -> int:
        return self._series[name].dropped

    def __len__(self) -> int:
        return len(self._probes)

    # -- aggregation and export -------------------------------------------

    def scalar_summary(self) -> Dict[str, Dict[str, float]]:
        """min/max/mean/last per scalar probe over the retained samples."""
        summary: Dict[str, Dict[str, float]] = {}
        for name in self.scalar_names():
            samples = self._series[name].to_list()
            if not samples:
                continue
            values = [float(value) for _, value in samples]
            summary[name] = {
                "min": min(values),
                "max": max(values),
                "mean": sum(values) / len(values),
                "last": values[-1],
                "samples": float(len(values)),
            }
        return summary

    def iter_ndjson_records(self) -> Iterator[Dict[str, object]]:
        """One NDJSON-ready record per retained sample (all probes)."""
        for name, probe in self._probes.items():
            for cycle, value in self._series[name]:
                yield {
                    "record": "sample",
                    "probe": name,
                    "vector": probe.vector,
                    "cycle": cycle,
                    "value": value,
                }

    def write_ndjson(self, stream: TextIO) -> None:
        header = {
            "record": "header",
            "schema": "repro.obs.probes",
            "version": 1,
            "probes": self.names,
        }
        stream.write(json.dumps(header) + "\n")
        for record in self.iter_ndjson_records():
            stream.write(json.dumps(record) + "\n")

    def write_csv(self, stream: TextIO) -> None:
        """Wide CSV of the scalar probes: one row per sampled cycle.

        Scalar probes are always sampled together, so their sample lists
        align; vector probes are exported via NDJSON only.
        """
        names = self.scalar_names()
        writer = csv.writer(stream)
        writer.writerow(["cycle"] + names)
        if not names:
            return
        columns = [self._series[name].to_list() for name in names]
        for row_index in range(len(columns[0])):
            cycle = columns[0][row_index][0]
            writer.writerow(
                [cycle]
                + [column[row_index][1] for column in columns]
            )


__all__ = ["Probe", "ProbeFn", "ProbeRegistry", "ProbeValue"]
