"""Command-line interface: ``repro-obs``.

Verbs::

    repro-obs run --algorithm nbc --load 0.5 --radix 6 --out obs-out/
        Run one simulation point with full observability and export the
        artifact set (trace, probe series, heatmaps, metrics).

    repro-obs trace obs-out/<point>.trace.ndjson
        Validate a trace file against the repro.obs.trace schema and
        print per-event-type counts.

    repro-obs heatmap obs-out/<point>.heatmap.csv --metric blocked
        Rank the hottest links of an exported heatmap.

    repro-obs profile --algorithm 2pn --load 0.6 --cycles 20000
        Time the engine phases over a fixed-length run and print the
        per-phase wall-clock table.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import List, Optional

from repro.obs.observer import ObsConfig, Observer
from repro.obs.trace import validate_trace_lines
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine
from repro.util.errors import ReproError


def _add_point_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--algorithm", default="ecube")
    parser.add_argument("--traffic", default="uniform")
    parser.add_argument("--load", type=float, default=0.4)
    parser.add_argument("--radix", type=int, default=8)
    parser.add_argument("--dims", type=int, default=2)
    parser.add_argument("--topology", default="torus",
                        choices=("torus", "mesh"))
    parser.add_argument("--switching", default="wormhole",
                        choices=("wormhole", "vct", "saf"))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--profile",
        default="quick",
        help=(
            "run profile controlling the sampling schedule "
            "(default quick; geometry always comes from --radix/--dims)"
        ),
    )


def _point_config(args: argparse.Namespace) -> SimulationConfig:
    import dataclasses

    from repro.experiments.profiles import apply_profile

    # The profile contributes only its sampling schedule here: the
    # explicit point flags (geometry, algorithm, load, ...) always win.
    config = apply_profile(SimulationConfig(), args.profile)
    return dataclasses.replace(
        config,
        radix=args.radix,
        n_dims=args.dims,
        topology=args.topology,
        algorithm=args.algorithm,
        switching=args.switching,
        traffic=args.traffic,
        offered_load=args.load,
        seed=args.seed,
    )


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Observability tooling for the simulation engine.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    run = sub.add_parser(
        "run", help="run one point with full observability"
    )
    _add_point_arguments(run)
    run.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="export the artifact files into DIR",
    )
    run.add_argument("--stride", type=int, default=32)
    run.add_argument(
        "--trace-flits",
        action="store_true",
        help="also trace individual flit arrivals (high volume)",
    )
    run.add_argument(
        "--trace-limit",
        type=int,
        default=50_000,
        help="retained trace events before dropping (default 50000)",
    )

    trace = sub.add_parser(
        "trace", help="validate a trace file and count its events"
    )
    trace.add_argument("path", help="a .trace.ndjson file")

    heatmap = sub.add_parser(
        "heatmap", help="rank the hottest links of an exported heatmap"
    )
    heatmap.add_argument("path", help="a .heatmap.csv file")
    heatmap.add_argument(
        "--metric", default="blocked", choices=("carried", "blocked")
    )
    heatmap.add_argument("--top", type=int, default=10)

    profile = sub.add_parser(
        "profile", help="time the engine phases over a fixed run"
    )
    _add_point_arguments(profile)
    profile.add_argument(
        "--cycles",
        type=int,
        default=20_000,
        help="cycles to simulate (default 20000)",
    )

    return parser.parse_args(argv)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import obs_export_prefix, run_point

    config = _point_config(args)
    obs_config = ObsConfig(
        stride=args.stride,
        trace_flits=args.trace_flits,
        trace_limit=args.trace_limit,
        export_dir=args.out,
    )
    engine = Engine(config)
    observer = Observer(obs_config)
    engine.attach_observer(observer)
    result = run_point(config, engine=engine)

    print(result)
    print()
    metrics = result.obs_metrics or observer.metrics_summary()
    print(json.dumps(metrics, indent=2))
    if observer.heatmap is not None:
        print()
        print(observer.heatmap.ascii("blocked"))
    if observer.profiler is not None:
        print()
        print(observer.profiler.format_table())
    if args.out is not None:
        prefix = obs_export_prefix(config)
        print(f"\nartifacts: {args.out}/{prefix}.*")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    with open(args.path) as stream:
        lines = stream.readlines()
    try:
        counts = validate_trace_lines(lines)
    except ValueError as error:
        print(f"INVALID trace: {error}", file=sys.stderr)
        return 1
    total = sum(counts.values())
    print(f"valid trace: {total} events")
    for event, count in sorted(counts.items()):
        print(f"  {event:<14} {count}")
    return 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    column = (
        "flits_carried" if args.metric == "carried" else "blocked_waits"
    )
    with open(args.path, newline="") as stream:
        rows = list(csv.DictReader(stream))
    if not rows:
        print("empty heatmap file", file=sys.stderr)
        return 1
    rows.sort(key=lambda row: int(row[column]), reverse=True)
    print(f"top {min(args.top, len(rows))} links by {column}:")
    for row in rows[: args.top]:
        print(
            f"  link {int(row['link']):4d} "
            f"{row['src']}->{row['dst']} dim={row['dim']} "
            f"dir={row['direction']}: {row[column]}"
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    config = _point_config(args)
    engine = Engine(config)
    observer = Observer(
        ObsConfig(trace=False, heatmap=False, vectors=False)
    )
    engine.attach_observer(observer)
    engine.run_cycles(args.cycles)
    print(
        f"{config.label()} — {args.cycles} cycles, "
        f"{engine.delivered_total} messages delivered"
    )
    assert observer.profiler is not None
    print(observer.profiler.format_table())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "trace": _cmd_trace,
        "heatmap": _cmd_heatmap,
        "profile": _cmd_profile,
    }
    try:
        return handlers[args.verb](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
