"""Structured event traces: what happened to every message, and when.

The trace is a flat NDJSON stream behind a schema version, so external
tooling can parse it without knowing the simulator's internals:

* line 1 — a ``header`` record naming the schema
  (``repro.obs.trace``), its version, and free-form run metadata;
* one ``event`` record per traced simulation event, each carrying the
  cycle number, the event type and type-specific fields;
* a final ``footer`` record with the kept/dropped event counts, so a
  truncated trace is detectable (the event list is bounded by
  ``limit`` — congested runs emit one ``blocked`` event per waiting
  message per cycle, which adds up fast).

Event types (``EVENT_*`` constants): message created / refused,
head blocked on an allocation attempt, virtual channel acquired, flit
moved (opt-in, high volume), message delivered, and a deadlock report
from the wait-for-graph sanitizer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TextIO

from repro.util.validation import require_positive

#: Schema identity embedded in every trace header.
TRACE_SCHEMA = "repro.obs.trace"
TRACE_SCHEMA_VERSION = 1

EVENT_MSG_CREATED = "msg_created"
EVENT_MSG_REFUSED = "msg_refused"
EVENT_MSG_BLOCKED = "msg_blocked"
EVENT_VC_ACQUIRED = "vc_acquired"
EVENT_FLIT_MOVED = "flit_moved"
EVENT_MSG_DELIVERED = "msg_delivered"
EVENT_DEADLOCK = "deadlock"

#: Every event type a schema-valid trace may contain.
EVENT_TYPES = (
    EVENT_MSG_CREATED,
    EVENT_MSG_REFUSED,
    EVENT_MSG_BLOCKED,
    EVENT_VC_ACQUIRED,
    EVENT_FLIT_MOVED,
    EVENT_MSG_DELIVERED,
    EVENT_DEADLOCK,
)


class TraceWriter:
    """Bounded, schema-versioned collector of simulation events."""

    def __init__(
        self,
        limit: int = 50_000,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        require_positive(limit, "limit")
        self.limit = limit
        self.meta: Dict[str, Any] = dict(meta or {})
        self._events: List[Dict[str, Any]] = []
        #: Events discarded once the limit was hit.
        self.dropped = 0

    def emit(self, cycle: int, event: str, **fields: Any) -> None:
        """Record one event (dropped silently past the limit)."""
        if len(self._events) >= self.limit:
            self.dropped += 1
            return
        record: Dict[str, Any] = {"cycle": cycle, "event": event}
        record.update(fields)
        self._events.append(record)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[Dict[str, Any]]:
        return self._events

    def counts_by_type(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self._events:
            name = record["event"]
            counts[name] = counts.get(name, 0) + 1
        return counts

    def write(self, stream: TextIO) -> None:
        """Write the NDJSON trace: header, events, footer."""
        header = {
            "record": "header",
            "schema": TRACE_SCHEMA,
            "version": TRACE_SCHEMA_VERSION,
            "meta": self.meta,
        }
        stream.write(json.dumps(header) + "\n")
        for event in self._events:
            record = {"record": "event"}
            record.update(event)
            stream.write(json.dumps(record) + "\n")
        footer = {
            "record": "footer",
            "events": len(self._events),
            "dropped": self.dropped,
        }
        stream.write(json.dumps(footer) + "\n")

    def write_path(self, path: str) -> None:
        with open(path, "w") as stream:
            self.write(stream)


def validate_trace_lines(lines: List[str]) -> Dict[str, int]:
    """Parse an NDJSON trace and check its schema; return event counts.

    Raises ``ValueError`` on any malformed line, wrong schema/version,
    unknown event type, or missing header/footer.  Used by the test
    suite and available to external consumers as a quick integrity
    check.
    """
    if len(lines) < 2:
        raise ValueError("trace must contain a header and a footer")
    records = [json.loads(line) for line in lines if line.strip()]
    header, body, footer = records[0], records[1:-1], records[-1]
    if header.get("record") != "header":
        raise ValueError("first record is not a header")
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"unexpected schema {header.get('schema')!r}")
    if header.get("version") != TRACE_SCHEMA_VERSION:
        raise ValueError(f"unexpected version {header.get('version')!r}")
    if footer.get("record") != "footer":
        raise ValueError("last record is not a footer")
    counts: Dict[str, int] = {}
    for record in body:
        if record.get("record") != "event":
            raise ValueError(f"unexpected record {record.get('record')!r}")
        event = record.get("event")
        if event not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event!r}")
        if not isinstance(record.get("cycle"), int):
            raise ValueError("event record without an integer cycle")
        counts[event] = counts.get(event, 0) + 1
    if footer.get("events") != len(body):
        raise ValueError(
            f"footer counts {footer.get('events')} events, "
            f"trace has {len(body)}"
        )
    return counts


__all__ = [
    "EVENT_DEADLOCK",
    "EVENT_FLIT_MOVED",
    "EVENT_MSG_BLOCKED",
    "EVENT_MSG_CREATED",
    "EVENT_MSG_DELIVERED",
    "EVENT_MSG_REFUSED",
    "EVENT_TYPES",
    "EVENT_VC_ACQUIRED",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "TraceWriter",
    "validate_trace_lines",
]
