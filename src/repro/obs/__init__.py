"""repro.obs — structured observability for the simulation engine.

Four surfaces, one facade:

* :class:`ProbeRegistry` — named per-cycle time series (occupancies,
  queue depths, cumulative totals) sampled every ``stride`` cycles into
  ring buffers, exported as NDJSON and wide CSV;
* :class:`TraceWriter` — a schema-versioned NDJSON event trace
  (message created/refused/blocked/delivered, VC acquired, optional
  per-flit moves, deadlock reports);
* :class:`CongestionHeatmap` — per-physical-channel flits-carried and
  blocked-wait counters with CSV and ASCII renderings;
* :class:`PhaseProfiler` — wall-clock time per engine phase.

Attach an :class:`Observer` via ``SimulationConfig(obs=True,
obs_options={...})`` or ``engine.attach_observer(Observer(ObsConfig()))``.
When no observer is attached the engine runs its seed code path —
observability costs nothing unless asked for.
"""

from repro.obs.heatmap import CongestionHeatmap
from repro.obs.observer import (
    METRICS_SCHEMA,
    METRICS_SCHEMA_VERSION,
    ObsConfig,
    Observer,
)
from repro.obs.probes import Probe, ProbeRegistry
from repro.obs.profile import PHASES, PhaseProfiler
from repro.obs.ring import RingBuffer
from repro.obs.trace import (
    EVENT_TYPES,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    TraceWriter,
    validate_trace_lines,
)

__all__ = [
    "EVENT_TYPES",
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_VERSION",
    "PHASES",
    "CongestionHeatmap",
    "ObsConfig",
    "Observer",
    "PhaseProfiler",
    "Probe",
    "ProbeRegistry",
    "RingBuffer",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "TraceWriter",
    "validate_trace_lines",
]
