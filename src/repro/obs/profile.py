"""Lightweight phase profiler: where an observed engine spends its time.

The engine's cycle has four phases (generation, ejection, routing,
transmission); when profiling is enabled the observed step path wraps
each phase call in a pair of ``perf_counter`` reads and accumulates the
elapsed wall time here.  The profiler only ever runs on the observed
path — a disabled engine executes zero timing code — and its numbers
are wall-clock, so they are excluded from anything that must be
deterministic.

The phase set is configurable: the sweep runner reuses the same
accumulator with warmup/sampling/gap phases to time whole simulation
points (``SimulationResult.wall_seconds``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: The engine phases timed by the observed step path (the default set).
PHASES = ("generation", "ejection", "routing", "transmission", "observe")


class PhaseProfiler:
    """Accumulated wall-time and call counts per phase."""

    __slots__ = ("phases", "seconds", "calls")

    def __init__(self, phases: Sequence[str] = PHASES) -> None:
        self.phases = tuple(phases)
        self.seconds: Dict[str, float] = {
            phase: 0.0 for phase in self.phases
        }
        self.calls: Dict[str, int] = {phase: 0 for phase in self.phases}

    def add(self, phase: str, elapsed: float) -> None:
        self.seconds[phase] += elapsed
        self.calls[phase] += 1

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            phase: {
                "seconds": self.seconds[phase],
                "calls": float(self.calls[phase]),
            }
            for phase in self.phases
            if self.calls[phase]
        }

    def format_table(self) -> str:
        """Aligned text table: phase, calls, seconds, share."""
        total = self.total_seconds()
        lines: List[str] = [
            f"{'phase':<14}{'calls':>10}{'seconds':>12}{'share':>8}"
        ]
        for phase in self.phases:
            if not self.calls[phase]:
                continue
            seconds = self.seconds[phase]
            share = seconds / total if total else 0.0
            lines.append(
                f"{phase:<14}{self.calls[phase]:>10}"
                f"{seconds:>12.4f}{share:>7.1%}"
            )
        lines.append(f"{'total':<14}{'':>10}{total:>12.4f}{'':>8}")
        return "\n".join(lines)


__all__ = ["PHASES", "PhaseProfiler"]
