"""Spatial congestion heatmaps: where the traffic flows and where it waits.

Two per-physical-channel counters are accumulated while an observer is
attached:

* ``carried`` — flits that crossed the link (from the channels'
  lifetime ``flits_moved`` counters, accumulated as positive deltas so
  counter resets between sampling periods cannot corrupt the totals);
* ``blocked`` — head-blocked waits: each cycle a message fails virtual-
  channel allocation, every physical channel in its candidate set is
  charged one wait.  A hot ``blocked`` link is one worms queue for —
  the per-channel occupancy diagnostic OutFlank Routing (Versaci 2013)
  and the OQ/VOQ deadlock-avoidance study (Papaphilippou & Chu 2023)
  use to show congestion forming.

Both render as CSV (one row per link, with geometry columns) and, for
2-D networks, as per-node ASCII grids where each cell aggregates the
node's outgoing links.
"""

from __future__ import annotations

import csv
from typing import TYPE_CHECKING, Dict, List, TextIO

from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.physical_channel import PhysicalChannel

#: Density ramp for ASCII rendering, lightest to heaviest.
_RAMP = " .:-=+*#%@"


class CongestionHeatmap:
    """Per-link carried/blocked counters with CSV and ASCII rendering."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        num_links = topology.num_links
        self.carried = [0] * num_links
        self.blocked = [0] * num_links
        self._last_flits_moved = [0] * num_links

    # -- accumulation ------------------------------------------------------

    def observe_channels(
        self, channels: List["PhysicalChannel"]
    ) -> None:
        """Fold the channels' flit counters into ``carried``.

        Accumulates deltas since the previous call.  A *negative* delta
        means the counter was reset (`Fabric.reset_flit_counters`)
        between observations; the full new count is credited and the
        baseline restarts.  (A reset is only undetectable if the counter
        re-exceeds its old value between two observations — observers
        call this every sampling stride precisely to keep that window
        small.)
        """
        last = self._last_flits_moved
        carried = self.carried
        for index, channel in enumerate(channels):
            moved = channel.flits_moved
            delta = moved - last[index]
            carried[index] += delta if delta >= 0 else moved
            last[index] = moved

    def note_blocked(self, link_index: int) -> None:
        """Charge one head-blocked wait to a candidate link."""
        self.blocked[link_index] += 1

    # -- aggregation -------------------------------------------------------

    def totals(self) -> Dict[str, int]:
        return {
            "flits_carried": sum(self.carried),
            "blocked_waits": sum(self.blocked),
        }

    def hottest(self, metric: str = "blocked") -> int:
        """Link index with the highest count of *metric*."""
        values = self._metric(metric)
        return max(range(len(values)), key=values.__getitem__)

    def _metric(self, metric: str) -> List[int]:
        if metric == "carried":
            return self.carried
        if metric == "blocked":
            return self.blocked
        raise ValueError(
            f"metric must be 'carried' or 'blocked', got {metric!r}"
        )

    def node_grid(self, metric: str = "carried") -> List[List[int]]:
        """Per-node totals over outgoing links, as a [y][x] grid (2-D only)."""
        if self.topology.n_dims != 2:
            raise ValueError(
                "node_grid requires a 2-dimensional topology; "
                f"got n_dims={self.topology.n_dims}"
            )
        values = self._metric(metric)
        radix = self.topology.radix
        grid = [[0] * radix for _ in range(radix)]
        for link in self.topology.links:
            x, y = self.topology.coords(link.src)
            grid[y][x] += values[link.index]
        return grid

    # -- rendering ---------------------------------------------------------

    def write_csv(self, stream: TextIO) -> None:
        """One row per link: geometry plus both counters."""
        writer = csv.writer(stream)
        writer.writerow(
            [
                "link",
                "src",
                "dst",
                "dim",
                "direction",
                "wraps",
                "flits_carried",
                "blocked_waits",
            ]
        )
        for link in self.topology.links:
            writer.writerow(
                [
                    link.index,
                    link.src,
                    link.dst,
                    link.dim,
                    link.direction,
                    int(link.wraps),
                    self.carried[link.index],
                    self.blocked[link.index],
                ]
            )

    def ascii(self, metric: str = "carried") -> str:
        """Density map of the per-node totals (2-D), or a top-10 list."""
        values = self._metric(metric)
        if self.topology.n_dims != 2:
            return self._ascii_toplist(metric, values)
        grid = self.node_grid(metric)
        peak = max(max(row) for row in grid)
        lines = [
            f"{metric} per node (outgoing links), "
            f"{self.topology.radix}x{self.topology.radix}, peak={peak}"
        ]
        scale = len(_RAMP) - 1
        # y grows downward so row 0 is the top of the rendering.
        for y, row in enumerate(grid):
            cells = []
            for value in row:
                level = (
                    (value * scale + peak - 1) // peak if peak else 0
                )
                cells.append(_RAMP[min(level, scale)])
            lines.append(f"y={y:<3d} " + " ".join(cells))
        lines.append(
            "scale: ' '=0"
            + "".join(
                f"  {_RAMP[level]}<= {peak * level // scale}"
                for level in range(1, scale + 1)
            )
            if peak
            else "scale: all zero"
        )
        return "\n".join(lines)

    def _ascii_toplist(self, metric: str, values: List[int]) -> str:
        ranked = sorted(
            range(len(values)), key=values.__getitem__, reverse=True
        )[:10]
        lines = [f"top links by {metric}:"]
        for index in ranked:
            link = self.topology.links[index]
            lines.append(
                f"  link {index:4d} {link.src}->{link.dst} "
                f"dim={link.dim} dir={link.direction:+d}: {values[index]}"
            )
        return "\n".join(lines)


__all__ = ["CongestionHeatmap"]
