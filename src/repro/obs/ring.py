"""Fixed-capacity ring buffers for observability time series.

Probes sample per-cycle quantities for the whole lifetime of a run; a
bounded ring keeps the memory of an observed simulation independent of
its length — old samples are overwritten, and the number of overwritten
samples is tracked so exports can state what was dropped rather than
silently truncating.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, TypeVar

from repro.util.validation import require_positive

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """A fixed-capacity FIFO that overwrites its oldest entries."""

    __slots__ = ("capacity", "_items", "_start", "dropped")

    def __init__(self, capacity: int) -> None:
        require_positive(capacity, "capacity")
        self.capacity = capacity
        self._items: List[T] = []
        self._start = 0  # index of the oldest element once full
        #: Samples overwritten because the buffer was full.
        self.dropped = 0

    def append(self, item: T) -> None:
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        self._items[self._start] = item
        self._start += 1
        if self._start == self.capacity:
            self._start = 0
        self.dropped += 1

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        """Oldest-to-newest iteration."""
        items = self._items
        start = self._start
        for offset in range(len(items)):
            index = start + offset
            if index >= len(items):
                index -= len(items)
            yield items[index]

    def last(self) -> T:
        """The newest element (raises IndexError when empty)."""
        if not self._items:
            raise IndexError("last() on an empty RingBuffer")
        index = self._start - 1 if self._start else len(self._items) - 1
        return self._items[index]

    def to_list(self) -> List[T]:
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RingBuffer(len={len(self._items)}/{self.capacity}, "
            f"dropped={self.dropped})"
        )


__all__ = ["RingBuffer"]
