"""Plain-text tables and CSV output for sweep results.

The paper presents its results as figures; lacking a plotting dependency,
the harness prints the same series as aligned text tables — one row per
offered load, one latency and one throughput column per algorithm — and
can write CSV for external plotting.
"""

from __future__ import annotations

import csv
from typing import Dict, List, Sequence, TextIO

from repro.stats.summary import SimulationResult


def format_table(
    series: Dict[str, List[SimulationResult]],
    value: str = "achieved_utilization",
    precision: int = 3,
) -> str:
    """Render one metric of a multi-algorithm sweep as an aligned table.

    *value* is any numeric attribute of :class:`SimulationResult`
    (``achieved_utilization``, ``average_latency``, ...).
    """
    if not series:
        return "(no data)"
    algorithms = list(series)
    loads = [result.offered_load for result in next(iter(series.values()))]
    header = ["offered"] + algorithms
    rows = [header]
    for index, load in enumerate(loads):
        row = [f"{load:.2f}"]
        for name in algorithms:
            results = series[name]
            if index < len(results):
                row.append(f"{getattr(results[index], value):.{precision}f}")
            else:
                row.append("-")
        rows.append(row)
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(header))
    ]
    lines = []
    for row_index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(widths[col]) for col, cell in enumerate(row))
        )
        if row_index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_figure(
    series: Dict[str, List[SimulationResult]], title: str
) -> str:
    """Both panels of a paper figure: latency and normalized throughput."""
    parts = [
        title,
        "",
        "Average latency (cycles):",
        format_table(series, "average_latency", precision=1),
        "",
        "Achieved channel utilization (normalized throughput):",
        format_table(series, "achieved_utilization", precision=3),
    ]
    return "\n".join(parts)


def write_csv(
    series: Dict[str, List[SimulationResult]], stream: TextIO
) -> None:
    """Write every result of a sweep as CSV rows."""
    fieldnames = None
    writer = None
    for results in series.values():
        for result in results:
            row = result.to_dict()
            if writer is None:
                fieldnames = list(row)
                writer = csv.DictWriter(stream, fieldnames=fieldnames)
                writer.writeheader()
            writer.writerow(row)


def peak_summary(series: Dict[str, List[SimulationResult]]) -> str:
    """One line per algorithm: peak throughput and where it occurs."""
    lines = []
    for name, results in series.items():
        if not results:
            continue
        best = max(results, key=lambda r: r.achieved_utilization)
        lines.append(
            f"{name:>6}: peak normalized throughput "
            f"{best.achieved_utilization:.3f} at offered load "
            f"{best.offered_load:.2f}"
        )
    return "\n".join(lines)


__all__ = ["format_figure", "format_table", "peak_summary", "write_csv"]
