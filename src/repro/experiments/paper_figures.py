"""Configurations and shape checks for every figure of the paper.

The evaluation section has three figures (each with a latency panel and a
throughput panel) plus one experiment described in prose:

* **Figure 3** — uniform traffic, 16-flit worms.
* **Figure 4** — 4% hotspot traffic at node (15, 15).
* **Figure 5** — local traffic, radius-3 neighbourhood (0.4 locality).
* **Section 3.4** — virtual cut-through comparison of 2pn, nbc and e-cube
  under uniform traffic.

Each ``figureN`` function returns per-algorithm sweep series; the
``check_*`` functions encode the qualitative claims the paper draws from
each figure, so benchmarks can assert that the reproduction preserves the
*shape* of the results (who wins, roughly by how much) without demanding
cycle-exact numbers.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.profiles import (
    PROFILES,
    apply_profile,
    current_profile,
)
from repro.experiments.sweep import (
    PAPER_LOADS,
    peak_throughput,
    sweep_algorithms,
)
from repro.routing.registry import ALGORITHM_NAMES
from repro.simulator.config import SimulationConfig
from repro.stats.summary import SimulationResult

Series = Dict[str, List[SimulationResult]]
#: (claim description, passed) pairs produced by the shape checks.
ShapeCheck = Tuple[str, bool]


def _base_config(profile: Optional[str], **overrides: object) -> SimulationConfig:
    profile_name = profile if profile is not None else current_profile()
    config = SimulationConfig(**overrides)  # type: ignore[arg-type]
    return apply_profile(config, profile_name)


def _obs_overrides(
    obs: bool, obs_options: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """Config overrides attaching observers to every point of a figure."""
    if not obs:
        return {}
    return {"obs": True, "obs_options": dict(obs_options or {})}


def figure3(
    profile: Optional[str] = None,
    offered_loads: Sequence[float] = PAPER_LOADS,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    seed: int = 1,
    verbose: bool = False,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    obs: bool = False,
    obs_options: Optional[Dict[str, Any]] = None,
) -> Series:
    """Uniform traffic of 16-flit worms (paper Figure 3)."""
    config = _base_config(
        profile,
        traffic="uniform",
        seed=seed,
        **_obs_overrides(obs, obs_options),
    )
    return sweep_algorithms(
        config,
        algorithms,
        offered_loads,
        verbose,
        jobs=jobs,
        checkpoint=checkpoint,
    )


def figure4(
    profile: Optional[str] = None,
    offered_loads: Sequence[float] = PAPER_LOADS,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    hotspot_fraction: float = 0.04,
    seed: int = 1,
    verbose: bool = False,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    obs: bool = False,
    obs_options: Optional[Dict[str, Any]] = None,
) -> Series:
    """Hotspot traffic, 4% to the max-coordinate node (paper Figure 4)."""
    config = _base_config(
        profile,
        traffic="hotspot",
        traffic_options={"fraction": hotspot_fraction},
        seed=seed,
        **_obs_overrides(obs, obs_options),
    )
    return sweep_algorithms(
        config,
        algorithms,
        offered_loads,
        verbose,
        jobs=jobs,
        checkpoint=checkpoint,
    )


def figure5(
    profile: Optional[str] = None,
    offered_loads: Sequence[float] = PAPER_LOADS,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    radius: int = 3,
    seed: int = 1,
    verbose: bool = False,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    obs: bool = False,
    obs_options: Optional[Dict[str, Any]] = None,
) -> Series:
    """Local traffic within a radius-3 neighbourhood (paper Figure 5)."""
    config = _base_config(
        profile,
        traffic="local",
        traffic_options={"radius": radius},
        seed=seed,
        **_obs_overrides(obs, obs_options),
    )
    return sweep_algorithms(
        config,
        algorithms,
        offered_loads,
        verbose,
        jobs=jobs,
        checkpoint=checkpoint,
    )


def vct_comparison(
    profile: Optional[str] = None,
    offered_loads: Sequence[float] = PAPER_LOADS,
    algorithms: Sequence[str] = ("ecube", "2pn", "nbc"),
    seed: int = 1,
    verbose: bool = False,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    obs: bool = False,
    obs_options: Optional[Dict[str, Any]] = None,
) -> Series:
    """Virtual cut-through rerun of Section 3.4 (uniform traffic)."""
    config = _base_config(
        profile,
        traffic="uniform",
        switching="vct",
        seed=seed,
        **_obs_overrides(obs, obs_options),
    )
    return sweep_algorithms(
        config,
        algorithms,
        offered_loads,
        verbose,
        jobs=jobs,
        checkpoint=checkpoint,
    )


# ----------------------------------------------------------------------
# shape checks: the paper's qualitative claims
# ----------------------------------------------------------------------


def _peaks(series: Series) -> Dict[str, float]:
    return {name: peak_throughput(results) for name, results in series.items()}


def check_low_load_latency(series: Series) -> ShapeCheck:
    """At the lowest load all algorithms have (nearly) the same latency."""
    lows = [
        results[0].average_latency
        for results in series.values()
        if results and results[0].average_latency > 0
    ]
    passed = bool(lows) and max(lows) <= 1.35 * min(lows)
    return ("all algorithms have similar latency at low load", passed)


def check_figure3(series: Series) -> List[ShapeCheck]:
    """Claims the paper draws from Figure 3 (uniform traffic)."""
    peaks = _peaks(series)
    checks = [check_low_load_latency(series)]
    for hop_scheme in ("phop", "nhop", "nbc"):
        if hop_scheme in peaks and "ecube" in peaks:
            checks.append(
                (
                    f"{hop_scheme} peak throughput exceeds e-cube (uniform)",
                    peaks[hop_scheme] > peaks["ecube"],
                )
            )
    if {"ecube", "nlast"} <= peaks.keys():
        checks.append(
            (
                "e-cube sustains at least nlast's peak throughput (uniform)",
                peaks["ecube"] >= 0.95 * peaks["nlast"],
            )
        )
    if {"phop", "nhop"} <= peaks.keys():
        checks.append(
            (
                "phop at least matches nhop under uniform traffic",
                peaks["phop"] >= 0.95 * peaks["nhop"],
            )
        )
    return checks


def check_figure4(series: Series) -> List[ShapeCheck]:
    """Claims the paper draws from Figure 4 (hotspot traffic)."""
    peaks = _peaks(series)
    checks = [check_low_load_latency(series)]
    for hop_scheme in ("phop", "nhop", "nbc"):
        if hop_scheme in peaks and "ecube" in peaks:
            checks.append(
                (
                    f"{hop_scheme} peak throughput exceeds e-cube (hotspot)",
                    peaks[hop_scheme] > peaks["ecube"],
                )
            )
    if {"ecube", "nlast"} <= peaks.keys():
        # Compare sustained (highest-load) throughput: on scaled-down
        # networks nlast's brief pre-saturation peak can edge out e-cube,
        # but past saturation e-cube holds at least nlast's level — the
        # substance of the paper's hotspot ranking.
        ecube_high = series["ecube"][-1].achieved_utilization
        nlast_high = series["nlast"][-1].achieved_utilization
        checks.append(
            (
                "e-cube sustains at least nlast's throughput past "
                "saturation (hotspot)",
                ecube_high >= 0.95 * nlast_high,
            )
        )
    if {"nbc", "nhop"} <= peaks.keys():
        checks.append(
            (
                "nbc at least matches nhop under hotspot traffic",
                peaks["nbc"] >= 0.95 * peaks["nhop"],
            )
        )
    return checks


def check_figure5(series: Series) -> List[ShapeCheck]:
    """Claims the paper draws from Figure 5 (local traffic)."""
    peaks = _peaks(series)
    checks = [check_low_load_latency(series)]
    if {"2pn", "ecube"} <= peaks.keys():
        checks.append(
            (
                "2pn beats e-cube under local traffic",
                peaks["2pn"] > peaks["ecube"],
            )
        )
    if "nlast" in peaks:
        others = [v for k, v in peaks.items() if k != "nlast"]
        checks.append(
            (
                "nlast has the lowest peak throughput under local traffic",
                bool(others) and peaks["nlast"] <= min(others) * 1.05,
            )
        )
    for hop_scheme in ("phop", "nhop", "nbc"):
        if hop_scheme in peaks and "ecube" in peaks:
            checks.append(
                (
                    f"{hop_scheme} peak throughput exceeds e-cube (local)",
                    peaks[hop_scheme] > peaks["ecube"],
                )
            )
    if {"nbc", "phop"} <= peaks.keys():
        checks.append(
            (
                "nbc at least matches phop under local traffic",
                peaks["nbc"] >= 0.95 * peaks["phop"],
            )
        )
    return checks


def check_vct(series: Series) -> List[ShapeCheck]:
    """Section 3.4: under VCT, 2pn performs as well as nbc, beats e-cube."""
    peaks = _peaks(series)
    checks: List[ShapeCheck] = []
    if {"2pn", "ecube"} <= peaks.keys():
        checks.append(
            (
                "2pn beats e-cube under virtual cut-through",
                peaks["2pn"] > peaks["ecube"],
            )
        )
    if {"2pn", "nbc"} <= peaks.keys():
        checks.append(
            (
                "2pn performs about as well as nbc under VCT",
                peaks["2pn"] >= 0.8 * peaks["nbc"],
            )
        )
    return checks


#: Per-figure shape-check entry points, for harnesses (e.g. the
#: ``repro-campaign`` export path) that rebuild a figure's series from
#: stored results instead of running the ``figureN`` functions.
FIGURE_CHECKS: Mapping[
    str, Callable[[Series], List[ShapeCheck]]
] = MappingProxyType(
    {
        "3": check_figure3,
        "4": check_figure4,
        "5": check_figure5,
        "vct": check_vct,
    }
)

#: The (traffic, traffic_options, switching, algorithms) grid behind
#: each paper figure — the declarative core the figure functions and
#: :func:`figure_campaign_spec` share.
FIGURE_GRIDS: Mapping[str, Dict[str, Any]] = MappingProxyType(
    {
        "3": {
            "traffic": "uniform",
            "traffic_options": {},
            "switching": "wormhole",
            "algorithms": ALGORITHM_NAMES,
        },
        "4": {
            "traffic": "hotspot",
            "traffic_options": {"fraction": 0.04},
            "switching": "wormhole",
            "algorithms": ALGORITHM_NAMES,
        },
        "5": {
            "traffic": "local",
            "traffic_options": {"radius": 3},
            "switching": "wormhole",
            "algorithms": ALGORITHM_NAMES,
        },
        "vct": {
            "traffic": "uniform",
            "traffic_options": {},
            "switching": "vct",
            "algorithms": ("ecube", "2pn", "nbc"),
        },
    }
)


def figure_campaign_spec(
    figure: str,
    profile: Optional[str] = None,
    seed: int = 1,
    algorithms: Optional[Sequence[str]] = None,
    offered_loads: Sequence[float] = PAPER_LOADS,
):
    """The :class:`~repro.campaigns.spec.CampaignSpec` of one paper figure.

    ``repro-campaign run --figure N`` uses this to serve figures out of
    the campaign store: the spec expands to exactly the configs the
    ``figureN`` functions run, so a figure regenerated from the store is
    bit-identical to one swept directly.
    """
    from repro.campaigns.spec import CampaignSpec, TrafficSpec

    grid = FIGURE_GRIDS.get(figure)
    if grid is None:
        raise KeyError(
            f"unknown figure {figure!r}; choose from {sorted(FIGURE_GRIDS)}"
        )
    profile_name = profile if profile is not None else current_profile()
    overrides = dict(PROFILES[profile_name])
    radix = overrides.pop("radix", SimulationConfig.radix)
    base: Dict[str, Any] = dict(overrides)
    if grid["switching"] != "wormhole":
        base["switching"] = grid["switching"]
    return CampaignSpec(
        name=f"figure-{figure}-{profile_name}",
        algorithms=tuple(
            algorithms if algorithms is not None else grid["algorithms"]
        ),
        loads=tuple(offered_loads),
        seeds=(seed,),
        topologies=(f"torus:{radix}x2",),
        traffics=(
            TrafficSpec(
                grid["traffic"],
                tuple(sorted(grid["traffic_options"].items())),
            ),
        ),
        profile=None,  # the profile's schedule fields are in `base`
        base=base,
    )


def format_checks(checks: Sequence[ShapeCheck]) -> str:
    """Human-readable pass/fail listing."""
    return "\n".join(
        f"[{'PASS' if passed else 'FAIL'}] {claim}"
        for claim, passed in checks
    )


__all__ = [
    "FIGURE_CHECKS",
    "FIGURE_GRIDS",
    "check_figure3",
    "check_figure4",
    "check_figure5",
    "check_low_load_latency",
    "check_vct",
    "figure3",
    "figure4",
    "figure5",
    "figure_campaign_spec",
    "format_checks",
    "vct_comparison",
]
