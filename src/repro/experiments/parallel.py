"""Parallel sweep execution: fan independent points out to worker processes.

Every point of a load sweep — one (algorithm, traffic, offered load, seed)
combination — is an independent simulation: nothing is shared between
points except the immutable :class:`~repro.simulator.config.SimulationConfig`
that describes each one.  This module exploits that by scheduling points
over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* **Nothing mutable crosses process boundaries.**  Each worker receives a
  pickled config and builds its own topology, algorithm and traffic
  pattern from it, exactly as the serial path does per point, so serial
  and parallel sweeps are bit-identical (the test suite asserts this).
* **Determinism.**  A point's result is a pure function of its config
  (the rng streams derive from ``config.seed`` via an explicit integer
  mix, never from process state), so completion order cannot affect
  results; they are reassembled in submission order.
* **Checkpointing.**  With a checkpoint path, every finished point is
  persisted to a JSON file keyed by the point's identity and guarded by a
  campaign signature (a hash of the shared config fields).  Re-running an
  interrupted campaign skips completed points; a checkpoint written by a
  *different* campaign is ignored rather than trusted.
* **Ordered progress reporting.**  Progress lines are emitted as points
  finish, tagged ``[done/total]``, so a long 16x16 campaign is watchable
  from the terminal.

Worker processes are only worth their startup cost for real campaigns;
``jobs=1`` (the default everywhere) runs the exact same point list in
process, through the same checkpoint logic.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.runner import run_batch, run_point
from repro.simulator.config import SimulationConfig
from repro.stats.summary import SimulationResult

#: Checkpoint-file schema version (bumped on incompatible layout changes).
CHECKPOINT_VERSION = 1

#: Config fields that vary between the points of one campaign; everything
#: else must match for a checkpoint to be reused.
_POINT_FIELDS = ("algorithm", "offered_load", "seed")

#: Fields excluded from the campaign signature: the point fields, plus
#: the backend — per-seed results are bit-identical across backends (the
#: cross-backend test matrix pins this), so a checkpoint recorded under
#: one backend is equally valid under the other and a resumed campaign
#: may switch backends without losing completed points.
_SIGNATURE_EXCLUDED = _POINT_FIELDS + ("backend",)


def point_key(config: SimulationConfig) -> str:
    """Stable identity of one sweep point within a campaign."""
    return (
        f"{config.algorithm}|{config.traffic}|{config.topology}"
        f"{config.radix}^{config.n_dims}|{config.switching}"
        f"|load={config.offered_load:.6g}|seed={config.seed}"
    )


def campaign_signature(config: SimulationConfig) -> str:
    """Hash of every config field shared by all points of a campaign.

    Two configs that differ only in algorithm / offered load / seed map
    to the same signature, so one checkpoint file can back a whole
    figure's (algorithms x loads) grid — while a checkpoint recorded
    under different sampling schedules, switching modes, etc. is
    rejected instead of silently reused.
    """
    shared = dataclasses.asdict(config)
    for name in _SIGNATURE_EXCLUDED:
        shared.pop(name, None)
    blob = json.dumps(shared, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class SweepCheckpoint:
    """Per-point result store backing resumable sweep campaigns."""

    def __init__(self, path: str, signature: str) -> None:
        self.path = path
        self.signature = signature
        self._results: Dict[str, SimulationResult] = {}
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path) as stream:
                data = json.load(stream)
        except (OSError, json.JSONDecodeError):
            return  # unreadable/corrupt checkpoint: start fresh
        if (
            data.get("version") != CHECKPOINT_VERSION
            or data.get("signature") != self.signature
        ):
            return  # different campaign (or schema): do not trust it
        for key, payload in data.get("points", {}).items():
            self._results[key] = SimulationResult.from_json_dict(payload)

    def get(self, key: str) -> Optional[SimulationResult]:
        return self._results.get(key)

    def __len__(self) -> int:
        return len(self._results)

    def record(self, key: str, result: SimulationResult) -> None:
        """Persist one finished point (atomic rewrite of the file)."""
        self._results[key] = result
        payload = {
            "version": CHECKPOINT_VERSION,
            "signature": self.signature,
            "points": {
                k: r.to_json_dict() for k, r in self._results.items()
            },
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".sweep-checkpoint-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as stream:
                json.dump(payload, stream)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


def _run_point_worker(config: SimulationConfig) -> SimulationResult:
    """Worker entry: build everything from the config, run to convergence.

    Top-level (picklable) on purpose.  The worker shares nothing with the
    parent: topology, algorithm, traffic and rng streams are all built
    from the pickled config inside :func:`run_point`.
    """
    return run_point(config)


def _run_batch_worker(
    configs: Sequence[SimulationConfig],
) -> List[SimulationResult]:
    """Worker entry for one seed-batch: configs differ only by seed.

    The whole batch advances in lockstep inside one
    :class:`~repro.simulator.batch.BatchEngine`; results come back in
    the order of *configs* (= seed order), each bit-identical to what
    :func:`_run_point_worker` would have produced for that seed.
    """
    return run_batch(configs[0], [config.seed for config in configs])


def _batch_groups(
    configs: Sequence[SimulationConfig],
    pending: Sequence[int],
    batch_size: int,
) -> List[List[int]]:
    """Chunk pending batch-backend points into seed-batches.

    Points sharing every field but the seed land in one group (in
    submission order), split into chunks of at most *batch_size*; a
    worker claims a whole chunk per task instead of one seed.
    """
    by_key: Dict[str, List[int]] = {}
    for index in pending:
        shared = dataclasses.asdict(configs[index])
        shared.pop("seed", None)
        key = json.dumps(shared, sort_keys=True, default=repr)
        by_key.setdefault(key, []).append(index)
    groups: List[List[int]] = []
    for members in by_key.values():
        for start in range(0, len(members), batch_size):
            groups.append(members[start:start + batch_size])
    return groups


def run_points(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
    verbose: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    batch_size: int = 32,
) -> List[SimulationResult]:
    """Run every config, fanning out to *jobs* worker processes.

    Results come back in the order of *configs* regardless of completion
    order.  With a checkpoint path, previously completed points are
    skipped and new completions are persisted as they land.

    Points whose config selects ``backend="batch"`` are grouped into
    seed-batches of at most *batch_size*: a worker claims a whole batch
    (points identical except for the seed) and runs it in one lockstep
    :class:`~repro.simulator.batch.BatchEngine`, instead of one point.
    Per-seed results and checkpoint records are unchanged.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if progress is None:
        def progress(line: str) -> None:
            if verbose:
                print(line, file=sys.stderr)

    checkpoint: Optional[SweepCheckpoint] = None
    if checkpoint_path is not None:
        signature = (
            campaign_signature(configs[0]) if configs else "empty"
        )
        checkpoint = SweepCheckpoint(checkpoint_path, signature)

    total = len(configs)
    results: List[Optional[SimulationResult]] = [None] * total
    pending: List[int] = []
    for index, config in enumerate(configs):
        cached = (
            checkpoint.get(point_key(config)) if checkpoint else None
        )
        if cached is not None:
            results[index] = cached
            progress(f"  [skip] {config.label()} (checkpointed)")
        else:
            pending.append(index)

    done = total - len(pending)

    def finish(index: int, result: SimulationResult) -> None:
        nonlocal done
        results[index] = result
        if checkpoint is not None:
            checkpoint.record(point_key(configs[index]), result)
        done += 1
        progress(f"  [{done}/{total}] {result}")

    # One task per point for the object backend; one task per
    # seed-batch for the batch backend.  Mixed lists are handled
    # point-by-point within each class.
    batch_pending = [
        index for index in pending
        if configs[index].backend == "batch"
    ]
    single_pending = [
        index for index in pending
        if configs[index].backend != "batch"
    ]
    groups = _batch_groups(configs, batch_pending, batch_size)

    def finish_group(members: List[int],
                     group_results: List[SimulationResult]) -> None:
        for index, result in zip(members, group_results):
            finish(index, result)

    if jobs == 1 or len(pending) <= 1:
        for index in single_pending:
            finish(index, _run_point_worker(configs[index]))
        for members in groups:
            finish_group(
                members,
                _run_batch_worker([configs[index] for index in members]),
            )
    else:
        workers = min(jobs, len(single_pending) + len(groups))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            point_futures = {
                pool.submit(_run_point_worker, configs[index]): index
                for index in single_pending
            }
            group_futures = {
                pool.submit(
                    _run_batch_worker,
                    [configs[index] for index in members],
                ): members
                for members in groups
            }
            remaining = set(point_futures) | set(group_futures)
            while remaining:
                finished, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    # .result() re-raises worker exceptions here, after
                    # already-finished siblings have been checkpointed.
                    if future in point_futures:
                        finish(point_futures[future], future.result())
                    else:
                        finish_group(group_futures[future], future.result())

    return [result for result in results if result is not None]


def run_sweep_points(
    base_config: SimulationConfig,
    algorithms: Sequence[str],
    offered_loads: Sequence[float],
    seeds: Optional[Sequence[int]] = None,
) -> List[SimulationConfig]:
    """The full (algorithm x load [x seed]) point grid of one campaign."""
    seed_list: Iterable[int] = (
        seeds if seeds is not None else (base_config.seed,)
    )
    return [
        dataclasses.replace(
            base_config,
            algorithm=algorithm,
            offered_load=load,
            seed=seed,
        )
        for algorithm in algorithms
        for load in offered_loads
        for seed in seed_list
    ]


__all__ = [
    "CHECKPOINT_VERSION",
    "SweepCheckpoint",
    "campaign_signature",
    "point_key",
    "run_points",
    "run_sweep_points",
]
