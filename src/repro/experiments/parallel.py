"""Parallel sweep execution: fan independent points out to worker processes.

Every point of a load sweep — one (algorithm, traffic, offered load, seed)
combination — is an independent simulation: nothing is shared between
points except the immutable :class:`~repro.simulator.config.SimulationConfig`
that describes each one.  This module exploits that by scheduling points
over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* **Nothing mutable crosses process boundaries.**  Each worker receives a
  pickled config and builds its own topology, algorithm and traffic
  pattern from it, exactly as the serial path does per point, so serial
  and parallel sweeps are bit-identical (the test suite asserts this).
* **Determinism.**  A point's result is a pure function of its config
  (the rng streams derive from ``config.seed`` via an explicit integer
  mix, never from process state), so completion order cannot affect
  results; they are reassembled in submission order.
* **Checkpointing.**  With a checkpoint path, every finished point is
  appended to a content-addressed result-store file
  (:class:`repro.campaigns.store.ResultStore`) keyed by the point's
  identity and campaign signature (a hash of the shared config fields).
  Re-running an interrupted campaign skips completed points — including
  individual members of a batch-backend seed group — and a worker
  failure never discards finished sibling points: everything completed
  is persisted before the error propagates.  Corrupt or stale
  checkpoint files are surfaced with a warning and preserved as
  ``.corrupt``/``.stale`` sidecars, never silently overwritten; legacy
  (v1, whole-file JSON) checkpoints are migrated in place.
* **Ordered progress reporting.**  Progress lines are emitted as points
  finish, tagged ``[done/total]``, so a long 16x16 campaign is watchable
  from the terminal.

Worker processes are only worth their startup cost for real campaigns;
``jobs=1`` (the default everywhere) runs the exact same point list in
process, through the same checkpoint logic.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
)

from repro.campaigns.identity import (
    campaign_signature,
    config_record_dict,
    point_key,
)
from repro.campaigns.store import LEGACY_CHECKPOINT_VERSION, ResultStore
from repro.experiments.runner import run_batch, run_point
from repro.simulator.config import SimulationConfig
from repro.stats.summary import SimulationResult

#: Schema version of the legacy whole-file checkpoint layout (kept for
#: the in-place migration; new checkpoints are store records).
CHECKPOINT_VERSION = LEGACY_CHECKPOINT_VERSION


class ResultSink(Protocol):
    """What run_points needs from a checkpoint/result store.

    :class:`SweepCheckpoint` (one campaign's resume guard) and
    :class:`repro.campaigns.orchestrator.StoreSink` (the campaign
    orchestrator's store adapter) both speak it.
    """

    def get(self, key: str) -> Optional[SimulationResult]:
        """A previously recorded result for *key*, if any."""

    def record(
        self,
        key: str,
        result: SimulationResult,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        """Persist one finished point."""


class SweepCheckpoint:
    """Per-point resume guard for one campaign, backed by a ResultStore.

    Thin adapter: the store holds one append-only record per finished
    point (shared across campaigns — recording a point is O(that
    record), not O(points so far)); this class scopes lookups to one
    campaign's signature so ``repro-sweep --checkpoint`` behaves exactly
    as before.  Legacy whole-file checkpoints are migrated on open;
    corrupt or foreign files are quarantined with a warning instead of
    silently overwritten.
    """

    def __init__(self, path: str, signature: str) -> None:
        self.path = path
        self.signature = signature
        self._store = ResultStore(path, legacy_signature=signature)

    def get(self, key: str) -> Optional[SimulationResult]:
        return self._store.get_record(self.signature, key)

    def __len__(self) -> int:
        return len(self._store)

    def record(
        self,
        key: str,
        result: SimulationResult,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        """Append one finished point (O(record) bytes, not O(N))."""
        config_dict = (
            config_record_dict(config) if config is not None else None
        )
        self._store.put_record(self.signature, key, result, config_dict)


def _run_point_worker(config: SimulationConfig) -> SimulationResult:
    """Worker entry: build everything from the config, run to convergence.

    Top-level (picklable) on purpose.  The worker shares nothing with the
    parent: topology, algorithm, traffic and rng streams are all built
    from the pickled config inside :func:`run_point`.
    """
    return run_point(config)


def _run_batch_worker(
    configs: Sequence[SimulationConfig],
) -> List[SimulationResult]:
    """Worker entry for one seed-batch: configs differ only by seed.

    The whole batch advances in lockstep inside one
    :class:`~repro.simulator.batch.BatchEngine`; results come back in
    the order of *configs* (= seed order), each bit-identical to what
    :func:`_run_point_worker` would have produced for that seed.
    """
    return run_batch(configs[0], [config.seed for config in configs])


def _batch_groups(
    configs: Sequence[SimulationConfig],
    pending: Sequence[int],
    batch_size: int,
) -> List[List[int]]:
    """Chunk pending batch-backend points into seed-batches.

    Points sharing every field but the seed land in one group (in
    submission order), split into chunks of at most *batch_size*; a
    worker claims a whole chunk per task instead of one seed.  Only
    *pending* (un-checkpointed) members are grouped, so resuming an
    interrupted campaign re-runs exactly the missing seeds of a group,
    never its already-recorded siblings.
    """
    by_key: Dict[str, List[int]] = {}
    for index in pending:
        shared = dataclasses.asdict(configs[index])
        shared.pop("seed", None)
        key = json.dumps(shared, sort_keys=True, default=repr)
        by_key.setdefault(key, []).append(index)
    groups: List[List[int]] = []
    for members in by_key.values():
        for start in range(0, len(members), batch_size):
            groups.append(members[start:start + batch_size])
    return groups


def run_points(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
    verbose: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    batch_size: int = 32,
    checkpoint: Optional[ResultSink] = None,
) -> List[SimulationResult]:
    """Run every config, fanning out to *jobs* worker processes.

    Results come back in the order of *configs* regardless of completion
    order.  With a checkpoint (a path, or any object speaking the
    ``get``/``record`` protocol — e.g. a campaign store sink),
    previously completed points are skipped and new completions are
    persisted as they land.

    Points whose config selects ``backend="batch"`` are grouped into
    seed-batches of at most *batch_size*: a worker claims a whole batch
    (points identical except for the seed) and runs it in one lockstep
    :class:`~repro.simulator.batch.BatchEngine`, instead of one point.
    Per-seed results and checkpoint records are unchanged.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if progress is None:
        def progress(line: str) -> None:
            if verbose:
                print(line, file=sys.stderr)

    if checkpoint is None and checkpoint_path is not None:
        signature = (
            campaign_signature(configs[0]) if configs else "empty"
        )
        checkpoint = SweepCheckpoint(checkpoint_path, signature)

    total = len(configs)
    results: List[Optional[SimulationResult]] = [None] * total
    pending: List[int] = []
    for index, config in enumerate(configs):
        cached = (
            checkpoint.get(point_key(config)) if checkpoint else None
        )
        if cached is not None:
            results[index] = cached
            progress(f"  [skip] {config.label()} (checkpointed)")
        else:
            pending.append(index)

    done = total - len(pending)

    def finish(index: int, result: SimulationResult) -> None:
        nonlocal done
        results[index] = result
        if checkpoint is not None:
            checkpoint.record(
                point_key(configs[index]), result, configs[index]
            )
        done += 1
        progress(f"  [{done}/{total}] {result}")

    # One task per point for the object backend; one task per
    # seed-batch for the batch backend.  Mixed lists are handled
    # point-by-point within each class.
    batch_pending = [
        index for index in pending
        if configs[index].backend == "batch"
    ]
    single_pending = [
        index for index in pending
        if configs[index].backend != "batch"
    ]
    groups = _batch_groups(configs, batch_pending, batch_size)

    def finish_group(members: List[int],
                     group_results: List[SimulationResult]) -> None:
        for index, result in zip(members, group_results):
            finish(index, result)

    if jobs == 1 or len(pending) <= 1:
        for index in single_pending:
            finish(index, _run_point_worker(configs[index]))
        for members in groups:
            finish_group(
                members,
                _run_batch_worker([configs[index] for index in members]),
            )
    else:
        workers = min(jobs, len(single_pending) + len(groups))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            point_futures = {
                pool.submit(_run_point_worker, configs[index]): index
                for index in single_pending
            }
            group_futures = {
                pool.submit(
                    _run_batch_worker,
                    [configs[index] for index in members],
                ): members
                for members in groups
            }
            # Deterministic drain order (the `finished` sets below are
            # hash-ordered): process completions by submission index.
            submit_order: Dict[Future, int] = {
                future: index for future, index in point_futures.items()
            }
            for future, members in group_futures.items():
                submit_order[future] = members[0]
            remaining = set(point_futures) | set(group_futures)
            error: Optional[Exception] = None
            while remaining:
                finished, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED
                )
                for future in sorted(finished, key=submit_order.__getitem__):
                    # A failed worker must not discard its finished
                    # siblings: every completed point (including the
                    # other members of this `finished` set) is recorded
                    # before the first error propagates.
                    try:
                        if future in point_futures:
                            finish(point_futures[future], future.result())
                        else:
                            finish_group(
                                group_futures[future], future.result()
                            )
                    except Exception as exc:
                        if error is None:
                            error = exc
                if error is not None and checkpoint is None:
                    break  # nothing to persist: fail fast
            if error is not None:
                raise error

    return [result for result in results if result is not None]


def run_sweep_points(
    base_config: SimulationConfig,
    algorithms: Sequence[str],
    offered_loads: Sequence[float],
    seeds: Optional[Sequence[int]] = None,
) -> List[SimulationConfig]:
    """The full (algorithm x load [x seed]) point grid of one campaign."""
    seed_list: Iterable[int] = (
        seeds if seeds is not None else (base_config.seed,)
    )
    return [
        dataclasses.replace(
            base_config,
            algorithm=algorithm,
            offered_load=load,
            seed=seed,
        )
        for algorithm in algorithms
        for load in offered_loads
        for seed in seed_list
    ]


__all__ = [
    "CHECKPOINT_VERSION",
    "ResultSink",
    "SweepCheckpoint",
    "campaign_signature",
    "point_key",
    "run_points",
    "run_sweep_points",
]
