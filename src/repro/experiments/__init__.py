"""Experiment harness: single points, load sweeps, and paper figures."""

from repro.experiments.parallel import run_points, run_sweep_points
from repro.experiments.profiles import PROFILES, apply_profile, current_profile
from repro.experiments.runner import run_point
from repro.experiments.sweep import run_sweep, sweep_algorithms
from repro.experiments.tables import format_table, write_csv

__all__ = [
    "PROFILES",
    "apply_profile",
    "current_profile",
    "format_table",
    "run_point",
    "run_points",
    "run_sweep",
    "run_sweep_points",
    "sweep_algorithms",
    "write_csv",
]
