"""Command-line interface: ``repro-verify``.

Runs the deadlock-freedom / structure check battery over the algorithm
registry and a matrix of topologies, printing a verdict table and
optionally writing machine-readable JSON.

Examples::

    repro-verify --all --topology torus:4x4 --json out.json
    repro-verify --algorithms 2pn,nlast --topology torus:4x4 --topology mesh:4x4
    repro-verify --all --topology torus:4x4 --fail-on-error   # CI gate

Exit status: 0 when every verdict is pass/skipped/waived; 1 on any
unwaived failure; with ``--fail-on-error`` also 1 on check errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.verify import (
    CHECKS,
    DEFAULT_TOPOLOGIES,
    format_summary,
    format_table,
    run_verification,
)
from repro.util.errors import ConfigurationError

#: Default on-disk location of the source-hash result cache.
DEFAULT_CACHE = ".repro-verify-cache.json"


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description=(
            "Verify the structural deadlock-freedom claims of every "
            "registered routing algorithm (see docs/verification.md)."
        ),
    )
    selection = parser.add_mutually_exclusive_group()
    selection.add_argument(
        "--all",
        action="store_true",
        help="verify every registered algorithm (the default)",
    )
    selection.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated algorithm names (x<lanes> suffixes allowed)",
    )
    parser.add_argument(
        "--topology",
        action="append",
        default=None,
        metavar="KIND:RxR",
        help=(
            "topology to verify on, e.g. torus:4x4 or mesh:3x3x3; "
            f"repeatable (default: {', '.join(DEFAULT_TOPOLOGIES)})"
        ),
    )
    parser.add_argument(
        "--checks",
        default=None,
        help=(
            "comma-separated check names "
            f"(default: all of {', '.join(CHECKS)})"
        ),
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the structured verdicts to this JSON file",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE,
        metavar="PATH",
        help=f"result cache file (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the result cache",
    )
    parser.add_argument(
        "--fail-on-error",
        action="store_true",
        help="also exit non-zero when a check errors (CI mode)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the summary, not the full table",
    )
    return parser.parse_args(argv)


def _split(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    try:
        run = run_verification(
            topology_specs=args.topology,
            algorithms=_split(args.algorithms),
            checks=_split(args.checks),
            cache_path=None if args.no_cache else args.cache,
        )
    except ConfigurationError as exc:
        print(f"repro-verify: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(format_table(run))
        print()
    print(format_summary(run))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(run.to_dict(), stream, indent=1, sort_keys=True)
            stream.write("\n")
        print(f"wrote {args.json}")
    return 0 if run.ok(fail_on_error=args.fail_on_error) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
