"""Load sweeps: the x-axis of every figure in the paper.

Every sweep point is run from a fresh, fully self-contained
:class:`~repro.simulator.config.SimulationConfig`: the topology, routing
algorithm and traffic pattern are rebuilt per point rather than shared
across the sweep.  (Earlier versions shared one algorithm/traffic
instance across all engines of a sweep; although the shipped objects are
stateless after construction — traffic patterns only memoize
deterministic analytics, algorithms keep per-message state on the
messages themselves — sharing made the serial path's semantics subtly
different *in principle* from any parallel execution.  Rebuilding per
point makes the serial path and the process-pool path of
:mod:`repro.experiments.parallel` identical by construction, which the
test suite pins down bit-for-bit.)

``jobs`` fans the independent points of a sweep out to worker processes;
``checkpoint`` persists per-point results to an append-only result-store
file (:mod:`repro.campaigns.store`) so interrupted campaigns (e.g. a
full-ladder 16x16 figure) resume instead of restarting — and so other
campaigns sharing points (see ``repro-campaign``) reuse them for free.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.parallel import run_points, run_sweep_points
from repro.simulator.config import SimulationConfig
from repro.stats.summary import SimulationResult

#: The offered loads used by the paper's figures (fraction of capacity).
PAPER_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run_sweep(
    base_config: SimulationConfig,
    offered_loads: Sequence[float] = PAPER_LOADS,
    verbose: bool = False,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    batch_size: int = 32,
) -> List[SimulationResult]:
    """Run *base_config* at each offered load (one algorithm's curve)."""
    configs = run_sweep_points(
        base_config, [base_config.algorithm], offered_loads, seeds=seeds
    )
    return run_points(
        configs,
        jobs=jobs,
        checkpoint_path=checkpoint,
        verbose=verbose,
        batch_size=batch_size,
    )


def sweep_algorithms(
    base_config: SimulationConfig,
    algorithms: Iterable[str],
    offered_loads: Sequence[float] = PAPER_LOADS,
    verbose: bool = False,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    batch_size: int = 32,
) -> Dict[str, List[SimulationResult]]:
    """One load sweep per algorithm — the data behind one paper figure.

    All (algorithm x load) points are scheduled in a single pool so the
    slow algorithms and the fast ones share the workers evenly.  With
    several *seeds* and ``base_config.backend == "batch"``, each
    (algorithm, load) point's seeds run in one lockstep batch.
    """
    names = list(algorithms)
    loads = list(offered_loads)
    if verbose and jobs > 1:
        print(
            f"sweeping {len(names)} algorithms x {len(loads)} loads "
            f"on {jobs} workers ...",
            file=sys.stderr,
        )
    configs = run_sweep_points(base_config, names, loads, seeds=seeds)
    results = run_points(
        configs,
        jobs=jobs,
        checkpoint_path=checkpoint,
        verbose=verbose,
        batch_size=batch_size,
    )
    per_algorithm = len(results) // len(names) if names else 0
    return {
        name: results[i * per_algorithm: (i + 1) * per_algorithm]
        for i, name in enumerate(names)
    }


def peak_throughput(results: Sequence[SimulationResult]) -> float:
    """Highest achieved utilization across a sweep (a figure's headline)."""
    return max(
        (result.achieved_utilization for result in results), default=0.0
    )


def saturation_load(
    results: Sequence[SimulationResult],
    latency_factor: float = 3.0,
) -> Optional[float]:
    """First offered load whose latency exceeds ``factor`` x the low-load one.

    A simple operational definition of the saturation point used by the
    shape checks; None when the sweep never saturates.
    """
    if not results:
        return None
    base = results[0].average_latency
    if base <= 0:
        return None
    for result in results:
        if result.average_latency > latency_factor * base:
            return result.offered_load
    return None


__all__ = [
    "PAPER_LOADS",
    "peak_throughput",
    "run_sweep",
    "saturation_load",
    "sweep_algorithms",
]
