"""Load sweeps: the x-axis of every figure in the paper."""

from __future__ import annotations

import dataclasses
import sys
from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.runner import run_point
from repro.simulator.config import SimulationConfig
from repro.stats.summary import SimulationResult

#: The offered loads used by the paper's figures (fraction of capacity).
PAPER_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run_sweep(
    base_config: SimulationConfig,
    offered_loads: Sequence[float] = PAPER_LOADS,
    verbose: bool = False,
) -> List[SimulationResult]:
    """Run *base_config* at each offered load, sharing the built objects."""
    topology = base_config.build_topology()
    algorithm = base_config.build_algorithm(topology)
    traffic = base_config.build_traffic(topology)
    results = []
    for load in offered_loads:
        config = dataclasses.replace(base_config, offered_load=load)
        result = run_point(config, topology, algorithm, traffic)
        results.append(result)
        if verbose:
            print(f"  {result}", file=sys.stderr)
    return results


def sweep_algorithms(
    base_config: SimulationConfig,
    algorithms: Iterable[str],
    offered_loads: Sequence[float] = PAPER_LOADS,
    verbose: bool = False,
) -> Dict[str, List[SimulationResult]]:
    """One load sweep per algorithm — the data behind one paper figure."""
    series: Dict[str, List[SimulationResult]] = {}
    for name in algorithms:
        if verbose:
            print(f"sweeping {name} ...", file=sys.stderr)
        config = dataclasses.replace(base_config, algorithm=name)
        series[name] = run_sweep(config, offered_loads, verbose=verbose)
    return series


def peak_throughput(results: Sequence[SimulationResult]) -> float:
    """Highest achieved utilization across a sweep (a figure's headline)."""
    return max(
        (result.achieved_utilization for result in results), default=0.0
    )


def saturation_load(
    results: Sequence[SimulationResult],
    latency_factor: float = 3.0,
) -> Optional[float]:
    """First offered load whose latency exceeds ``factor`` x the low-load one.

    A simple operational definition of the saturation point used by the
    shape checks; None when the sweep never saturates.
    """
    if not results:
        return None
    base = results[0].average_latency
    if base <= 0:
        return None
    for result in results:
        if result.average_latency > latency_factor * base:
            return result.offered_load
    return None


__all__ = [
    "PAPER_LOADS",
    "peak_throughput",
    "run_sweep",
    "saturation_load",
    "sweep_algorithms",
]
