"""Named run profiles: the paper's full configuration and scaled ones.

The paper simulates 16x16 tori with long warm-ups.  That is reproducible
here (profile ``paper``) but takes tens of minutes per figure in pure
Python, so the default profile for benchmarks and examples is ``scaled``:
an 8x8 torus with shorter sampling, which preserves every qualitative
ranking the paper reports while finishing in minutes.  Select a profile via
the ``REPRO_PROFILE`` environment variable or by passing ``profile=`` to
the figure functions.

==========  ======  =====================================================
Profile     Torus   Intended use
==========  ======  =====================================================
``paper``   16x16   faithful reproduction (slow; documented runs)
``scaled``  8x8     default for benchmarks/examples
``quick``   8x8     smoke tests and CI (few samples, short warm-up)
``tiny``    4x4     unit/integration tests
==========  ======  =====================================================
"""

from __future__ import annotations

import dataclasses
import os
from types import MappingProxyType
from typing import Dict, Mapping

from repro.simulator.config import SimulationConfig
from repro.util.errors import ConfigurationError

#: Per-profile overrides applied on top of SimulationConfig defaults.
#: Immutable: a profile edited at runtime would silently diverge between
#: the parent process and ProcessPool workers (DET005).
PROFILES: Mapping[str, Dict[str, object]] = MappingProxyType({
    "paper": {
        "radix": 16,
        "warmup_cycles": 5000,
        "sample_cycles": 2000,
        "gap_cycles": 400,
        "min_samples": 3,
        "max_samples": 10,
    },
    "scaled": {
        "radix": 8,
        "warmup_cycles": 2000,
        "sample_cycles": 1200,
        "gap_cycles": 240,
        "min_samples": 3,
        "max_samples": 6,
    },
    "quick": {
        "radix": 8,
        "warmup_cycles": 800,
        "sample_cycles": 600,
        "gap_cycles": 120,
        "min_samples": 3,
        "max_samples": 3,
    },
    "tiny": {
        "radix": 4,
        "warmup_cycles": 400,
        "sample_cycles": 400,
        "gap_cycles": 80,
        "min_samples": 3,
        "max_samples": 3,
    },
})

_ENV_VAR = "REPRO_PROFILE"


def current_profile(default: str = "scaled") -> str:
    """The profile selected by the environment (or *default*)."""
    name = os.environ.get(_ENV_VAR, default)
    if name not in PROFILES:
        raise ConfigurationError(
            f"{_ENV_VAR}={name!r} is not a known profile; "
            f"choose from {sorted(PROFILES)}"
        )
    return name


def apply_profile(
    config: SimulationConfig, profile: str
) -> SimulationConfig:
    """A copy of *config* with the profile's overrides applied."""
    overrides = PROFILES.get(profile)
    if overrides is None:
        raise ConfigurationError(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
        )
    return dataclasses.replace(config, **overrides)


__all__ = ["PROFILES", "apply_profile", "current_profile"]
