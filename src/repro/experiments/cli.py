"""Command-line interface: ``repro-sweep``.

Examples::

    repro-sweep --figure 3 --profile quick
    repro-sweep --algorithms ecube,nbc --traffic uniform --loads 0.2,0.4,0.6
    repro-sweep --figure 4 --profile scaled --csv fig4.csv
    repro-sweep --figure 3 --profile paper --jobs 8 --checkpoint fig3.ckpt.json
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from types import MappingProxyType
from typing import List, Optional, Tuple

from repro.experiments import paper_figures
from repro.experiments.profiles import PROFILES, apply_profile
from repro.experiments.sweep import PAPER_LOADS, sweep_algorithms
from repro.experiments.tables import format_figure, peak_summary, write_csv
from repro.routing.registry import ALGORITHM_NAMES
from repro.simulator.config import (
    BACKENDS,
    FLOW_CONTROL_MODES,
    SimulationConfig,
)
from repro.util.errors import ConfigurationError

# Immutable figure dispatch table (DET005: no worker-divergent state).
_FIGURES = MappingProxyType(
    {
        "3": (paper_figures.figure3, paper_figures.check_figure3),
        "4": (paper_figures.figure4, paper_figures.check_figure4),
        "5": (paper_figures.figure5, paper_figures.check_figure5),
        "vct": (paper_figures.vct_comparison, paper_figures.check_vct),
    }
)


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description=(
            "Regenerate figures from Boppana & Chalasani (ISCA 1993) or "
            "run custom load sweeps."
        ),
    )
    parser.add_argument(
        "--figure",
        choices=sorted(_FIGURES),
        help="paper artifact to regenerate (3, 4, 5, or vct)",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default=None,
        help="run profile (default: REPRO_PROFILE env var or 'scaled')",
    )
    parser.add_argument(
        "--algorithms",
        default=",".join(ALGORITHM_NAMES),
        help="comma-separated algorithm names",
    )
    parser.add_argument(
        "--traffic",
        default="uniform",
        help="traffic pattern for custom sweeps",
    )
    parser.add_argument(
        "--loads",
        default=None,
        help="comma-separated offered loads (default: the paper's ladder)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--seeds",
        default=None,
        metavar="S1,S2,...",
        help=(
            "comma-separated seeds: every (algorithm, load) point runs "
            "once per seed (overrides --seed; pairs naturally with "
            "--backend batch, which runs a point's seeds in lockstep)"
        ),
    )
    parser.add_argument(
        "--flow-control",
        choices=sorted(FLOW_CONTROL_MODES),
        default=None,
        help=(
            "node model for custom sweeps: 'ideal' (the paper's, "
            "default) or 'conservative' (snapshot-based; required by "
            "--backend batch)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help=(
            "simulation backend for custom sweeps: 'object' (default) "
            "runs one engine per seed, 'batch' runs each point's seeds "
            "in one vectorized lockstep engine (bit-identical per seed; "
            "requires a conservative-flow-control configuration)"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=32,
        metavar="B",
        help="max seeds per lockstep batch with --backend batch",
    )
    parser.add_argument(
        "--identity",
        choices=("strict", "relaxed"),
        default=None,
        help=(
            "batch-backend execution contract: 'strict' (default; "
            "per-seed results bit-identical to the object engine) or "
            "'relaxed' (batched rng + vectorized routing kernels, "
            "statistically equivalent — see docs/performance.md, "
            "'identity modes'; requires --backend batch)"
        ),
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help=(
            "worker processes for the sweep (default 1 = serial; "
            "every (algorithm, load) point is independent, so a figure "
            "scales to however many cores are available)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help=(
            "append-only result-store file recording each finished "
            "point (one JSON record per line); re-running with the "
            "same file resumes an interrupted campaign instead of "
            "restarting it (legacy whole-file checkpoints are migrated "
            "in place; see also repro-campaign)"
        ),
    )
    parser.add_argument(
        "--csv", default=None, help="also write results to this CSV file"
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help=(
            "attach a repro.obs observer to every point: per-cycle "
            "probes, an NDJSON event trace, congestion heatmaps and "
            "phase timings, aggregated into each result's obs_metrics "
            "(and into the checkpoint file)"
        ),
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help=(
            "also export per-point artifact files (trace.ndjson, "
            "probes.csv/ndjson, heatmap.csv/txt, metrics.json) into DIR; "
            "implies --obs"
        ),
    )
    parser.add_argument(
        "--obs-stride",
        type=int,
        default=None,
        metavar="N",
        help="probe sampling period in cycles (default 32)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    return parser.parse_args(argv)


def _obs_settings(args: argparse.Namespace) -> Tuple[bool, dict]:
    """(enabled, obs_options) from the --obs* flags."""
    enabled = args.obs or args.obs_dir is not None
    options: dict = {}
    if args.obs_dir is not None:
        options["export_dir"] = args.obs_dir
    if args.obs_stride is not None:
        options["stride"] = args.obs_stride
    return enabled, options


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    loads = (
        PAPER_LOADS
        if args.loads is None
        else tuple(float(x) for x in args.loads.split(","))
    )

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.batch_size < 1:
        print(
            f"--batch-size must be >= 1, got {args.batch_size}",
            file=sys.stderr,
        )
        return 2
    seeds: Optional[List[int]] = None
    if args.seeds is not None:
        try:
            seeds = [int(x) for x in args.seeds.split(",") if x.strip()]
        except ValueError:
            print(f"--seeds must be integers, got {args.seeds!r}",
                  file=sys.stderr)
            return 2
        if not seeds:
            print("--seeds must name at least one seed", file=sys.stderr)
            return 2

    obs_enabled, obs_options = _obs_settings(args)

    if args.figure is not None:
        if args.backend == "batch":
            # The paper figures pin the paper's node model (ideal flow
            # control), which the batch backend cannot reproduce
            # bit-identically; see the batch module docstring.
            print(
                "--backend batch applies to custom sweeps only "
                "(the paper figures use ideal flow control)",
                file=sys.stderr,
            )
            return 2
        if args.identity is not None:
            print(
                "--identity applies to custom sweeps only (the paper "
                "figures run on the object backend, the strict oracle)",
                file=sys.stderr,
            )
            return 2
        if seeds is not None:
            print("--seeds applies to custom sweeps; use --seed with "
                  "--figure", file=sys.stderr)
            return 2
        if args.flow_control is not None:
            print(
                "--flow-control applies to custom sweeps only "
                "(the paper figures pin the paper's node model)",
                file=sys.stderr,
            )
            return 2
        run, check = _FIGURES[args.figure]
        series = run(
            profile=args.profile,
            offered_loads=loads,
            algorithms=algorithms,
            seed=args.seed,
            verbose=not args.quiet,
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            obs=obs_enabled,
            obs_options=obs_options,
        )
        title = f"Paper figure {args.figure}"
        checks = check(series)
    else:
        config = SimulationConfig(traffic=args.traffic, seed=args.seed)
        if args.profile is not None:
            config = apply_profile(config, args.profile)
        if obs_enabled:
            config = dataclasses.replace(
                config, obs=True, obs_options=obs_options
            )
        if args.flow_control is not None:
            config = dataclasses.replace(
                config, flow_control=args.flow_control
            )
        if args.backend is not None:
            try:
                config = dataclasses.replace(config, backend=args.backend)
            except ConfigurationError as error:
                # e.g. batch over ideal flow control: surface the
                # prerequisite instead of a traceback.
                print(f"--backend {args.backend}: {error}", file=sys.stderr)
                print(
                    "hint: the batch backend needs "
                    "--flow-control conservative",
                    file=sys.stderr,
                )
                return 2
        if args.identity is not None:
            try:
                config = dataclasses.replace(
                    config, identity=args.identity
                )
            except ConfigurationError as error:
                # e.g. relaxed without the batch backend.
                print(f"--identity {args.identity}: {error}",
                      file=sys.stderr)
                print("hint: --identity relaxed needs --backend batch",
                      file=sys.stderr)
                return 2
        series = sweep_algorithms(
            config,
            algorithms,
            loads,
            verbose=not args.quiet,
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            seeds=seeds,
            batch_size=args.batch_size,
        )
        title = f"Custom sweep: {args.traffic} traffic"
        checks = []

    print(format_figure(series, title))
    print()
    print(peak_summary(series))
    if checks:
        print()
        print(paper_figures.format_checks(checks))
    if args.csv:
        with open(args.csv, "w", newline="") as stream:
            write_csv(series, stream)
        print(f"\nwrote {args.csv}")
    if args.obs_dir is not None:
        print(f"\nobservability artifacts in {args.obs_dir}/")
    return 0 if all(passed for _, passed in checks) else (1 if checks else 0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
