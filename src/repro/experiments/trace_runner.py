"""Run a recorded communication trace to completion (paper §4 future work).

Unlike the steady-state runner, a trace run has a natural end: every send
event admitted and every message delivered.  The figure of merit is the
**makespan** — the cycle the last message completes — together with the
usual latency statistics over the trace's messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine
from repro.traffic.trace import MessageTrace
from repro.util.errors import ConfigurationError


@dataclass
class TraceResult:
    """Outcome of replaying one trace under one configuration."""

    algorithm: str
    events: int
    makespan: int
    messages_delivered: int
    average_latency: float
    max_latency: int
    achieved_utilization: float

    def __str__(self) -> str:
        return (
            f"{self.algorithm}: {self.events} events in "
            f"{self.makespan} cycles "
            f"(latency avg {self.average_latency:.1f}, "
            f"max {self.max_latency})"
        )


def run_trace(
    config: SimulationConfig,
    trace: MessageTrace,
    max_cycles: Optional[int] = None,
) -> TraceResult:
    """Replay *trace* under *config* until every message is delivered.

    *max_cycles* guards against runaway runs (default: generous multiple
    of the trace horizon); exceeding it raises
    :class:`ConfigurationError` since it means the configuration cannot
    carry the workload.
    """
    engine = Engine(config, trace=trace)
    if max_cycles is None:
        max_cycles = (trace.horizon + 1) * 50 + 200_000
    engine.start_sample()
    while not (engine.trace_exhausted and engine.in_flight == 0):
        if engine.cycle >= max_cycles:
            raise ConfigurationError(
                f"trace did not complete within {max_cycles} cycles "
                f"({engine.in_flight} messages still in flight)"
            )
        engine.step()
    sample = engine.end_sample()

    latencies = [latency for latency, _ in sample.deliveries]
    makespan = engine.cycle
    utilization = (
        sample.flits_moved / (makespan * engine.topology.num_links)
        if makespan
        else 0.0
    )
    return TraceResult(
        algorithm=engine.algorithm.name,
        events=len(trace),
        makespan=makespan,
        messages_delivered=sample.delivered,
        average_latency=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        max_latency=max(latencies) if latencies else 0,
        achieved_utilization=utilization,
    )


def compare_algorithms(
    config: SimulationConfig,
    trace: MessageTrace,
    algorithms: Iterable[str],
) -> Dict[str, TraceResult]:
    """Replay the same trace under several routing algorithms."""
    import dataclasses

    results = {}
    for name in algorithms:
        results[name] = run_trace(
            dataclasses.replace(config, algorithm=name), trace
        )
    return results


__all__ = ["TraceResult", "compare_algorithms", "run_trace"]
