"""Run one simulation point to convergence (paper Section 3 methodology).

The schedule: warm up, then alternate sampling periods and gaps.  Fresh
random streams are installed before each sample, statistics gathered during
samples are checked against the dual convergence criteria, and the run
stops at convergence or at the sample cap.
"""

from __future__ import annotations

from typing import List, Optional

from repro.routing.base import RoutingAlgorithm
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine
from repro.stats.convergence import ConvergenceChecker
from repro.stats.counters import SampleRecord
from repro.stats.summary import SimulationResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern


def run_point(
    config: SimulationConfig,
    topology: Optional[Topology] = None,
    algorithm: Optional[RoutingAlgorithm] = None,
    traffic: Optional[TrafficPattern] = None,
    engine: Optional[Engine] = None,
) -> SimulationResult:
    """Simulate one configuration until converged (or the sample cap).

    Pre-built topology/algorithm/traffic objects may be supplied to avoid
    reconstruction cost inside sweeps; they must be mutually consistent.
    """
    if engine is None:
        engine = Engine(config, topology, algorithm, traffic)
    checker = ConvergenceChecker(
        engine.traffic.hop_class_weights(),
        relative_error=config.relative_error,
        min_samples=config.min_samples,
    )

    engine.run_cycles(config.warmup_cycles)
    engine.fabric.reset_flit_counters()  # VC usage measured post-warmup

    samples: List[SampleRecord] = []
    converged = False
    while True:
        engine.advance_streams()
        engine.start_sample()
        engine.run_cycles(config.sample_cycles)
        samples.append(engine.end_sample())
        if checker.converged(samples):
            converged = True
            break
        if len(samples) >= config.max_samples:
            converged = False
            break
        if config.gap_cycles:
            engine.run_cycles(config.gap_cycles)

    return summarize(config, engine, samples, converged, checker)


def summarize(
    config: SimulationConfig,
    engine: Engine,
    samples: List[SampleRecord],
    converged: bool,
    checker: ConvergenceChecker,
) -> SimulationResult:
    """Fold the collected samples into a :class:`SimulationResult`."""
    estimate = checker.estimate(samples)
    sample_cycles = sum(sample.cycles for sample in samples)
    flits_moved = sum(sample.flits_moved for sample in samples)
    generated = sum(sample.generated for sample in samples)
    refused = sum(sample.refused for sample in samples)
    num_links = engine.topology.num_links
    message_length = config.message_length

    delivered = 0
    total_hops = 0
    total_wait = 0
    pooled_latencies = []
    for sample in samples:
        delivered += sample.delivered
        for latency, hops in sample.deliveries:
            total_hops += hops
            total_wait += latency - (message_length + hops - 1)
            pooled_latencies.append(latency)

    achieved = (
        flits_moved / (sample_cycles * num_links) if sample_cycles else 0.0
    )
    delivered_throughput = (
        total_hops * message_length / (sample_cycles * num_links)
        if sample_cycles
        else 0.0
    )

    percentiles: dict = {}
    if pooled_latencies:
        pooled_latencies.sort()
        last = len(pooled_latencies) - 1
        for mark in (50, 95, 99):
            percentiles[mark] = float(
                pooled_latencies[min(last, (last * mark) // 100)]
            )

    vc_usage = [0] * engine.fabric.num_vcs
    for channel in engine.fabric.channels:
        for vc in channel.vcs:
            vc_usage[vc.vc_class] += vc.flits_carried_total

    return SimulationResult(
        algorithm=engine.algorithm.name,
        traffic=engine.traffic.name,
        offered_load=config.offered_load,
        injection_rate=engine.injection_rate,
        average_latency=estimate.mean,
        latency_error_bound=estimate.error_bound,
        average_wait=(total_wait / delivered) if delivered else 0.0,
        achieved_utilization=achieved,
        delivered_throughput=delivered_throughput,
        samples_used=len(samples),
        converged=converged,
        cycles_simulated=engine.cycle,
        messages_generated=generated,
        messages_delivered=delivered,
        messages_refused=refused,
        latency_percentiles=percentiles,
        hop_class_latency=dict(estimate.stratum_means),
        vc_class_usage=vc_usage,
        notes=f"switching={config.switching}",
    )


__all__ = ["run_point", "summarize"]
