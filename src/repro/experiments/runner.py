"""Run one simulation point to convergence (paper Section 3 methodology).

The schedule: warm up, then alternate sampling periods and gaps.  Fresh
random streams are installed before each sample, statistics gathered during
samples are checked against the dual convergence criteria, and the run
stops at convergence or at the sample cap.
"""

from __future__ import annotations

import dataclasses
import re
from time import perf_counter
from typing import List, Optional, Sequence

from repro.obs.profile import PhaseProfiler
from repro.routing.base import RoutingAlgorithm
from repro.simulator.batch import BatchEngine
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine
from repro.stats.convergence import ConvergenceChecker
from repro.stats.counters import SampleRecord
from repro.stats.metrics import nearest_rank_percentile
from repro.stats.summary import SimulationResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern
from repro.traffic.load import max_offered_load


def run_point(
    config: SimulationConfig,
    topology: Optional[Topology] = None,
    algorithm: Optional[RoutingAlgorithm] = None,
    traffic: Optional[TrafficPattern] = None,
    engine: Optional[Engine] = None,
) -> SimulationResult:
    """Simulate one configuration until converged (or the sample cap).

    Pre-built topology/algorithm/traffic objects may be supplied to avoid
    reconstruction cost inside sweeps; they must be mutually consistent.
    """
    if engine is None:
        engine = Engine(config, topology, algorithm, traffic)
    checker = ConvergenceChecker(
        engine.traffic.hop_class_weights(),
        relative_error=config.relative_error,
        min_samples=config.min_samples,
    )

    observer = engine.observer
    samples: List[SampleRecord] = []
    converged = False
    # Wall-clock accounting for sweep progress reporting: the same
    # accumulator the observer uses for engine phases, here with the
    # runner's own schedule phases.
    timer = PhaseProfiler(("warmup", "sampling", "gap"))
    try:
        # No counter reset after warm-up: VC usage is measured as
        # per-sample snapshot deltas (Engine.start_sample/end_sample), so
        # warm-up and gap-cycle traffic never leaks into the reported
        # statistics.
        t0 = perf_counter()
        engine.run_cycles(config.warmup_cycles)
        timer.add("warmup", perf_counter() - t0)

        while True:
            engine.advance_streams()
            engine.start_sample()
            t0 = perf_counter()
            engine.run_cycles(config.sample_cycles)
            timer.add("sampling", perf_counter() - t0)
            samples.append(engine.end_sample())
            if checker.converged(samples):
                converged = True
                break
            if len(samples) >= config.max_samples:
                converged = False
                break
            if config.gap_cycles:
                t0 = perf_counter()
                engine.run_cycles(config.gap_cycles)
                timer.add("gap", perf_counter() - t0)
    finally:
        # Export even when the run dies (the trace of a deadlocked run,
        # ending in its deadlock event, is the most valuable one).
        if observer is not None and observer.config.export_dir is not None:
            observer.export(prefix=obs_export_prefix(config))

    result = summarize(config, engine, samples, converged, checker)
    result.wall_seconds = round(timer.total_seconds(), 4)
    if observer is not None:
        result.obs_metrics = observer.metrics_summary()
    return result


def obs_export_prefix(config: SimulationConfig) -> str:
    """Filesystem-safe artifact prefix for one simulation point."""
    return re.sub(r"[^A-Za-z0-9._^-]+", "_", config.label()).strip("_")


def run_batch(
    config: SimulationConfig,
    seeds: Sequence[int],
    topology: Optional[Topology] = None,
    algorithm: Optional[RoutingAlgorithm] = None,
    traffic: Optional[TrafficPattern] = None,
) -> List[SimulationResult]:
    """Simulate one configuration for many seeds in vectorized lockstep.

    Returns one :class:`SimulationResult` per seed, in seed order, each
    bit-identical to ``run_point(replace(config, seed=s))`` (the
    fingerprint and cross-backend tests pin this).  Every lane follows
    the object runner's schedule — warm-up, then sampling periods with
    fresh streams and optional gaps — against its own convergence
    checker; a lane that converges (or hits the sample cap) is frozen
    while the rest continue, so mixed convergence horizons cost no
    redundant simulation.

    ``wall_seconds`` is the batch's total wall clock divided evenly
    across the lanes (lockstep execution has no per-lane clock).

    Raises :class:`~repro.util.errors.DeadlockError` if any lane's
    watchdog trips, like the object runner does for its single seed.
    """
    engine = BatchEngine(config, seeds, topology, algorithm, traffic)
    weights = engine.traffic.hop_class_weights()
    checkers = [
        ConvergenceChecker(
            weights,
            relative_error=config.relative_error,
            min_samples=config.min_samples,
        )
        for _ in seeds
    ]
    samples: List[List[SampleRecord]] = [[] for _ in seeds]
    converged: List[bool] = [False] * len(seeds)
    finished: List[bool] = [False] * len(seeds)

    def check_deadlock() -> None:
        errors = engine.lane_errors()
        if errors:
            raise errors[min(errors)]

    t0 = perf_counter()
    engine.run_cycles(config.warmup_cycles)
    check_deadlock()
    while engine.has_running_lanes:
        active = engine.running_lane_indices
        for index in active:
            engine.advance_streams(index)
            engine.start_sample(index)
        engine.run_cycles(config.sample_cycles)
        check_deadlock()
        still_running = set(engine.running_lane_indices)
        for index in active:
            if index not in still_running:
                continue  # deadlocked mid-sample (caught above)
            samples[index].append(engine.end_sample(index))
            if checkers[index].converged(samples[index]):
                converged[index] = True
                finished[index] = True
                engine.stop_lane(index)
            elif len(samples[index]) >= config.max_samples:
                finished[index] = True
                engine.stop_lane(index)
        if engine.has_running_lanes and config.gap_cycles:
            engine.run_cycles(config.gap_cycles)
            check_deadlock()
    wall_share = round((perf_counter() - t0) / max(len(seeds), 1), 4)

    results: List[SimulationResult] = []
    for index, seed in enumerate(seeds):
        assert finished[index], "lane ended without sampling to a verdict"
        result = summarize_components(
            dataclasses.replace(config, seed=seed),
            samples[index],
            converged[index],
            checkers[index],
            topology=engine.topology,
            algorithm_name=engine.algorithm.name,
            traffic=engine.traffic,
            injection_rate=engine.injection_rate,
            num_vc_classes=engine.algorithm.num_virtual_channels,
            cycles_simulated=engine.lanes[index].cycle,
        )
        result.wall_seconds = wall_share
        results.append(result)
    return results


def summarize(
    config: SimulationConfig,
    engine: Engine,
    samples: List[SampleRecord],
    converged: bool,
    checker: ConvergenceChecker,
) -> SimulationResult:
    """Fold the collected samples into a :class:`SimulationResult`."""
    return summarize_components(
        config,
        samples,
        converged,
        checker,
        topology=engine.topology,
        algorithm_name=engine.algorithm.name,
        traffic=engine.traffic,
        injection_rate=engine.injection_rate,
        num_vc_classes=engine.fabric.num_vcs,
        cycles_simulated=engine.cycle,
    )


def summarize_components(
    config: SimulationConfig,
    samples: List[SampleRecord],
    converged: bool,
    checker: ConvergenceChecker,
    *,
    topology: Topology,
    algorithm_name: str,
    traffic: TrafficPattern,
    injection_rate: float,
    num_vc_classes: int,
    cycles_simulated: int,
) -> SimulationResult:
    """Backend-independent core of :func:`summarize`.

    Takes the simulation components directly instead of an
    :class:`Engine`, so the batch backend (which holds one shared
    topology/algorithm/traffic for many lanes) can summarize each lane
    through the exact same statistics code as the object backend.
    """
    estimate = checker.estimate(samples)
    sample_cycles = sum(sample.cycles for sample in samples)
    flits_moved = sum(sample.flits_moved for sample in samples)
    generated = sum(sample.generated for sample in samples)
    refused = sum(sample.refused for sample in samples)
    num_links = topology.num_links
    message_length = config.message_length

    delivered = 0
    total_hops = 0
    total_wait = 0
    pooled_latencies = []
    for sample in samples:
        delivered += sample.delivered
        for latency, hops in sample.deliveries:
            total_hops += hops
            total_wait += latency - (message_length + hops - 1)
            pooled_latencies.append(latency)

    achieved = (
        flits_moved / (sample_cycles * num_links) if sample_cycles else 0.0
    )
    delivered_throughput = (
        total_hops * message_length / (sample_cycles * num_links)
        if sample_cycles
        else 0.0
    )

    percentiles: dict = {}
    if pooled_latencies:
        pooled_latencies.sort()
        for mark in (50, 95, 99):
            percentiles[mark] = nearest_rank_percentile(
                pooled_latencies, mark
            )

    # VC usage over the sampling windows only, so the load-balance
    # fractions share a denominator with flits_moved (gap-cycle flits
    # would otherwise inflate the per-class counts but not the
    # throughput they are compared against).
    vc_usage = [0] * num_vc_classes
    for sample in samples:
        for vc_class, count in enumerate(sample.vc_usage):
            vc_usage[vc_class] += count

    # The injection rate is a per-cycle probability capped at 1.0, so
    # requested loads past the sources' generation capacity are not
    # actually offered; label the point with the load that was.
    capacity = max_offered_load(
        topology, message_length, traffic.mean_distance()
    )
    actual_load = min(config.offered_load, capacity)
    notes = f"switching={config.switching}"
    if actual_load < config.offered_load:
        notes += (
            f"; offered_load clamped to {actual_load:.4f}"
            f" (requested {config.offered_load:g} exceeds the"
            f" 1 msg/node/cycle injection capacity)"
        )

    return SimulationResult(
        algorithm=algorithm_name,
        traffic=traffic.name,
        offered_load=config.offered_load,
        injection_rate=injection_rate,
        average_latency=estimate.mean,
        latency_error_bound=estimate.error_bound,
        average_wait=(total_wait / delivered) if delivered else 0.0,
        achieved_utilization=achieved,
        delivered_throughput=delivered_throughput,
        samples_used=len(samples),
        converged=converged,
        cycles_simulated=cycles_simulated,
        messages_generated=generated,
        messages_delivered=delivered,
        messages_refused=refused,
        latency_percentiles=percentiles,
        hop_class_latency=dict(estimate.stratum_means),
        vc_class_usage=vc_usage,
        offered_load_actual=actual_load,
        notes=notes,
    )


__all__ = [
    "obs_export_prefix",
    "run_batch",
    "run_point",
    "summarize",
    "summarize_components",
]
