"""Virtual channels and their flit buffers.

Each physical channel carries several virtual channels; each virtual
channel owns a small flit buffer located at the *downstream* router.  A
virtual channel is reserved by a message's head flit and held until the
tail flit has drained out of its buffer — the defining resource discipline
of wormhole routing.

Cycle semantics are *snapshot-based* so that results do not depend on the
order channels are scanned within a cycle: a flit may leave a buffer only
if it was already there at the start of the cycle, and may enter only if a
slot was free at the start of the cycle.  Because a buffer receives at most
one flit per cycle (its own link's bandwidth) and sends at most one (the
downstream link's), the start-of-cycle state is recoverable from two
timestamps instead of a per-cycle reset sweep.  With the default two-flit
buffers this reproduces ideal full-rate wormhole pipelining: a contiguous
worm advances one flit per channel per cycle.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.message import Message
    from repro.network.physical_channel import PhysicalChannel
    from repro.topology.base import Link


class VirtualChannel:
    """One virtual channel: reservation state plus flit-buffer counters."""

    __slots__ = (
        "link",
        "vc_class",
        "capacity",
        "owner",
        "occupancy",
        "flits_in",
        "flits_out",
        "upstream",
        "downstream",
        "last_arrival_cycle",
        "last_departure_cycle",
        "flits_carried_total",
        "channel",
        "waiters",
    )

    def __init__(self, link: "Link", vc_class: int, capacity: int) -> None:
        self.link = link
        self.vc_class = vc_class
        self.capacity = capacity
        #: Message currently holding the channel, or None when free.
        self.owner: Optional["Message"] = None
        #: Flits of the owner currently in this buffer.
        self.occupancy = 0
        #: Cumulative flits of the owner that have entered the buffer.
        self.flits_in = 0
        #: Cumulative flits of the owner that have left the buffer.
        self.flits_out = 0
        #: Where this channel's flits come from: the owner's previous
        #: virtual channel, or None when fed directly by the source node.
        self.upstream: Optional["VirtualChannel"] = None
        #: Where the owner's flits go next: the owner's *following* virtual
        #: channel, or None while this one is the worm's front.  Maintained
        #: by reserve/release; the activity-tracked scheduler follows it to
        #: re-arm the consumer of a buffer that just gained a flit.
        self.downstream: Optional["VirtualChannel"] = None
        self.last_arrival_cycle = -1
        self.last_departure_cycle = -1
        #: Lifetime flit count, for virtual-channel load-balance studies.
        self.flits_carried_total = 0
        #: Owning physical channel (set by PhysicalChannel.__init__), so
        #: reservation bookkeeping stays correct no matter who reserves.
        self.channel: Optional["PhysicalChannel"] = None
        #: Routing requests parked on this channel by the activity-tracked
        #: scheduler: (park_epoch, message) pairs re-queued on release.
        #: None whenever nothing waits (the common case).
        self.waiters: Optional[List[Tuple[int, "Message"]]] = None

    # -- reservation ---------------------------------------------------------

    @property
    def free(self) -> bool:
        return self.owner is None

    def reserve(self, message: "Message") -> None:
        assert self.owner is None, "reserving an occupied virtual channel"
        self.owner = message
        self.occupancy = 0
        self.flits_in = 0
        self.flits_out = 0
        self.last_arrival_cycle = -1
        self.last_departure_cycle = -1
        upstream = message.path[-1] if message.path else None
        self.upstream = upstream
        self.downstream = None
        if upstream is not None:
            upstream.downstream = self
        channel = self.channel
        if channel is not None:
            insort(channel.owned_idx, self.vc_class)
            channel.owned_count += 1

    def release(self) -> None:
        assert self.occupancy == 0, "releasing a non-empty virtual channel"
        self.owner = None
        self.upstream = None
        self.downstream = None
        channel = self.channel
        if channel is not None:
            channel.owned_idx.remove(self.vc_class)
            channel.owned_count -= 1

    # -- snapshot-based flit movement ---------------------------------------

    def settled_flits(self, cycle: int) -> int:
        """Flits that were already in the buffer at the start of *cycle*."""
        settled = self.occupancy
        if self.last_arrival_cycle == cycle:
            settled -= 1
        return settled

    def had_space(self, cycle: int) -> bool:
        """Was a buffer slot free at the start of *cycle*?"""
        occupancy_at_start = self.occupancy
        if self.last_arrival_cycle == cycle:
            occupancy_at_start -= 1
        if self.last_departure_cycle == cycle:
            occupancy_at_start += 1
        return occupancy_at_start < self.capacity

    def receive_flit(self, cycle: int) -> None:
        """Move one flit across the physical link into this buffer."""
        upstream = self.upstream
        if upstream is None:
            self.owner.flits_to_inject -= 1
        else:
            upstream.occupancy -= 1
            upstream.flits_out += 1
            upstream.last_departure_cycle = cycle
        self.occupancy += 1
        self.flits_in += 1
        self.last_arrival_cycle = cycle
        self.flits_carried_total += 1

    @property
    def drained(self) -> bool:
        """True when the owner's tail flit has left this buffer."""
        return (
            self.owner is not None
            and self.occupancy == 0
            and self.flits_out >= self.owner.length
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        owner = self.owner.msg_id if self.owner else None
        return (
            f"VC(link={self.link.index}, class={self.vc_class}, "
            f"owner={owner}, occ={self.occupancy}/{self.capacity})"
        )


__all__ = ["VirtualChannel"]
