"""The fabric: every physical/virtual channel of a network, instantiated.

Pure state container — the per-cycle behaviour lives in
:mod:`repro.simulator.engine`.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.network.physical_channel import PhysicalChannel
from repro.network.virtual_channel import VirtualChannel
from repro.topology.base import Topology
from repro.util.validation import require_positive


class Fabric:
    """All channel state for one (topology, virtual-channel count) pair."""

    def __init__(
        self,
        topology: Topology,
        num_vcs: int,
        vc_capacity: int,
    ) -> None:
        require_positive(num_vcs, "num_vcs")
        require_positive(vc_capacity, "vc_capacity")
        self.topology = topology
        self.num_vcs = num_vcs
        self.vc_capacity = vc_capacity
        self.channels: List[PhysicalChannel] = [
            PhysicalChannel(link, num_vcs, vc_capacity)
            for link in topology.links
        ]

    def channel(self, link_index: int) -> PhysicalChannel:
        return self.channels[link_index]

    def virtual_channels(self) -> Iterator[VirtualChannel]:
        """Iterate every virtual channel in the fabric."""
        for channel in self.channels:
            yield from channel.vcs

    def total_flits_moved(self) -> int:
        """Lifetime flit-crossings summed over all physical channels."""
        return sum(channel.flits_moved for channel in self.channels)

    def vc_class_totals(self) -> List[int]:
        """Flits carried per virtual-channel class, summed over channels."""
        totals = [0] * self.num_vcs
        for channel in self.channels:
            for vc in channel.vcs:
                totals[vc.vc_class] += vc.flits_carried_total
        return totals

    def channel_occupancies(self) -> List[int]:
        """Currently buffered flits per physical channel (by link index)."""
        return [
            sum(vc.occupancy for vc in channel.vcs)
            for channel in self.channels
        ]

    def vc_class_occupancies(self) -> List[int]:
        """Currently buffered flits per virtual-channel class."""
        totals = [0] * self.num_vcs
        for channel in self.channels:
            for vc in channel.vcs:
                totals[vc.vc_class] += vc.occupancy
        return totals

    def arm_all(self, cycle: int) -> None:
        """Arm every channel for *cycle* (activity-tracking reset).

        The event-driven scheduler polls only channels whose
        ``armed_cycle`` is current; stamping the whole fabric forces one
        full re-examination, which is how an engine (re)enters the
        activity-tracked mode from an arbitrary fabric state.
        """
        for channel in self.channels:
            if channel.armed_cycle < cycle:
                channel.armed_cycle = cycle

    def parked_waiters(self) -> int:
        """Routing requests currently parked on virtual channels.

        Counts waiter-list entries (stale epochs included) — an
        introspection aid for tests and debugging of the activity-tracked
        scheduler, not a statistic.
        """
        return sum(
            len(vc.waiters)
            for vc in self.virtual_channels()
            if vc.waiters is not None
        )

    def reset_flit_counters(self) -> None:
        """Zero the utilization counters (used between sampling periods)."""
        for channel in self.channels:
            channel.flits_moved = 0
            for vc in channel.vcs:
                vc.flits_carried_total = 0

    def occupied_flits(self) -> int:
        """Flits currently buffered anywhere in the network."""
        return sum(vc.occupancy for vc in self.virtual_channels())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Fabric({self.topology!r}, num_vcs={self.num_vcs}, "
            f"vc_capacity={self.vc_capacity})"
        )


__all__ = ["Fabric"]
