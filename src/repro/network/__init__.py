"""Runtime network state for the flit-level simulator.

The :mod:`repro.topology` package describes the static graph; this package
holds the mutable per-cycle state: messages (worms), virtual channels with
their flit buffers, physical channels with their time-multiplexers, and the
fabric that ties them together.
"""

from repro.network.fabric import Fabric
from repro.network.message import Message
from repro.network.physical_channel import PhysicalChannel
from repro.network.virtual_channel import VirtualChannel

__all__ = ["Fabric", "Message", "PhysicalChannel", "VirtualChannel"]
