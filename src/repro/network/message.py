"""Messages (worms) and their life cycle.

A message of ``length`` flits is created at a source node, waits in the
source's injection queue, then snakes through the network occupying a
contiguous chain of virtual channels.  Flits are modelled by *counters*
rather than individual objects: each virtual channel in the chain knows how
many flits it currently buffers and how many have already passed through
it.  This is exact for wormhole routing — flits of one message are
indistinguishable and always move in FIFO order — and makes the simulator
several times faster than a per-flit object model.

Life-cycle timestamps (all in cycles):

* ``created_at`` — generation time; the latency clock starts here, matching
  the paper's latency definition ``w + (m_l + d - 1) * f_t`` where ``w``
  includes all queueing at the source.
* ``delivered_at`` — the cycle the tail flit is consumed at the destination.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Hashable, List, Optional, Tuple

from repro.network.virtual_channel import VirtualChannel


class Message:
    """One worm in flight (or waiting to enter the network)."""

    __slots__ = (
        "msg_id",
        "src",
        "dst",
        "length",
        "distance",
        "route_state",
        "msg_class",
        "created_at",
        "delivered_at",
        "flits_to_inject",
        "flits_ejected",
        "path",
        "cached_candidates",
        "route_seq",
        "parked",
        "park_epoch",
    )

    def __init__(
        self,
        msg_id: int,
        src: int,
        dst: int,
        length: int,
        distance: int,
        route_state: Any,
        msg_class: Hashable,
        created_at: int,
    ) -> None:
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        self.length = length
        self.distance = distance
        self.route_state = route_state
        self.msg_class = msg_class
        self.created_at = created_at
        self.delivered_at: Optional[int] = None
        # Flits still sitting at the source node (the whole message at
        # creation time; they leave one per cycle over the first link).
        self.flits_to_inject = length
        self.flits_ejected = 0
        # Virtual channels currently held, oldest first.  The head flit is
        # in (or just entering) path[-1]'s buffer.
        self.path: Deque[VirtualChannel] = deque()
        # Route candidates are invariant while the head is blocked at one
        # node, so they are computed once per node and cached here.
        self.cached_candidates: Optional[List[Tuple[Any, int]]] = None
        # Activity-tracked scheduler bookkeeping: the FIFO sequence number
        # of the message's current routing request (assigned per enqueue,
        # kept while the request is blocked so service order matches the
        # scanning scheduler's queue discipline), and the parked flag plus
        # its epoch counter, which invalidates stale waiter-list entries.
        self.route_seq = -1
        self.parked = False
        self.park_epoch = 0

    # -- derived position ----------------------------------------------------

    @property
    def head_node(self) -> int:
        """Node the head flit currently occupies (source until first hop)."""
        if not self.path:
            return self.src
        return self.path[-1].link.dst

    @property
    def head_arrived(self) -> bool:
        """True once the head flit sits in the buffer of the newest VC."""
        return bool(self.path) and self.path[-1].flits_in > 0

    @property
    def hops_allocated(self) -> int:
        """Hops committed so far (including not-yet-traversed head VC)."""
        return len(self.path)

    @property
    def delivered(self) -> bool:
        return self.flits_ejected >= self.length

    @property
    def injection_complete(self) -> bool:
        """True once every flit has left the source node."""
        return self.flits_to_inject == 0

    @property
    def latency(self) -> int:
        """Cycles from creation to tail delivery (delivered messages only)."""
        if self.delivered_at is None:
            raise ValueError(
                f"message {self.msg_id} has not been delivered yet"
            )
        return self.delivered_at - self.created_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message#{self.msg_id}({self.src}->{self.dst}, "
            f"len={self.length}, at={self.head_node}, "
            f"inject={self.flits_to_inject}, eject={self.flits_ejected})"
        )


__all__ = ["Message"]
