"""Physical channels: flit-wide links time-multiplexed among virtual channels.

The paper's model: multiple virtual channels share one physical channel's
bandwidth in a time-multiplexed manner with a flit transfer time of one
cycle (``f_t = 1``).  Each cycle a physical channel may move at most one
flit, chosen round-robin among the virtual channels that are *ready*:
reserved, with a settled flit available upstream (present since the start
of the cycle) and a buffer slot that was free at the start of the cycle.

``transmit`` is the single hottest function of the whole simulator (it
runs once per active link per fixpoint pass per cycle), so its scan only
visits the *reserved* virtual channels: ``owned_idx`` is a sorted index
list maintained by :meth:`VirtualChannel.reserve`/``release``, and the
round-robin start position is located in it with one bisect.  For the
hop schemes (16+ virtual channels of which a handful are reserved at any
time) this removes almost the entire scan; the semantics are bit-identical
to scanning every index and skipping the free ones (the test suite pins
the engine's flit schedule against golden traces).

The channel also carries the activity-tracked scheduler's bookkeeping:
``armed_cycle`` stamps the latest cycle at which this channel may possibly
move a flit (maintained by the engine's event hooks: allocation, ejection,
arrivals, departures), and ``active_seq`` is the channel's position in the
engine's insertion-ordered active set, which the event-driven transmit
phase uses to reproduce the full scan's polling order exactly.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional

from repro.network.virtual_channel import VirtualChannel
from repro.topology.base import Link


class PhysicalChannel:
    """Runtime state of one unidirectional link."""

    __slots__ = (
        "link",
        "vcs",
        "num_vcs",
        "_rr_next",
        "owned_idx",
        "owned_count",
        "flits_moved",
        "last_transmit_cycle",
        "retry_hint",
        "armed_cycle",
        "active_seq",
        "queue_cycle",
    )

    def __init__(self, link: Link, num_vcs: int, vc_capacity: int) -> None:
        self.link = link
        self.vcs: List[VirtualChannel] = [
            VirtualChannel(link, vc_class, vc_capacity)
            for vc_class in range(num_vcs)
        ]
        for vc in self.vcs:
            vc.channel = self
        self.num_vcs = num_vcs
        self._rr_next = 0  # round-robin scan start
        #: Sorted indices of the currently reserved virtual channels,
        #: maintained by VirtualChannel.reserve/release.
        self.owned_idx: List[int] = []
        #: Virtual channels currently reserved (drives the active-link set).
        self.owned_count = 0
        #: Lifetime flits moved, for channel-utilization measurement.
        self.flits_moved = 0
        #: Enforces the one-flit-per-cycle bandwidth across retry passes.
        self.last_transmit_cycle = -1
        #: Set by a failed transmit: True when some virtual channel was
        #: blocked *only* on buffer space (or SAF packet assembly) — the
        #: two conditions that can still change later in the same cycle.
        #: The engine's ideal-flow-control fixpoint re-polls only channels
        #: with this hint; all other failures are final for the cycle
        #: because settled-flit counts never increase mid-cycle.
        self.retry_hint = False
        #: Latest cycle at which this channel might move a flit.  The
        #: activity-tracked scheduler polls a channel at cycle c only when
        #: ``armed_cycle >= c``; the engine's event hooks bump the stamp
        #: whenever one of the channel's blocking conditions changes.
        self.armed_cycle = -1
        #: Position in the engine's insertion-ordered active set (assigned
        #: when the channel gains its first reserved virtual channel).
        self.active_seq = -1
        #: Last cycle this channel was queued for a transmit poll.  The
        #: activity-tracked scheduler stamps it when the channel enters a
        #: poll list, so a mid-cycle event never queues a channel that is
        #: already scheduled (or already polled) this cycle.
        self.queue_cycle = -1

    def vc(self, vc_class: int) -> VirtualChannel:
        return self.vcs[vc_class]

    def __lt__(self, other: "PhysicalChannel") -> bool:
        # Heap ordering for the activity-tracked transmit phase: channels
        # are polled in ascending active-set insertion order, matching
        # the full scan's iteration order over the active set.
        return self.active_seq < other.active_seq

    def transmit(
        self,
        cycle: int,
        store_and_forward: bool,
        ideal: bool,
        highest_class_first: bool = False,
    ) -> Optional[VirtualChannel]:
        """Move one flit on the highest-priority ready VC, if any.

        In store-and-forward mode a flit may only cross once its entire
        packet is assembled upstream (at the source node, or fully received
        into the upstream buffer); this single extra condition turns the
        wormhole engine into a SAF engine.

        *ideal* selects the flow-control model for buffer space: under
        ideal flow control a flit may enter a slot freed earlier in the
        same cycle (hardware whose flits shift simultaneously on the clock
        edge), so a contiguous worm streams at full rate through one-flit
        buffers.  Under conservative flow control only slots free at the
        start of the cycle count.  Either way, only *settled* flits —
        present since the start of the cycle — may move, so no flit ever
        crosses two links in one cycle.

        *highest_class_first* replaces the fair round-robin multiplexer
        with a strict priority scan from the top virtual-channel class
        down.  For hop schemes the class encodes hops travelled, so this
        gives channel bandwidth to the most-progressed worms first — an
        arbitration-level reading of the paper's "priority information"
        (see ``benchmarks/bench_ablation_arbitration.py``).
        """
        if self.last_transmit_cycle == cycle:
            return None
        vcs = self.vcs
        owned = self.owned_idx
        if highest_class_first:
            order = reversed(owned)
        else:
            start = bisect_left(owned, self._rr_next)
            if start == 0 or start == len(owned):
                order = owned
            else:
                order = owned[start:] + owned[:start]
        retry_hint = False
        for idx in order:
            vc = vcs[idx]
            owner = vc.owner
            if owner is None or vc.flits_in >= owner.length:
                # Free, or the whole worm already passed through: once the
                # tail is in, vc.upstream may be reused by another message,
                # so this guard must come before any upstream access.
                continue
            occupancy = vc.occupancy
            if ideal:
                if occupancy >= vc.capacity:
                    retry_hint = True  # space may free later this cycle
                    continue
            elif not vc.had_space(cycle):
                continue
            upstream = vc.upstream
            if upstream is None:
                if owner.flits_to_inject <= 0:
                    continue
                owner.flits_to_inject -= 1
            else:
                # settled_flits(cycle) <= 0, inlined.
                if (
                    upstream.occupancy
                    - (upstream.last_arrival_cycle == cycle)
                    <= 0
                ):
                    continue
                if (
                    store_and_forward
                    and upstream.flits_in < owner.length
                ):
                    retry_hint = True  # packet may finish assembling
                    continue
                upstream.occupancy -= 1
                upstream.flits_out += 1
                upstream.last_departure_cycle = cycle
            # receive_flit(cycle), inlined (minus the upstream half above).
            vc.occupancy = occupancy + 1
            vc.flits_in += 1
            vc.last_arrival_cycle = cycle
            vc.flits_carried_total += 1
            self.flits_moved += 1
            self.last_transmit_cycle = cycle
            if not highest_class_first:
                next_idx = idx + 1
                self._rr_next = 0 if next_idx == self.num_vcs else next_idx
            return vc
        self.retry_hint = retry_hint
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PhysicalChannel({self.link!r}, vcs={len(self.vcs)}, "
            f"owned={self.owned_count})"
        )


__all__ = ["PhysicalChannel"]
