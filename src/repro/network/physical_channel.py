"""Physical channels: flit-wide links time-multiplexed among virtual channels.

The paper's model: multiple virtual channels share one physical channel's
bandwidth in a time-multiplexed manner with a flit transfer time of one
cycle (``f_t = 1``).  Each cycle a physical channel may move at most one
flit, chosen round-robin among the virtual channels that are *ready*:
reserved, with a settled flit available upstream (present since the start
of the cycle) and a buffer slot that was free at the start of the cycle.
"""

from __future__ import annotations

from typing import List, Optional

from repro.network.virtual_channel import VirtualChannel
from repro.topology.base import Link


class PhysicalChannel:
    """Runtime state of one unidirectional link."""

    __slots__ = (
        "link",
        "vcs",
        "_rr_next",
        "owned_count",
        "flits_moved",
        "last_transmit_cycle",
    )

    def __init__(self, link: Link, num_vcs: int, vc_capacity: int) -> None:
        self.link = link
        self.vcs: List[VirtualChannel] = [
            VirtualChannel(link, vc_class, vc_capacity)
            for vc_class in range(num_vcs)
        ]
        self._rr_next = 0  # round-robin scan start
        #: Virtual channels currently reserved (drives the active-link set).
        self.owned_count = 0
        #: Lifetime flits moved, for channel-utilization measurement.
        self.flits_moved = 0
        #: Enforces the one-flit-per-cycle bandwidth across retry passes.
        self.last_transmit_cycle = -1

    def vc(self, vc_class: int) -> VirtualChannel:
        return self.vcs[vc_class]

    def transmit(
        self,
        cycle: int,
        store_and_forward: bool,
        ideal: bool,
        highest_class_first: bool = False,
    ) -> Optional[VirtualChannel]:
        """Move one flit on the highest-priority ready VC, if any.

        In store-and-forward mode a flit may only cross once its entire
        packet is assembled upstream (at the source node, or fully received
        into the upstream buffer); this single extra condition turns the
        wormhole engine into a SAF engine.

        *ideal* selects the flow-control model for buffer space: under
        ideal flow control a flit may enter a slot freed earlier in the
        same cycle (hardware whose flits shift simultaneously on the clock
        edge), so a contiguous worm streams at full rate through one-flit
        buffers.  Under conservative flow control only slots free at the
        start of the cycle count.  Either way, only *settled* flits —
        present since the start of the cycle — may move, so no flit ever
        crosses two links in one cycle.

        *highest_class_first* replaces the fair round-robin multiplexer
        with a strict priority scan from the top virtual-channel class
        down.  For hop schemes the class encodes hops travelled, so this
        gives channel bandwidth to the most-progressed worms first — an
        arbitration-level reading of the paper's "priority information"
        (see ``benchmarks/bench_ablation_arbitration.py``).
        """
        if self.last_transmit_cycle == cycle:
            return None
        vcs = self.vcs
        count = len(vcs)
        start = count - 1 if highest_class_first else self._rr_next
        for offset in range(count):
            vc = vcs[(start - offset) if highest_class_first
                     else (start + offset) % count]
            owner = vc.owner
            if owner is None or vc.flits_in >= owner.length:
                # Free, or the whole worm already passed through: once the
                # tail is in, vc.upstream may be reused by another message,
                # so this guard must come before any upstream access.
                continue
            if ideal:
                if vc.occupancy >= vc.capacity:
                    continue
            elif not vc.had_space(cycle):
                continue
            upstream = vc.upstream
            if upstream is None:
                if owner.flits_to_inject <= 0:
                    continue
            else:
                if upstream.settled_flits(cycle) <= 0:
                    continue
                if store_and_forward and upstream.flits_in < owner.length:
                    continue
            vc.receive_flit(cycle)
            self.flits_moved += 1
            self.last_transmit_cycle = cycle
            if not highest_class_first:
                self._rr_next = (start + offset + 1) % count
            return vc
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PhysicalChannel({self.link!r}, vcs={len(self.vcs)}, "
            f"owned={self.owned_count})"
        )


__all__ = ["PhysicalChannel"]
