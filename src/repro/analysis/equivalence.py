"""Statistical equivalence of the batch backend's identity modes.

The relaxed identity mode (:mod:`repro.simulator.batch`) replaces the
strict mode's bit-identical scalar rng/routing seams with batched numpy
draws and table-driven kernels.  Individual runs are *not* bit-identical
to strict runs — the draw order differs — so relaxed mode is validated
distributionally: over many seeds, every reported metric must agree
between the two modes up to sampling noise.

The dual criterion (mirroring the convergence checker's spirit): a
metric is discrepant only when the mode means differ *practically* AND
*statistically* —

``|mean_r - mean_s|  >  rel_tol * max(|mean_s|, floor)``   (practical)
``|mean_r - mean_s|  >  z * sqrt(var_s/n + var_r/n)``      (statistical)

A difference within ``rel_tol`` is immaterial regardless of confidence;
a difference within ``z`` standard errors (Welch) is indistinguishable
from seed noise regardless of size.  Equivalence fails only when both
thresholds are exceeded, so the check neither flags converged-but-tiny
offsets nor rewards noisy small-n runs.

Compared metrics per point: mean latency, mean wait, achieved
utilization, delivered throughput, delivered-message count, and the
per-VC-class usage shares (the paper's load-balance quantity).  Both
modes run the exact same seeds and the exact same sampling schedule
(``min_samples == max_samples``), so the paired distributions differ
only by the identity mode.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.experiments.runner import run_batch
from repro.simulator.config import SimulationConfig
from repro.stats.summary import SimulationResult

#: Algorithms x topologies covered by the full suite: every shipped
#: adaptive scheme plus e-cube, on both paper topologies.
SUITE_ALGORITHMS = ("ecube", "2pn", "nbc", "nhop", "nlast", "phop")
SUITE_TOPOLOGIES = ("mesh", "torus")

#: Absolute floor for the practical-tolerance term, so near-zero means
#: (e.g. a VC class carrying ~no flits) do not demand impossible
#: relative precision.
_REL_FLOOR = 1e-9


@dataclasses.dataclass(frozen=True)
class MetricComparison:
    """One metric's strict-vs-relaxed verdict."""

    name: str
    mean_strict: float
    mean_relaxed: float
    #: Welch standard error of the mean difference, sqrt(vs/n + vr/n).
    std_error: float
    rel_diff: float
    passed: bool

    def describe(self) -> str:
        mark = "ok " if self.passed else "FAIL"
        return (
            f"[{mark}] {self.name}: strict={self.mean_strict:.6g} "
            f"relaxed={self.mean_relaxed:.6g} "
            f"rel_diff={self.rel_diff:.3%} se={self.std_error:.3g}"
        )


@dataclasses.dataclass(frozen=True)
class PointReport:
    """Equivalence verdicts for one (algorithm, topology) point."""

    algorithm: str
    topology: str
    offered_load: float
    num_seeds: int
    metrics: List[MetricComparison]

    @property
    def passed(self) -> bool:
        return all(metric.passed for metric in self.metrics)

    @property
    def failures(self) -> List[MetricComparison]:
        return [metric for metric in self.metrics if not metric.passed]


def _mean_var(values: Sequence[float]) -> tuple:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((value - mean) ** 2 for value in values) / (n - 1)
    return mean, var


def compare_metric(
    name: str,
    strict: Sequence[float],
    relaxed: Sequence[float],
    rel_tol: float,
    z: float,
    floor: float = _REL_FLOOR,
) -> MetricComparison:
    """Apply the dual criterion to one metric's per-seed samples."""
    mean_s, var_s = _mean_var(strict)
    mean_r, var_r = _mean_var(relaxed)
    diff = abs(mean_r - mean_s)
    se = math.sqrt(var_s / len(strict) + var_r / len(relaxed))
    practical = diff > rel_tol * max(abs(mean_s), floor)
    statistical = diff > z * se
    scale = max(abs(mean_s), floor)
    return MetricComparison(
        name=name,
        mean_strict=mean_s,
        mean_relaxed=mean_r,
        std_error=se,
        rel_diff=diff / scale,
        passed=not (practical and statistical),
    )


def _point_metrics(
    results: Sequence[SimulationResult],
) -> Dict[str, List[float]]:
    """Per-seed metric samples from one mode's results."""
    metrics: Dict[str, List[float]] = {
        "average_latency": [],
        "average_wait": [],
        "achieved_utilization": [],
        "delivered_throughput": [],
        "messages_delivered": [],
    }
    num_classes = max(
        (len(result.vc_class_usage) for result in results), default=0
    )
    for vc in range(num_classes):
        metrics[f"vc_share_{vc}"] = []
    for result in results:
        metrics["average_latency"].append(result.average_latency)
        metrics["average_wait"].append(result.average_wait)
        metrics["achieved_utilization"].append(
            result.achieved_utilization
        )
        metrics["delivered_throughput"].append(
            result.delivered_throughput
        )
        metrics["messages_delivered"].append(
            float(result.messages_delivered)
        )
        usage = result.vc_class_usage
        total = float(sum(usage)) or 1.0
        for vc in range(num_classes):
            share = usage[vc] / total if vc < len(usage) else 0.0
            metrics[f"vc_share_{vc}"].append(share)
    return metrics


def compare_point(
    config: SimulationConfig,
    seeds: Sequence[int],
    rel_tol: float = 0.05,
    z: float = 3.0,
) -> PointReport:
    """Run one configuration under both identity modes and compare.

    *config* should select ``backend="batch"``; its ``identity`` field
    is overridden per mode.  Both modes run the same seeds in one
    lockstep engine each, on a fixed sampling schedule.
    """
    strict_cfg = replace(config, backend="batch", identity="strict")
    relaxed_cfg = replace(config, backend="batch", identity="relaxed")
    strict_results = run_batch(strict_cfg, seeds)
    relaxed_results = run_batch(relaxed_cfg, seeds)
    strict_metrics = _point_metrics(strict_results)
    relaxed_metrics = _point_metrics(relaxed_results)
    names = sorted(set(strict_metrics) | set(relaxed_metrics))
    comparisons = [
        compare_metric(
            name,
            strict_metrics.get(name, [0.0] * len(seeds)),
            relaxed_metrics.get(name, [0.0] * len(seeds)),
            rel_tol,
            z,
        )
        for name in names
    ]
    return PointReport(
        algorithm=config.algorithm,
        topology=config.topology,
        offered_load=config.offered_load,
        num_seeds=len(seeds),
        metrics=comparisons,
    )


def run_suite(
    algorithms: Iterable[str] = SUITE_ALGORITHMS,
    topologies: Iterable[str] = SUITE_TOPOLOGIES,
    num_seeds: int = 30,
    radix: int = 8,
    offered_load: float = 0.4,
    message_length: int = 16,
    samples: int = 3,
    warmup_cycles: int = 1000,
    sample_cycles: int = 1000,
    rel_tol: float = 0.05,
    z: float = 3.0,
    progress: Optional[Any] = None,
) -> List[PointReport]:
    """Equivalence over the full algorithm x topology grid.

    Conservative flow control throughout (the paper's realistic regime
    and the mode where both engines share the transmit kernel).  The
    sampling schedule is pinned (``min_samples == max_samples``) so both
    modes simulate identical cycle counts.
    """
    seeds = list(range(101, 101 + num_seeds))
    reports: List[PointReport] = []
    for topology in topologies:
        for algorithm in algorithms:
            config = SimulationConfig(
                radix=radix,
                n_dims=2,
                topology=topology,
                algorithm=algorithm,
                flow_control="conservative",
                offered_load=offered_load,
                message_length=message_length,
                warmup_cycles=warmup_cycles,
                sample_cycles=sample_cycles,
                gap_cycles=0,
                min_samples=samples,
                max_samples=samples,
                backend="batch",
            )
            report = compare_point(config, seeds, rel_tol=rel_tol, z=z)
            reports.append(report)
            if progress is not None:
                status = "ok" if report.passed else "FAIL"
                progress(
                    f"{topology}/{algorithm}: {status} "
                    f"({len(report.failures)} discrepant metrics)"
                )
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-equivalence`` console entry point."""
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        prog="repro-equivalence",
        description=(
            "Statistical equivalence of the batch backend's relaxed "
            "identity mode against the strict (bit-identical) mode."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=30,
        help="seeds per mode per point (default 30)",
    )
    parser.add_argument(
        "--algorithms", default=",".join(SUITE_ALGORITHMS),
        help="comma-separated algorithm names",
    )
    parser.add_argument(
        "--topologies", default=",".join(SUITE_TOPOLOGIES),
        help="comma-separated topologies",
    )
    parser.add_argument(
        "--radix", type=int, default=8, help="network radix (default 8)"
    )
    parser.add_argument(
        "--load", type=float, default=0.4,
        help="offered load (default 0.4)",
    )
    parser.add_argument(
        "--rel-tol", type=float, default=0.05,
        help="practical tolerance on relative mean difference",
    )
    parser.add_argument(
        "--z", type=float, default=3.0,
        help="statistical threshold in Welch standard errors",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            "CI preset: 8 seeds, radix 6, short samples, rel-tol 0.15 "
            "— a fast regression tripwire, not a publication check"
        ),
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full report as JSON",
    )
    args = parser.parse_args(argv)

    kwargs: Dict[str, Any] = dict(
        algorithms=[a for a in args.algorithms.split(",") if a],
        topologies=[t for t in args.topologies.split(",") if t],
        num_seeds=args.seeds,
        radix=args.radix,
        offered_load=args.load,
        rel_tol=args.rel_tol,
        z=args.z,
    )
    if args.smoke:
        kwargs.update(
            num_seeds=min(args.seeds, 8),
            radix=6,
            message_length=8,
            samples=2,
            warmup_cycles=500,
            sample_cycles=600,
            rel_tol=max(args.rel_tol, 0.15),
        )

    reports = run_suite(
        progress=lambda line: print(line, flush=True), **kwargs
    )
    failed = [report for report in reports if not report.passed]
    for report in failed:
        print(
            f"\nDiscrepant point {report.topology}/{report.algorithm} "
            f"(load {report.offered_load}, {report.num_seeds} seeds):"
        )
        for metric in report.failures:
            print("  " + metric.describe())
    if args.json:
        payload = [dataclasses.asdict(report) for report in reports]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    total = len(reports)
    print(
        f"\nequivalence: {total - len(failed)}/{total} points passed",
        file=sys.stderr,
    )
    return 1 if failed else 0


__all__ = [
    "MetricComparison",
    "PointReport",
    "SUITE_ALGORITHMS",
    "SUITE_TOPOLOGIES",
    "compare_metric",
    "compare_point",
    "run_suite",
    "main",
]
