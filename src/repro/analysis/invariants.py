"""Machine checks for the algorithms' structural guarantees.

* Lemma 1 (paper Section 2.1): a wormhole algorithm derived from a
  deadlock-free SAF algorithm is deadlock-free when the buffer/channel
  ranks occupied along any path strictly increase —
  :func:`check_rank_monotonicity` exhaustively verifies the increase for a
  hop scheme on a topology.
* Minimality: every candidate hop must reduce the distance to the
  destination — :func:`check_candidates_minimal` walks all reachable
  states.
* :func:`enumerate_paths` lists the link paths an algorithm permits for
  one (src, dst) pair, used to verify full/partial adaptivity claims (a
  fully adaptive algorithm must allow every minimal path).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Hashable, List, Set, Tuple

from repro.routing.base import RoutingAlgorithm
from repro.routing.hop_base import HopClassScheme
from repro.util.errors import ReproError
from repro.util.fingerprint import state_fingerprint


class InvariantViolation(ReproError):
    """An algorithm violated one of its structural guarantees."""


def check_rank_monotonicity(scheme: HopClassScheme) -> int:
    """Verify ranks strictly increase along every reachable hop.

    Walks every (src, dst) pair and every reachable (class, node)
    configuration of *scheme*; raises :class:`InvariantViolation` on the
    first non-increasing rank transition.  Returns the number of
    transitions checked.
    """
    topology = scheme.topology
    checked = 0
    for src in range(topology.num_nodes):
        for dst in range(topology.num_nodes):
            if src == dst:
                continue
            frontier: List[Tuple[int, int]] = [
                (vc_class, src)
                for vc_class in scheme.initial_classes(src, dst)
            ]
            seen: Set[Tuple[int, int]] = set()
            while frontier:
                vc_class, node = frontier.pop()
                if (vc_class, node) in seen or node == dst:
                    continue
                seen.add((vc_class, node))
                next_class = scheme.class_after_hop(vc_class, node)
                if next_class >= scheme.num_virtual_channels:
                    raise InvariantViolation(
                        f"{scheme.name}: class {next_class} exceeds the "
                        f"{scheme.num_virtual_channels} provisioned virtual "
                        f"channels (src={src}, dst={dst}, node={node})"
                    )
                for link in scheme.minimal_links(node, dst):
                    rank_here = scheme.rank(vc_class, node)
                    rank_next = scheme.rank(next_class, link.dst)
                    checked += 1
                    if rank_next <= rank_here:
                        raise InvariantViolation(
                            f"{scheme.name}: rank did not increase on hop "
                            f"{node}->{link.dst} (class {vc_class}->"
                            f"{next_class}, rank {rank_here}->{rank_next})"
                        )
                    frontier.append((next_class, link.dst))
    return checked


def check_candidates_minimal(
    algorithm: RoutingAlgorithm, src: int, dst: int
) -> int:
    """Verify every reachable candidate hop moves strictly closer to *dst*.

    Returns the number of candidates checked; raises
    :class:`InvariantViolation` otherwise.
    """
    topology = algorithm.topology
    checked = 0
    frontier: List[Tuple[Any, int]] = [(algorithm.new_state(src, dst), src)]
    seen: Set[Tuple[Hashable, int]] = set()
    while frontier:
        state, node = frontier.pop()
        marker = (state_fingerprint(state), node)
        if marker in seen or node == dst:
            continue
        seen.add(marker)
        distance = topology.distance(node, dst)
        for link, vc_class in algorithm.candidates(state, node, dst):
            checked += 1
            if topology.distance(link.dst, dst) != distance - 1:
                raise InvariantViolation(
                    f"{algorithm.name}: non-minimal hop {node}->{link.dst} "
                    f"while routing {src}->{dst}"
                )
            next_state = algorithm.advance(
                copy.copy(state), node, link, vc_class
            )
            frontier.append((next_state, link.dst))
    return checked


def enumerate_paths(
    algorithm: RoutingAlgorithm,
    src: int,
    dst: int,
    limit: int = 100000,
) -> List[Tuple[int, ...]]:
    """All node paths the algorithm permits from *src* to *dst*.

    Ignores virtual-channel classes — two routes through the same nodes on
    different channels count once.  *limit* guards against combinatorial
    blow-up on large networks.
    """
    paths: Set[Tuple[int, ...]] = set()
    stack: List[Tuple[Any, Tuple[int, ...]]] = [
        (algorithm.new_state(src, dst), (src,))
    ]
    while stack:
        state, nodes = stack.pop()
        node = nodes[-1]
        if node == dst:
            paths.add(nodes)
            if len(paths) > limit:
                raise InvariantViolation(
                    f"more than {limit} paths for {src}->{dst}"
                )
            continue
        for link, vc_class in algorithm.candidates(state, node, dst):
            next_state = algorithm.advance(
                copy.copy(state), node, link, vc_class
            )
            stack.append((next_state, nodes + (link.dst,)))
    return sorted(paths)


def count_minimal_paths(
    algorithm: RoutingAlgorithm, src: int, dst: int
) -> int:
    """Number of distinct minimal node paths in the underlying topology."""
    topology = algorithm.topology
    memo: Dict[int, int] = {}

    def recurse(node: int) -> int:
        if node == dst:
            return 1
        if node in memo:
            return memo[node]
        total = 0
        for dim in range(topology.n_dims):
            for direction in topology.minimal_directions(node, dst, dim):
                link = topology.out_link(node, dim, direction)
                if link is not None:
                    total += recurse(link.dst)
        memo[node] = total
        return total

    return recurse(src)


__all__ = [
    "InvariantViolation",
    "check_candidates_minimal",
    "check_rank_monotonicity",
    "count_minimal_paths",
    "enumerate_paths",
]
