"""Virtual-channel load-balance metrics.

The paper attributes nbc's edge over nhop (and, under hotspot traffic,
over phop) to balancing traffic across virtual-channel classes: in the
plain hop schemes every message starts in class 0, so low-numbered
channels saturate while high-numbered ones idle.  These helpers quantify
that from the per-class flit counts the simulator collects.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.routing.hop_base import HopClassScheme
from repro.traffic.base import TrafficPattern
from repro.util.errors import ConfigurationError


def usage_fractions(vc_class_usage: Sequence[int]) -> List[float]:
    """Per-class share of all flit crossings (sums to 1; zeros kept)."""
    total = sum(vc_class_usage)
    if total == 0:
        return [0.0] * len(vc_class_usage)
    return [count / total for count in vc_class_usage]


def coefficient_of_variation(vc_class_usage: Sequence[int]) -> float:
    """Std-dev / mean of per-class usage: 0 = perfectly balanced.

    The paper's balance claim predicts a lower value for nbc than for
    nhop under the same traffic.
    """
    if not vc_class_usage:
        return 0.0
    mean = sum(vc_class_usage) / len(vc_class_usage)
    if mean == 0:
        return 0.0
    variance = sum(
        (count - mean) ** 2 for count in vc_class_usage
    ) / len(vc_class_usage)
    return math.sqrt(variance) / mean


def top_class_share(vc_class_usage: Sequence[int]) -> float:
    """Share of traffic on the busiest class (1/len = perfectly balanced)."""
    total = sum(vc_class_usage)
    if total == 0:
        return 0.0
    return max(vc_class_usage) / total


def expected_class_usage(
    scheme: HopClassScheme, traffic: TrafficPattern
) -> List[float]:
    """Analytic per-class share of flit traffic for a fixed-start hop scheme.

    For phop and nhop the class sequence along a path is independent of
    the path chosen (classes depend only on hop index / node parities,
    which alternate), so the expected share of traffic on each class can
    be computed exactly from the traffic pattern's destination
    distribution — no simulation needed.  The low-load measured usage
    should converge to this; the gap at high load (and for nbc, which
    chooses its starting class by congestion) is precisely the paper's
    load-balance story.

    Raises :class:`ConfigurationError` for schemes with a starting-class
    choice (nbc): their usage is congestion-dependent.
    """
    topology = scheme.topology
    # A representative node of each parity: class_after_hop only looks at
    # the departing node's parity, and parities alternate along any path,
    # so the class sequence of a (src, dst) pair is path-independent.
    probe = [_probe_node(scheme, 0), _probe_node(scheme, 1)]
    shares = [0.0] * scheme.num_virtual_channels
    total_weight = 0.0
    for src in range(topology.num_nodes):
        distribution = traffic.destination_distribution(src)
        for dst, probability in distribution.items():
            initial = scheme.initial_classes(src, dst)
            if len(initial) != 1:
                raise ConfigurationError(
                    f"{scheme.name} chooses its starting class at run "
                    "time; its class usage has no closed form"
                )
            vc_class = initial[0]
            node_parity = topology.parity(src)
            hops = topology.distance(src, dst)
            for _ in range(hops):
                shares[vc_class] += probability
                vc_class = scheme.class_after_hop(
                    vc_class, probe[node_parity]
                )
                node_parity ^= 1
            total_weight += probability * hops
    if total_weight:
        shares = [share / total_weight for share in shares]
    return shares


def _probe_node(scheme: HopClassScheme, parity: int) -> int:
    topology = scheme.topology
    for node in range(topology.num_nodes):
        if topology.parity(node) == parity:
            return node
    raise AssertionError("topology has nodes of only one parity")


__all__ = [
    "coefficient_of_variation",
    "expected_class_usage",
    "top_class_share",
    "usage_fractions",
]
