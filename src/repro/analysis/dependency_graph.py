"""Channel dependency graphs (Dally & Seitz) for the routing algorithms.

A resource is one virtual channel, identified by ``(link_index,
vc_class)``.  The *may-wait* dependency graph has an edge r1 -> r2 whenever
some message, in some reachable routing state, can hold r1 while requesting
r2.  Acyclicity of this graph is a **sufficient** condition for deadlock
freedom (for adaptive algorithms it is not necessary — a message waits on
the whole candidate set, so cycles of may-wait edges can be unrealizable;
cf. Duato).

The deterministic e-cube graph and the rank-layered hop-scheme graphs are
acyclic and the test suite asserts so on small tori.  The nlast graph is
acyclic by the wrap-count layering.  The tag-based 2pn graph *does* contain
may-wait cycles (mixed wrap/non-wrap messages inside one tag class); the
paper's deadlock-freedom claim for 2pn rests on the stronger reachability
argument of its companion report, and the simulator's watchdog plus long
overload stress tests provide the empirical evidence here.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Hashable, Iterator, List, Optional, Set, Tuple

from repro.routing.base import RoutingAlgorithm
from repro.util.fingerprint import state_fingerprint

#: One virtual channel: (link index, virtual-channel class).
Resource = Tuple[int, int]


def build_dependency_graph(
    algorithm: RoutingAlgorithm,
) -> Dict[Resource, Set[Resource]]:
    """Enumerate every reachable hold->request dependency of *algorithm*.

    Walks all (source, destination) pairs and, per pair, all reachable
    (routing state, node, held resource) configurations.  Exponential only
    in the path diversity of a single pair, which is small on the 4- and
    6-ary test tori this is used on.
    """
    topology = algorithm.topology
    edges: Dict[Resource, Set[Resource]] = {}
    for src in range(topology.num_nodes):
        for dst in range(topology.num_nodes):
            if src == dst:
                continue
            _walk_pair(algorithm, src, dst, edges)
    return edges


def _walk_pair(
    algorithm: RoutingAlgorithm,
    src: int,
    dst: int,
    edges: Dict[Resource, Set[Resource]],
) -> None:
    initial = algorithm.new_state(src, dst)
    frontier: List[Tuple[Any, int, Optional[Resource]]] = [
        (initial, src, None)
    ]
    seen: Set[Tuple[Hashable, int, Optional[Resource]]] = set()
    while frontier:
        state, node, held = frontier.pop()
        marker = (state_fingerprint(state), node, held)
        if marker in seen:
            continue
        seen.add(marker)
        if node == dst:
            continue
        for link, vc_class in algorithm.candidates(state, node, dst):
            resource = (link.index, vc_class)
            if held is not None:
                edges.setdefault(held, set()).add(resource)
            next_state = algorithm.advance(
                copy.copy(state), node, link, vc_class
            )
            frontier.append((next_state, link.dst, resource))


def find_cycle(
    edges: Dict[Resource, Set[Resource]]
) -> Optional[List[Resource]]:
    """A cycle in the graph, or None when it is acyclic.

    Iterative three-color depth-first search; returns the resources along
    one cycle for diagnostics.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Resource, int] = {}
    parent: Dict[Resource, Optional[Resource]] = {}

    for root in edges:
        if color.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[Resource, Iterator[Resource]]] = [
            (root, iter(edges.get(root, ())))
        ]
        color[root] = GRAY
        parent[root] = None
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                state = color.get(child, WHITE)
                if state == GRAY:
                    # Found a back edge: reconstruct the cycle (for a
                    # self-loop the witness is the single resource).
                    cycle = [child]
                    walker: Optional[Resource] = node
                    while walker is not None and walker != child:
                        cycle.append(walker)
                        walker = parent[walker]
                    cycle.reverse()
                    return cycle
                if state == WHITE:
                    color[child] = GRAY
                    parent[child] = node
                    stack.append((child, iter(edges.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def is_acyclic(edges: Dict[Resource, Set[Resource]]) -> bool:
    """True when the dependency graph has no cycle."""
    return find_cycle(edges) is None


__all__ = ["Resource", "build_dependency_graph", "find_cycle", "is_acyclic"]
