"""``repro.analysis.lint`` — AST-based determinism & hot-path analyzer.

A rule-registry static analyzer in the mould of
:mod:`repro.analysis.verify`: where the verify battery proves the
*routing algorithms'* statically checkable properties (escape-channel
discipline, dependency acyclicity), this package proves the *engine's*
statically checkable determinism discipline — no global random state, no
wall-clock in the core, no hash-ordered decisions, no worker-shared
mutable state, full serializer coverage, and allocation-free hot paths.

See ``docs/static-analysis.md`` for the rule catalogue and the waiver
syntax, and the ``repro-lint`` console script for the CLI.
"""

from repro.analysis.lint.finding import (
    ALL_STATUSES,
    Finding,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    STATUS_OPEN,
    STATUS_WAIVED,
    Waiver,
    summarize,
)
from repro.analysis.lint.report import format_summary, format_table
from repro.analysis.lint.rules import (
    DET002_ALLOWED_FUNCTIONS,
    ModuleContext,
    RULES,
    Rule,
    SERIALIZE_EXCLUDE_ATTR,
    build_context,
    register_rule,
)
from repro.analysis.lint.runner import (
    FindingCache,
    LintRun,
    analyze_source,
    apply_waivers,
    default_root,
    lint_code_hash,
    parse_waivers,
    run_lint,
)

__all__ = [
    "ALL_STATUSES",
    "DET002_ALLOWED_FUNCTIONS",
    "Finding",
    "FindingCache",
    "LintRun",
    "ModuleContext",
    "RULES",
    "Rule",
    "SERIALIZE_EXCLUDE_ATTR",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "STATUS_OPEN",
    "STATUS_WAIVED",
    "Waiver",
    "analyze_source",
    "apply_waivers",
    "build_context",
    "default_root",
    "format_summary",
    "format_table",
    "lint_code_hash",
    "parse_waivers",
    "register_rule",
    "run_lint",
    "summarize",
]
