"""The registry of named determinism and hot-path discipline rules.

Each rule inspects one parsed module (an :class:`ast.Module` plus source
context) and yields :class:`~repro.analysis.lint.finding.Finding` records.
The registry maps rule ids to :class:`Rule` records, mirroring the check
registry of :mod:`repro.analysis.verify.checks`.

Every rule is grounded in a bug class this repository has actually
shipped, or is about to risk as caching keyed on ``state_fingerprint``
makes nondeterminism more expensive:

* ``DET001`` — global random state (``random.seed()``/``random.random()``
  /``numpy.random``) outside :mod:`repro.util.rng`.  All stochastic
  choices must flow through seeded :class:`~repro.util.rng.RngStreams`.
* ``DET002`` — wall-clock reads inside the deterministic core
  (``simulator/``, ``routing/``, ``network/``, ``topology/``) outside
  the explicit allowlist of measurement sites that feed
  ``SimulationResult.wall_seconds`` and the phase profiler.
* ``DET003`` — iteration (or list/tuple materialisation) of a ``set`` /
  ``frozenset`` whose hash order would feed a simulation decision,
  unless wrapped in ``sorted()`` — the scan→active scheduler's ordering
  hazard.
* ``DET004`` — ``id()``-based ordering or tie-breaking: CPython object
  addresses vary run to run, so any decision keyed on them is
  irreproducible.
* ``DET005`` — module-level mutable state or mutable default arguments
  in packages imported by ProcessPool workers (the shared-mutable-state
  bug from the parallel-sweep PR).  Write-once import-time registries
  are waivable.
* ``SER001`` — every field of a ``@dataclass`` that defines ``to_dict``
  must appear in the serializer or in the class's explicit
  ``SERIALIZE_EXCLUDE`` set (the dropped-``SimulationResult``-columns
  bug).
* ``HOT001`` — allocation-heavy constructs (``deepcopy``, f-string /
  ``str.format`` / ``%`` formatting, comprehensions over loop-invariant
  constants) inside functions marked with a ``# repro: hot`` pragma;
  plus a numpy-aware sub-check: no per-element Python loops over numpy
  arrays inside pragma'd kernels (the batch backend's array kernels
  must stay whole-array — a Python loop over the batch axis silently
  forfeits the vectorization the pragma promises).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.finding import Finding, SEVERITY_ERROR

#: Packages whose code must never read wall-clock time (DET002): they
#: are the deterministic core replayed bit-for-bit by the golden-trace
#: and serial==parallel identity suites.
WALL_CLOCK_FREE_PACKAGES = ("simulator", "routing", "network", "topology")

#: Packages where container iteration order feeds simulation decisions
#: (DET003): the deterministic core plus traffic generation.
ORDER_SENSITIVE_PACKAGES = WALL_CLOCK_FREE_PACKAGES + ("traffic",)

#: Functions allowed to read wall-clock time inside the deterministic
#: core: the phase-profiler sites of the observed step path, which feed
#: ``PhaseProfiler`` / ``SimulationResult.wall_seconds`` and never touch
#: simulation state (pinned by the observed golden-trace tests).
DET002_ALLOWED_FUNCTIONS = frozenset(
    {"simulator/engine.py::Engine._step_observed"}
)

#: Wall-clock entry points DET002 recognises, by qualified name.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Class attribute naming the fields a serializer intentionally omits
#: (SER001's explicit exclusion list).
SERIALIZE_EXCLUDE_ATTR = "SERIALIZE_EXCLUDE"

#: Marks a function as hot-path (HOT001), on the ``def`` line or the
#: line directly above it.
HOT_PRAGMA = re.compile(r"#\s*repro:\s*hot\b")


@dataclass
class ModuleContext:
    """One parsed module handed to every applicable rule."""

    relpath: str
    source: str
    lines: List[str]
    tree: ast.Module
    imports: Dict[str, str]
    #: Real ``#`` comments by line number (tokenize-extracted, so string
    #: literals that merely *mention* a pragma or waiver never match).
    comments: Dict[int, str] = field(default_factory=dict)

    def witness(self, line: int) -> str:
        """The (stripped) source line a finding points at."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def package(self) -> str:
        """First path component — '' for files at the analyzed root."""
        head, _, tail = self.relpath.partition("/")
        return head if tail else ""

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Qualified name of a ``Name``/``Attribute`` chain, if any.

        Import aliases are folded in, so with ``import numpy as np`` the
        expression ``np.random.seed`` resolves to ``numpy.random.seed``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.imports.get(node.id, node.id))
        return ".".join(reversed(parts))


@dataclass(frozen=True)
class Rule:
    """One registered rule."""

    name: str
    severity: str
    summary: str
    applies: Callable[[str], bool]
    run: Callable[[ModuleContext], List[Finding]]


#: Registered rules, in registration (= catalogue) order.
RULES: Dict[str, Rule] = {}


def register_rule(
    name: str,
    summary: str,
    applies: Optional[Callable[[str], bool]] = None,
    severity: str = SEVERITY_ERROR,
) -> Callable[
    [Callable[[ModuleContext], List[Finding]]],
    Callable[[ModuleContext], List[Finding]],
]:
    """Decorator-style registration of a rule function."""

    def decorator(
        run: Callable[[ModuleContext], List[Finding]]
    ) -> Callable[[ModuleContext], List[Finding]]:
        if name in RULES:
            raise ValueError(f"rule {name!r} is already registered")
        RULES[name] = Rule(
            name=name,
            severity=severity,
            summary=summary,
            applies=applies if applies is not None else lambda _: True,
            run=run,
        )
        return run

    return decorator


def _extract_comments(source: str) -> Dict[int, str]:
    """Map line number -> comment text for every real ``#`` comment."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError):
        pass  # the ast parse will report the real problem
    return comments


def build_context(relpath: str, source: str) -> ModuleContext:
    """Parse *source* and build the shared per-module rule input."""
    tree = ast.parse(source)
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else local
                imports[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and not (
            node.level
        ):
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return ModuleContext(
        relpath=relpath,
        source=source,
        lines=source.splitlines(),
        tree=tree,
        imports=imports,
        comments=_extract_comments(source),
    )


def _finding(
    rule: str, ctx: ModuleContext, node: ast.AST, message: str, hint: str
) -> Finding:
    line = getattr(node, "lineno", 1)
    return Finding(
        rule=rule,
        severity=RULES[rule].severity if rule in RULES else SEVERITY_ERROR,
        path=ctx.relpath,
        line=line,
        col=getattr(node, "col_offset", 0),
        message=message,
        witness=ctx.witness(line),
        hint=hint,
    )


def _in_packages(*packages: str) -> Callable[[str], bool]:
    return lambda relpath: relpath.partition("/")[0] in packages and (
        "/" in relpath
    )


def _qualnames(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (dotted qualname, node) for every function in *tree*."""

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = f"{prefix}{child.name}"
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield name, child
                yield from walk(child, f"{name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")


# ---------------------------------------------------------------------------
# DET001 — global random state
# ---------------------------------------------------------------------------


@register_rule(
    "DET001",
    "no global random state (random.*/numpy.random) outside repro.util.rng",
    applies=lambda relpath: relpath != "util/rng.py",
)
def det001_global_random(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    hint = (
        "draw from a seeded stream: RngStreams(seed).stream(name) "
        "(repro.util.rng); never the process-global generator"
    )
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and not node.level:
            if node.module == "random":
                for alias in node.names:
                    if alias.name not in ("Random", "SystemRandom"):
                        findings.append(
                            _finding(
                                "DET001",
                                ctx,
                                node,
                                "import of the process-global random "
                                f"function random.{alias.name}",
                                hint,
                            )
                        )
            elif node.module and node.module.startswith("numpy.random"):
                findings.append(
                    _finding(
                        "DET001",
                        ctx,
                        node,
                        f"import from {node.module}: numpy's global "
                        "random state is process-wide",
                        hint,
                    )
                )
        elif isinstance(node, ast.Call):
            qualified = ctx.resolve(node.func)
            if qualified is None:
                continue
            if qualified.startswith("random.") and qualified.partition(".")[
                2
            ] not in ("Random", "SystemRandom"):
                findings.append(
                    _finding(
                        "DET001",
                        ctx,
                        node,
                        f"call to {qualified}() mutates or reads the "
                        "process-global random state",
                        hint,
                    )
                )
            elif "numpy.random" in qualified:
                findings.append(
                    _finding(
                        "DET001",
                        ctx,
                        node,
                        f"call to {qualified}() uses numpy's global "
                        "random state",
                        hint,
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# DET002 — wall-clock in the deterministic core
# ---------------------------------------------------------------------------


@register_rule(
    "DET002",
    "no wall-clock reads in simulator/routing/network/topology outside "
    "the measurement-site allowlist",
    applies=_in_packages(*WALL_CLOCK_FREE_PACKAGES),
)
def det002_wall_clock(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    allowed_suffixes = {
        entry.partition("::")[2]
        for entry in DET002_ALLOWED_FUNCTIONS
        if entry.startswith(f"{ctx.relpath}::")
    }
    covered: Set[int] = set()
    for qualname, func in _qualnames(ctx.tree):
        if qualname in allowed_suffixes:
            end = getattr(func, "end_lineno", func.lineno)
            covered.update(range(func.lineno, end + 1))
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qualified = ctx.resolve(node.func)
        if qualified not in _WALL_CLOCK_CALLS:
            continue
        if node.lineno in covered:
            continue
        findings.append(
            _finding(
                "DET002",
                ctx,
                node,
                f"wall-clock read {qualified}() in the deterministic "
                "core",
                "time outside the core (experiments/ owns wall_seconds) "
                "or extend DET002_ALLOWED_FUNCTIONS for a new "
                "measurement site",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# DET003 — hash-ordered iteration
# ---------------------------------------------------------------------------


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    return False


class _SetIterationVisitor(ast.NodeVisitor):
    """Per-scope tracker of names bound to set expressions."""

    #: Materialisers that preserve the argument's iteration order.
    _ORDERED_CONSUMERS = ("list", "tuple", "enumerate", "reversed", "iter")

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._set_names: List[Set[str]] = [set()]

    def _hint(self) -> str:
        return (
            "wrap the set in sorted() before its order can feed a "
            "decision, or keep an insertion-ordered dict keyed by the "
            "same elements"
        )

    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            _finding("DET003", self.ctx, node, what, self._hint())
        )

    def _names(self) -> Set[str]:
        return self._set_names[-1]

    def _check_iter(self, iter_node: ast.expr) -> None:
        if _is_set_expr(iter_node, self._names()):
            self._flag(
                iter_node,
                "iteration over a set/frozenset: hash order is not a "
                "stable simulation order",
            )
        elif (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in self._ORDERED_CONSUMERS
            and iter_node.args
            and _is_set_expr(iter_node.args[0], self._names())
        ):
            self._flag(
                iter_node,
                f"{iter_node.func.id}() materialises a set in hash "
                "order",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if _is_set_expr(node.value, self._names()):
                    self._names().add(target.id)
                else:
                    self._names().discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if _is_set_expr(node.value, self._names()):
                self._names().add(node.target.id)
            else:
                self._names().discard(node.target.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", []):
            self._check_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and not node.args
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self._names()
        ):
            self._flag(
                node, "set.pop() removes a hash-order-arbitrary element"
            )
        self.generic_visit(node)


@register_rule(
    "DET003",
    "no unsorted iteration over set/frozenset where order can feed a "
    "simulation decision",
    applies=_in_packages(*ORDER_SENSITIVE_PACKAGES),
)
def det003_set_iteration(ctx: ModuleContext) -> List[Finding]:
    visitor = _SetIterationVisitor(ctx)
    visitor.visit(ctx.tree)
    return visitor.findings


# ---------------------------------------------------------------------------
# DET004 — id()-based ordering
# ---------------------------------------------------------------------------


@register_rule(
    "DET004",
    "no id()-based ordering or tie-breaking",
)
def det004_id_ordering(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
            and not node.keywords
        ):
            findings.append(
                _finding(
                    "DET004",
                    ctx,
                    node,
                    "id() exposes a per-process object address; any "
                    "order or tie-break derived from it varies run to "
                    "run",
                    "order by a stable attribute (sequence number, "
                    "coordinates, name) instead of object identity",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DET005 — worker-shared mutable state
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "deque", "Counter")


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
               ast.DictComp),
    ):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


@register_rule(
    "DET005",
    "no module-level mutable state or mutable default arguments in "
    "worker-imported packages",
    # repro.analysis is main-process-only (never imported by ProcessPool
    # workers), and its check/rule registries are the pattern DET005
    # exists to audit elsewhere.
    applies=lambda relpath: not relpath.startswith("analysis/"),
)
def det005_worker_state(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ctx.tree.body:
        value: Optional[ast.expr] = None
        name = ""
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and (
            isinstance(node.targets[0], ast.Name)
        ):
            name = node.targets[0].id
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            name = node.target.id
            value = node.value
        if value is None or name == "__all__":
            continue
        if _is_mutable_value(value):
            findings.append(
                _finding(
                    "DET005",
                    ctx,
                    node,
                    f"module-level mutable container {name!r}: mutations "
                    "after import diverge between the parent process and "
                    "ProcessPool workers",
                    "make it immutable (tuple/frozenset/Mapping), move "
                    "it into the objects workers rebuild, or waive a "
                    "write-once import-time registry",
                )
            )
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if _is_mutable_value(default):
                    findings.append(
                        _finding(
                            "DET005",
                            ctx,
                            default,
                            f"mutable default argument in {node.name}(): "
                            "shared across every call of the function",
                            "default to None and build the container in "
                            "the body",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# SER001 — serializer field coverage
# ---------------------------------------------------------------------------


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else (
            decorator
        )
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> List[str]:
    names = []
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            annotation = ast.unparse(statement.annotation)
            if "ClassVar" in annotation:
                continue
            names.append(statement.target.id)
    return names


def _serialize_exclusions(node: ast.ClassDef) -> Set[str]:
    excluded: Set[str] = set()
    for statement in node.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target, value = statement.targets[0], statement.value
        elif isinstance(statement, ast.AnnAssign):
            target, value = statement.target, statement.value
        if (
            isinstance(target, ast.Name)
            and target.id == SERIALIZE_EXCLUDE_ATTR
            and value is not None
        ):
            for sub in ast.walk(value):
                if isinstance(sub, ast.Constant) and isinstance(
                    sub.value, str
                ):
                    excluded.add(sub.value)
    return excluded


@register_rule(
    "SER001",
    "every field of a @dataclass with to_dict appears in the serializer "
    f"or in its {SERIALIZE_EXCLUDE_ATTR} set",
)
def ser001_serializer_coverage(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _is_dataclass_decorated(node):
            continue
        to_dict = next(
            (
                statement
                for statement in node.body
                if isinstance(statement, ast.FunctionDef)
                and statement.name == "to_dict"
            ),
            None,
        )
        if to_dict is None:
            continue
        fields = _dataclass_fields(node)
        covered: Set[str] = set()
        uses_asdict = False
        for sub in ast.walk(to_dict):
            if isinstance(sub, ast.Attribute) and isinstance(
                sub.value, ast.Name
            ) and sub.value.id == "self":
                covered.add(sub.attr)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                covered.add(sub.value)
            elif isinstance(sub, ast.Call):
                qualified = ctx.resolve(sub.func)
                if qualified in ("dataclasses.asdict", "asdict"):
                    uses_asdict = True
        if uses_asdict:
            continue
        excluded = _serialize_exclusions(node)
        for field_name in fields:
            if field_name in covered or field_name in excluded:
                continue
            findings.append(
                _finding(
                    "SER001",
                    ctx,
                    to_dict,
                    f"{node.name}.to_dict drops field {field_name!r} "
                    "(the dropped-columns bug class)",
                    "serialize the field, or list it in "
                    f"{SERIALIZE_EXCLUDE_ATTR} with a comment saying "
                    "why it is intentionally absent",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# HOT001 — hot-path allocation discipline
# ---------------------------------------------------------------------------


def _hot_functions(ctx: ModuleContext) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        first = node.decorator_list[0].lineno if node.decorator_list else (
            node.lineno
        )
        # The pragma lives on the def line itself or on the line directly
        # above the function (above its first decorator, if any).
        candidates = (first - 1, node.lineno)
        if any(
            HOT_PRAGMA.search(ctx.comments.get(line, ""))
            for line in candidates
        ):
            yield node


#: Methods that step *out* of numpy land: their results are plain Python
#: objects, so iterating them is a sanctioned scalar seam rather than a
#: per-element loop over array storage.
_NUMPY_SCALAR_METHODS = frozenset({"tolist", "item"})

#: Builtins whose call forwards its argument's iteration: looping over
#: ``enumerate(array)`` is still a per-element loop over the array.
_ITER_FORWARDERS = frozenset(
    {"enumerate", "zip", "reversed", "iter", "list", "tuple", "sorted",
     "map", "filter"}
)


def _numpy_tainted_names(
    ctx: ModuleContext, func: ast.FunctionDef
) -> Tuple[Set[str], Set[str]]:
    """(local names, ``self.<attr>`` names) holding numpy arrays.

    A conservative dataflow pass: a name is array-tainted when assigned
    from a ``numpy.*`` call or from an expression derived from another
    tainted name.  Locals are tracked inside *func*; ``self`` attributes
    module-wide (arrays are typically built in ``__init__`` and looped
    over in kernels).  Iterated to a fixpoint so chains like
    ``a = numpy.zeros(...); b = a; c = b[mask]`` resolve regardless of
    statement order encountered by the walk.
    """
    local: Set[str] = set()
    attrs: Set[str] = set()

    def assignments(root: ast.AST) -> Iterator[Tuple[ast.expr, ast.expr]]:
        for node in ast.walk(root):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    yield target, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield node.target, node.value
            elif isinstance(node, ast.AugAssign):
                yield node.target, node.value

    for _ in range(4):  # fixpoint (chains deeper than 4 do not occur)
        changed = False
        for target, value in assignments(ctx.tree):
            if not _is_numpy_expr(ctx, value, local, attrs):
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr not in attrs
            ):
                attrs.add(target.attr)
                changed = True
        for target, value in assignments(func):
            if isinstance(target, ast.Name) and target.id not in local and (
                _is_numpy_expr(ctx, value, local, attrs)
            ):
                local.add(target.id)
                changed = True
        if not changed:
            break
    return local, attrs


def _is_numpy_expr(
    ctx: ModuleContext,
    node: ast.expr,
    local: Set[str],
    attrs: Set[str],
) -> bool:
    """Does this expression (conservatively) evaluate to a numpy array?"""
    if isinstance(node, ast.Name):
        return node.id in local
    if isinstance(node, ast.Starred):
        return _is_numpy_expr(ctx, node.value, local, attrs)
    if isinstance(node, ast.Call):
        qualified = ctx.resolve(node.func)
        if qualified is not None and qualified.startswith("numpy."):
            return True
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _NUMPY_SCALAR_METHODS:
                return False
            # Array methods (reshape/min/take/...) stay arrays.
            return _is_numpy_expr(ctx, node.func.value, local, attrs)
        return False
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return node.attr in attrs
        if node.attr in _NUMPY_SCALAR_METHODS:
            return False
        return _is_numpy_expr(ctx, node.value, local, attrs)
    if isinstance(node, ast.Subscript):
        return _is_numpy_expr(ctx, node.value, local, attrs)
    if isinstance(node, ast.BinOp):
        return _is_numpy_expr(ctx, node.left, local, attrs) or (
            _is_numpy_expr(ctx, node.right, local, attrs)
        )
    if isinstance(node, ast.UnaryOp):
        return _is_numpy_expr(ctx, node.operand, local, attrs)
    if isinstance(node, (ast.IfExp,)):
        return _is_numpy_expr(ctx, node.body, local, attrs) or (
            _is_numpy_expr(ctx, node.orelse, local, attrs)
        )
    return False


def _loops_over_array(
    ctx: ModuleContext,
    iter_node: ast.expr,
    local: Set[str],
    attrs: Set[str],
) -> bool:
    """Does this ``for``/comprehension source iterate a numpy array?"""
    if _is_numpy_expr(ctx, iter_node, local, attrs):
        return True
    if isinstance(iter_node, ast.Call) and isinstance(
        iter_node.func, ast.Name
    ):
        name = iter_node.func.id
        if name in _ITER_FORWARDERS:
            return any(
                _is_numpy_expr(ctx, arg, local, attrs)
                for arg in iter_node.args
            )
        if name == "range":
            # range(len(array)) / range(array.shape[0]): an index loop
            # that almost certainly dereferences per element inside.
            for arg in iter_node.args:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call) and isinstance(
                        sub.func, ast.Name
                    ) and sub.func.id == "len" and sub.args and (
                        _is_numpy_expr(ctx, sub.args[0], local, attrs)
                    ):
                        return True
                    if isinstance(sub, ast.Attribute) and (
                        sub.attr in ("shape", "size")
                    ) and _is_numpy_expr(ctx, sub.value, local, attrs):
                        return True
    return False


def _local_names(func: ast.FunctionDef) -> Set[str]:
    names = {arg.arg for arg in func.args.posonlyargs}
    names.update(arg.arg for arg in func.args.args)
    names.update(arg.arg for arg in func.args.kwonlyargs)
    if func.args.vararg:
        names.add(func.args.vararg.arg)
    if func.args.kwarg:
        names.add(func.args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


@register_rule(
    "HOT001",
    "no allocation-heavy constructs or per-element numpy loops inside "
    "'# repro: hot' functions",
)
def hot001_hot_path(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    numpy_hint = (
        "replace the loop with whole-array numpy operations (ufuncs, "
        "boolean masks, fancy indexing); a deliberate scalar seam "
        "should iterate .tolist() output outside the pragma'd kernel"
    )
    for func in _hot_functions(ctx):
        local = _local_names(func)
        array_local, array_attrs = _numpy_tainted_names(ctx, func)
        for node in ast.walk(func):
            iter_sources: List[ast.expr] = []
            if isinstance(node, ast.For):
                iter_sources = [node.iter]
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                iter_sources = [
                    generator.iter for generator in node.generators
                ]
            for source in iter_sources:
                if _loops_over_array(ctx, source, array_local, array_attrs):
                    findings.append(
                        _finding(
                            "HOT001",
                            ctx,
                            source,
                            "per-element Python loop over a numpy array "
                            f"in hot function {func.name}() defeats "
                            "vectorization",
                            numpy_hint,
                        )
                    )
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                qualified = ctx.resolve(node.func)
                if qualified in ("copy.deepcopy", "deepcopy"):
                    findings.append(
                        _finding(
                            "HOT001",
                            ctx,
                            node,
                            f"deepcopy in hot function {func.name}()",
                            "copy explicitly, or restructure so the hot "
                            "path never clones",
                        )
                    )
                elif isinstance(node.func, ast.Attribute) and (
                    node.func.attr == "format"
                ):
                    findings.append(
                        _finding(
                            "HOT001",
                            ctx,
                            node,
                            f".format() call in hot function "
                            f"{func.name}() allocates per cycle",
                            "move string formatting out of the hot path "
                            "(format lazily at report time)",
                        )
                    )
            elif isinstance(node, ast.JoinedStr):
                findings.append(
                    _finding(
                        "HOT001",
                        ctx,
                        node,
                        f"f-string in hot function {func.name}() "
                        "allocates per cycle",
                        "move string formatting out of the hot path "
                        "(format lazily at report time)",
                    )
                )
            elif (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Mod)
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
            ):
                findings.append(
                    _finding(
                        "HOT001",
                        ctx,
                        node,
                        f"%-formatting in hot function {func.name}()",
                        "move string formatting out of the hot path",
                    )
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp)
            ):
                iter_names = {
                    sub.id
                    for generator in node.generators
                    for sub in ast.walk(generator.iter)
                    if isinstance(sub, ast.Name)
                }
                if iter_names and not (iter_names & local):
                    findings.append(
                        _finding(
                            "HOT001",
                            ctx,
                            node,
                            "comprehension over loop-invariant globals "
                            f"rebuilt on every call of {func.name}()",
                            "hoist the comprehension to module scope or "
                            "__init__ and reuse the built container",
                        )
                    )
    return findings


__all__ = [
    "DET002_ALLOWED_FUNCTIONS",
    "HOT_PRAGMA",
    "ModuleContext",
    "ORDER_SENSITIVE_PACKAGES",
    "RULES",
    "Rule",
    "SERIALIZE_EXCLUDE_ATTR",
    "WALL_CLOCK_FREE_PACKAGES",
    "build_context",
    "register_rule",
]
