"""Run the rule battery over a source tree, with per-file caching.

The runner walks every ``*.py`` file under the analyzed root (by default
the installed ``repro`` package), parses it once, runs every applicable
rule, applies inline waivers, and collects
:class:`~repro.analysis.lint.finding.Finding` records.

Findings are pure functions of the source code, so they are cached per
file: the cache key is the SHA-256 of the file's own content plus a hash
of the lint package itself (any rule edit invalidates everything, an
unchanged file replays instantly).  This is the same contract as
``repro-verify``'s result cache, but file-granular, so a one-file edit
re-analyzes one file.

Waiver discipline (the auditable-suppression contract):

* ``# repro-lint: ignore[DET003] reason`` waives matching findings on
  its own line, or on the next line when the comment stands alone.
* A waiver **must** carry a reason; a bare ``ignore[...]`` does not
  waive anything and is itself reported (rule ``WVR001``).
* A waiver that matches no finding is reported too (rule ``WVR002``),
  so stale suppressions cannot linger — the static-analysis analogue of
  mypy's ``warn_unused_ignores``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import repro
from repro.analysis.lint.finding import (
    Finding,
    STATUS_WAIVED,
    Waiver,
    summarize,
)
from repro.analysis.lint.rules import (
    ModuleContext,
    RULES,
    build_context,
    register_rule,
)
from repro.util.errors import ConfigurationError

_CACHE_VERSION = 1

#: Waiver comments: ``repro-lint: ignore[RULE1,RULE2] mandatory reason``.
WAIVER_PATTERN = re.compile(
    r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(.*)$"
)

# The waiver-audit meta rules are emitted by the runner itself (never
# scheduled per module), registered so reports and the catalogue know
# their severity and summary.
register_rule(
    "WVR001",
    "every waiver carries a reason",
    applies=lambda _: False,
)(lambda ctx: [])
register_rule(
    "WVR002",
    "no waiver outlives the finding it suppresses",
    applies=lambda _: False,
)(lambda ctx: [])


def parse_waivers(ctx: ModuleContext) -> List[Waiver]:
    """Extract every waiver comment from a parsed module.

    Only real ``#`` comments count (tokenize-extracted), so docstrings
    that merely *describe* the waiver syntax never register as waivers.
    A trailing waiver covers its own line; a comment standing alone on
    its line covers the next line.
    """
    waivers: List[Waiver] = []
    for number, comment in sorted(ctx.comments.items()):
        match = WAIVER_PATTERN.search(comment)
        if match is None:
            continue
        rules = [
            part.strip()
            for part in match.group(1).split(",")
            if part.strip()
        ]
        standalone = ctx.lines[number - 1].strip().startswith("#")
        waivers.append(
            Waiver(
                line=number + 1 if standalone else number,
                comment_line=number,
                rules=rules,
                reason=match.group(2).strip(),
            )
        )
    return waivers


def apply_waivers(
    findings: List[Finding],
    waivers: List[Waiver],
    relpath: str,
    lines: List[str],
    audit: bool = True,
) -> List[Finding]:
    """Mark waived findings and, when *audit* is set, report waiver
    hygiene problems (``WVR001``/``WVR002``)."""
    for finding in findings:
        for waiver in waivers:
            if waiver.covers(finding.rule, finding.line):
                waiver.used = True
                if waiver.reason:
                    finding.status = STATUS_WAIVED
                    finding.waiver = waiver.reason
                break
    if not audit:
        return findings
    audited = list(findings)
    for waiver in waivers:
        witness = lines[waiver.comment_line - 1].strip()
        if not waiver.reason:
            audited.append(
                Finding(
                    rule="WVR001",
                    severity=RULES["WVR001"].severity,
                    path=relpath,
                    line=waiver.comment_line,
                    col=0,
                    message=(
                        "waiver without a reason does not waive anything"
                    ),
                    witness=witness,
                    hint=(
                        "append the why: # repro-lint: "
                        "ignore[RULE] <reason>"
                    ),
                )
            )
        elif not waiver.used:
            audited.append(
                Finding(
                    rule="WVR002",
                    severity=RULES["WVR002"].severity,
                    path=relpath,
                    line=waiver.comment_line,
                    col=0,
                    message=(
                        "unused waiver: no "
                        f"{'/'.join(waiver.rules)} finding on line "
                        f"{waiver.line}"
                    ),
                    witness=witness,
                    hint="delete the stale waiver comment",
                )
            )
    return audited


def analyze_source(
    source: str,
    relpath: str,
    rules: Optional[List[str]] = None,
) -> List[Finding]:
    """Run the (selected) rule battery over one module's *source*.

    *relpath* places the module in the package layout the path-scoped
    rules understand (e.g. ``simulator/engine.py``).  Waiver hygiene is
    audited only when the full rule set runs — a subset cannot tell a
    stale waiver from one whose rule was deselected.
    """
    full_battery = rules is None
    selected = _select_rules(rules)
    ctx = build_context(relpath, source)
    findings: List[Finding] = []
    for rule in selected:
        if rule.applies(relpath):
            findings.extend(rule.run(ctx))
    findings.sort(key=lambda finding: (finding.line, finding.col))
    return apply_waivers(
        findings,
        parse_waivers(ctx),
        relpath,
        ctx.lines,
        audit=full_battery,
    )


def _select_rules(names: Optional[List[str]]) -> List[Any]:
    if names is None:
        return [
            rule for name, rule in RULES.items()
            if not name.startswith("WVR")
        ]
    unknown = [name for name in names if name not in RULES]
    if unknown:
        raise ConfigurationError(
            f"unknown rules: {', '.join(unknown)}; "
            f"available: {', '.join(RULES)}"
        )
    return [RULES[name] for name in names if not name.startswith("WVR")]


def lint_code_hash() -> str:
    """SHA-256 over the lint package itself: any rule edit invalidates
    every cached verdict."""
    package_root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass
class LintRun:
    """All findings of one runner invocation plus run metadata."""

    findings: List[Finding] = field(default_factory=list)
    rules_hash: str = ""
    root: str = ""
    files_analyzed: int = 0
    files_cached: int = 0
    wall_time: float = 0.0

    def summary(self) -> Dict[str, int]:
        return summarize(self.findings)

    def ok(self) -> bool:
        """True when no open error-severity finding exists."""
        return all(finding.ok for finding in self.findings)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": _CACHE_VERSION,
            "rules_hash": self.rules_hash,
            "root": self.root,
            "files_analyzed": self.files_analyzed,
            "files_cached": self.files_cached,
            "wall_time": round(self.wall_time, 6),
            "summary": self.summary(),
            "findings": [finding.to_dict() for finding in self.findings],
        }


class FindingCache:
    """JSON-file cache of per-file findings keyed on content hashes."""

    def __init__(self, path: Optional[str], rules_hash: str) -> None:
        self.path = path
        self.rules_hash = rules_hash
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        if path is not None and os.path.exists(path):
            self._load(path)

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as stream:
                data = json.load(stream)
        except (OSError, ValueError):
            return  # unreadable cache: start fresh
        if (
            data.get("version") == _CACHE_VERSION
            and data.get("rules_hash") == self.rules_hash
        ):
            entries = data.get("files", {})
            if isinstance(entries, dict):
                self._entries = entries

    def get(self, relpath: str, source_sha: str) -> Optional[List[Finding]]:
        entry = self._entries.get(relpath)
        if entry is None or entry.get("sha") != source_sha:
            return None
        try:
            findings = [
                Finding.from_dict(item) for item in entry.get("findings", [])
            ]
        except (KeyError, TypeError, ValueError):
            return None
        for finding in findings:
            finding.cached = True
        return findings

    def put(
        self, relpath: str, source_sha: str, findings: List[Finding]
    ) -> None:
        stored = []
        for finding in findings:
            item = finding.to_dict()
            item["cached"] = False  # replays mark themselves at load time
            stored.append(item)
        self._entries[relpath] = {"sha": source_sha, "findings": stored}
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "rules_hash": self.rules_hash,
            "files": self._entries,
        }
        with open(self.path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=1, sort_keys=True)
            stream.write("\n")


def default_root() -> Path:
    """The installed ``repro`` package — what ``repro-lint --all`` scans."""
    return Path(repro.__file__).resolve().parent


def run_lint(
    root: Optional[Path] = None,
    rules: Optional[List[str]] = None,
    cache_path: Optional[str] = None,
) -> LintRun:
    """Analyze every ``*.py`` file under *root* and return the findings.

    *root* defaults to :func:`default_root`; *rules* defaults to the
    whole registry.  *cache_path* enables the per-file result cache —
    only honoured for full-battery runs, since a partial run's findings
    would poison later full replays.
    """
    started = time.perf_counter()
    base = root if root is not None else default_root()
    base = base.resolve()
    if not base.is_dir():
        raise ConfigurationError(f"lint root {base} is not a directory")
    rules_hash = lint_code_hash()
    cache = FindingCache(
        cache_path if rules is None else None, rules_hash
    )
    run = LintRun(rules_hash=rules_hash, root=str(base))
    for path in sorted(base.rglob("*.py")):
        relpath = path.relative_to(base).as_posix()
        source = path.read_text(encoding="utf-8")
        source_sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
        cached = cache.get(relpath, source_sha)
        if cached is not None:
            run.findings.extend(cached)
            run.files_cached += 1
            continue
        try:
            findings = analyze_source(source, relpath, rules)
        except SyntaxError as exc:
            findings = [
                Finding(
                    rule="PARSE",
                    severity="error",
                    path=relpath,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"could not parse module: {exc.msg}",
                    hint="fix the syntax error",
                )
            ]
        run.findings.extend(findings)
        run.files_analyzed += 1
        cache.put(relpath, source_sha, findings)
    cache.save()
    run.wall_time = time.perf_counter() - started
    return run


__all__ = [
    "FindingCache",
    "LintRun",
    "WAIVER_PATTERN",
    "analyze_source",
    "apply_waivers",
    "default_root",
    "lint_code_hash",
    "parse_waivers",
    "run_lint",
]
