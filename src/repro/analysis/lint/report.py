"""Human-readable rendering of lint runs."""

from __future__ import annotations

from typing import List

from repro.analysis.lint.finding import Finding, STATUS_WAIVED
from repro.analysis.lint.runner import LintRun

#: Column order of the table.
_HEADER = ("rule", "severity", "location", "status", "message")

_STATUS_MARK = {
    "open": "OPEN",
    "waived": "waived",
}


def _rows(findings: List[Finding], max_message: int) -> List[tuple]:
    rows = []
    for finding in findings:
        message = finding.message.replace("\n", " ")
        if len(message) > max_message:
            message = message[: max_message - 3] + "..."
        rows.append(
            (
                finding.rule,
                finding.severity,
                finding.location,
                _STATUS_MARK.get(finding.status, finding.status),
                message,
            )
        )
    return rows


def format_table(run: LintRun, max_message: int = 64) -> str:
    """Every finding as a fixed-width text table."""
    rows = _rows(run.findings, max_message)
    if not rows:
        return "no findings"
    widths = [
        max(len(_HEADER[column]), *(len(row[column]) for row in rows))
        for column in range(len(_HEADER))
    ]
    lines = [
        "  ".join(
            title.ljust(widths[column])
            for column, title in enumerate(_HEADER)
        ),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[column])
                for column, cell in enumerate(row)
            ).rstrip()
        )
    return "\n".join(lines)


def format_summary(run: LintRun) -> str:
    """One-line totals plus every waiver reason and open finding."""
    summary = run.summary()
    counts = ", ".join(
        f"{count} {status}" for status, count in summary.items() if count
    )
    cached = (
        f", {run.files_cached} cached" if run.files_cached else ""
    )
    lines = [
        f"{len(run.findings)} findings over {run.files_analyzed} "
        f"analyzed files{cached}: {counts or 'none'} "
        f"({run.wall_time:.2f}s)"
    ]
    for finding in run.findings:
        if finding.status == STATUS_WAIVED:
            lines.append(
                f"waived: {finding.rule} at {finding.location} -- "
                f"{finding.waiver}"
            )
        elif not finding.ok:
            lines.append(
                f"OPEN: {finding.rule} at {finding.location} -- "
                f"{finding.message}"
                + (f" (hint: {finding.hint})" if finding.hint else "")
            )
    return "\n".join(lines)


__all__ = ["format_summary", "format_table"]
