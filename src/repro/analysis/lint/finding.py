"""Structured findings produced by the lint rules.

One :class:`Finding` records one rule violation at one source location.
Findings serialise to plain JSON dictionaries so CI can archive them and
diff runs, and deserialise back so the runner's per-file cache can replay
earlier analyses — the same contract as
:class:`repro.analysis.verify.result.CheckResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Finding severities.  ``error`` findings gate CI; ``warning`` findings
#: are advisory (no current rule emits one, but the report machinery
#: keeps the distinction so a future rule can soft-launch).
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Finding statuses.  A finding is ``open`` unless a well-formed inline
#: waiver comment (``repro-lint: ignore[RULE] reason``) covers its line,
#: in which case it is ``waived`` but still reported — suppressions stay
#: auditable.
STATUS_OPEN = "open"
STATUS_WAIVED = "waived"

ALL_STATUSES = (STATUS_OPEN, STATUS_WAIVED)


@dataclass
class Finding:
    """One rule violation at one source location.

    * ``rule`` — the rule identifier (``DET001``, ``SER001``, ...).
    * ``severity`` — ``error`` or ``warning``.
    * ``path`` — file path relative to the analyzed root.
    * ``line``/``col`` — 1-based line and 0-based column of the witness.
    * ``message`` — what invariant the code violates.
    * ``witness`` — the offending source snippet (the flagged line,
      stripped), so reports are readable without opening the file.
    * ``hint`` — how to fix it (or how to waive it when the code is
      intentionally exempt).
    * ``status``/``waiver`` — waiver bookkeeping; ``waiver`` carries the
      mandatory reason text of the covering waiver comment.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    witness: str = ""
    hint: str = ""
    status: str = STATUS_OPEN
    waiver: str = ""
    cached: bool = False

    @property
    def ok(self) -> bool:
        """True unless the finding is an open (unwaived) error."""
        return not (
            self.status == STATUS_OPEN and self.severity == SEVERITY_ERROR
        )

    @property
    def location(self) -> str:
        """``path:line`` — the clickable anchor used by reports."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "witness": self.witness,
            "hint": self.hint,
            "status": self.status,
            "waiver": self.waiver,
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            rule=data["rule"],
            severity=data["severity"],
            path=data["path"],
            line=int(data["line"]),
            col=int(data["col"]),
            message=data["message"],
            witness=data.get("witness", ""),
            hint=data.get("hint", ""),
            status=data.get("status", STATUS_OPEN),
            waiver=data.get("waiver", ""),
            cached=bool(data.get("cached", False)),
        )


@dataclass
class Waiver:
    """One parsed ``# repro-lint: ignore[...]`` comment.

    ``line`` is the source line the waiver *covers*: the comment's own
    line for a trailing comment, the following line for a comment that
    stands alone.  ``rules`` is the set of rule ids inside the brackets;
    ``reason`` the mandatory free text after them.  ``used`` flips when a
    finding consumes the waiver, so unconsumed waivers can be reported
    (rule WVR002).
    """

    line: int
    comment_line: int
    rules: List[str] = field(default_factory=list)
    reason: str = ""
    used: bool = False

    def covers(self, rule: str, line: int) -> bool:
        return line == self.line and rule in self.rules


def summarize(findings: List[Finding]) -> Dict[str, int]:
    """Status histogram over *findings* (every status key always present)."""
    summary = {status: 0 for status in ALL_STATUSES}
    for finding in findings:
        summary[finding.status] += 1
    return summary


__all__ = [
    "ALL_STATUSES",
    "Finding",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "STATUS_OPEN",
    "STATUS_WAIVED",
    "Waiver",
    "summarize",
]
