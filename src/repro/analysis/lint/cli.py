"""Command-line interface: ``repro-lint``.

Runs the determinism / hot-path rule battery over the ``repro`` source
tree (or any directory), printing a finding table and optionally writing
machine-readable JSON.

Examples::

    repro-lint --all --json lint-report.json
    repro-lint --rules DET001,DET003 src/repro
    repro-lint --all --fail-on-error            # CI gate

Exit status: 0 when every finding is waived (or none exists); 1 on any
open error finding.  ``--fail-on-error`` is accepted for symmetry with
``repro-verify`` (open findings already fail; the flag documents CI
intent).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.lint import (
    RULES,
    format_summary,
    format_table,
    run_lint,
)
from repro.util.errors import ConfigurationError

#: Default on-disk location of the per-file finding cache.
DEFAULT_CACHE = ".repro-lint-cache.json"


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Statically check the determinism and hot-path discipline "
            "of the repro source tree (see docs/static-analysis.md)."
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help=(
            "directory to analyze (default: the installed repro "
            "package)"
        ),
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="analyze the whole installed repro package (the default)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help=(
            "comma-separated rule ids "
            f"(default: all of {', '.join(RULES)})"
        ),
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the structured findings to this JSON file",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE,
        metavar="PATH",
        help=f"finding cache file (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the finding cache",
    )
    parser.add_argument(
        "--fail-on-error",
        action="store_true",
        help=(
            "exit non-zero on open findings (already the default; "
            "documents CI intent)"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the summary, not the full table",
    )
    return parser.parse_args(argv)


def _split(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    if args.root is not None and args.all:
        print(
            "repro-lint: give either a root directory or --all, not both",
            file=sys.stderr,
        )
        return 2
    try:
        run = run_lint(
            root=Path(args.root) if args.root is not None else None,
            rules=_split(args.rules),
            cache_path=None if args.no_cache else args.cache,
        )
    except ConfigurationError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(format_table(run))
        print()
    print(format_summary(run))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(run.to_dict(), stream, indent=1, sort_keys=True)
            stream.write("\n")
        print(f"wrote {args.json}")
    return 0 if run.ok() else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
