"""The registry of named deadlock-freedom / structure checks.

Each check inspects one routing algorithm instance (which carries its
topology) and returns an :class:`Outcome`.  The registry maps check names
to :class:`Check` records; :func:`evaluate` turns one (check, algorithm)
cell into a :class:`~repro.analysis.verify.result.CheckResult`, applying
the waiver table for known, documented failures.

The battery encodes the paper's correctness claims:

* ``rank_monotonicity`` — Lemma 1 for the hop schemes: buffer-class ranks
  strictly increase along every reachable hop.
* ``candidate_minimality`` — every algorithm is minimal (which also rules
  out livelock).
* ``acyclicity`` — Dally–Seitz channel-dependency acyclicity, with a
  cycle witness on failure.  2pn on tori carries a documented waiver: its
  *may-wait* graph is cyclic, and the paper's deadlock-freedom claim
  rests on a reachability argument plus the empirical watchdog evidence.
* ``vc_provisioning`` — the virtual-channel budget matches the paper's
  closed-form requirements (Table 1).
* ``adaptivity`` — the fully/partially/non-adaptive classification is
  real: path enumeration against the minimal-path count.
* ``escape_reachability`` — no reachable routing state is a dead end:
  every undelivered configuration offers at least one provisioned
  candidate, so a blocked worm always has a channel whose grant lets it
  drain (the escape-style progress property that carries 2pn and nlast
  where acyclicity alone does not certify them).
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.analysis.dependency_graph import (
    build_dependency_graph,
    find_cycle,
)
from repro.analysis.invariants import (
    InvariantViolation,
    check_candidates_minimal,
    check_rank_monotonicity,
    count_minimal_paths,
    enumerate_paths,
)
from repro.analysis.verify.result import (
    CheckResult,
    STATUS_ERROR,
    STATUS_FAIL,
    STATUS_PASS,
    STATUS_SKIPPED,
    STATUS_WAIVED,
    Witness,
)
from repro.routing.base import RoutingAlgorithm
from repro.routing.hop_base import HopClassScheme
from repro.util.errors import ReproError
from repro.util.fingerprint import state_fingerprint


@dataclass
class Outcome:
    """What a check function reports before waivers are applied."""

    status: str
    detail: str = ""
    witness: Witness = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class Check:
    """One registered check."""

    name: str
    description: str
    applies: Callable[[RoutingAlgorithm], bool]
    run: Callable[[RoutingAlgorithm], Outcome]


#: Registered checks, in registration (= presentation) order.
CHECKS: Dict[str, Check] = {}


def register_check(
    name: str,
    description: str,
    applies: Optional[Callable[[RoutingAlgorithm], bool]] = None,
) -> Callable[[Callable[[RoutingAlgorithm], Outcome]], Callable[
        [RoutingAlgorithm], Outcome]]:
    """Class-decorator-style registration of a check function."""

    def decorator(
        run: Callable[[RoutingAlgorithm], Outcome]
    ) -> Callable[[RoutingAlgorithm], Outcome]:
        if name in CHECKS:
            raise ValueError(f"check {name!r} is already registered")
        CHECKS[name] = Check(
            name=name,
            description=description,
            applies=applies if applies is not None else lambda _: True,
            run=run,
        )
        return run

    return decorator


# ---------------------------------------------------------------------------
# waivers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Waiver:
    """A documented, accepted failure of one (check, algorithm) pair."""

    check: str
    algorithm: str
    reason: str
    condition: Callable[[RoutingAlgorithm], bool] = lambda _: True


def _has_wrap(algorithm: RoutingAlgorithm) -> bool:
    return any(link.wraps for link in algorithm.topology.links)


_2PN_WAIVER_REASON = (
    "2pn's may-wait dependency graph is cyclic on tori (mixed wrap/"
    "non-wrap messages share one tag class), but a message waits on its "
    "whole candidate set, so Dally-Seitz acyclicity is sufficient, not "
    "necessary.  The paper's deadlock-freedom claim rests on the "
    "reachability argument of its companion report; empirically backed "
    "here by the watchdog overload stress tests "
    "(tests/test_engine_congestion_watchdog.py) and the "
    "escape_reachability check."
)

#: Known acceptable failures.  Base names only: a multilane wrapper
#: (e.g. ``2pnx2``) inherits its inner algorithm's waiver by base name.
WAIVERS: List[Waiver] = [
    Waiver(
        check="acyclicity",
        algorithm="2pn",
        reason=_2PN_WAIVER_REASON,
        condition=_has_wrap,
    ),
]


def find_waiver(check: str, algorithm: RoutingAlgorithm) -> Optional[str]:
    """The waiver reason for (check, algorithm), or None."""
    base_name = algorithm.name.split("x")[0]
    for waiver in WAIVERS:
        if waiver.check != check:
            continue
        if waiver.algorithm not in (algorithm.name, base_name):
            continue
        if waiver.condition(algorithm):
            return waiver.reason
    return None


# ---------------------------------------------------------------------------
# the checks
# ---------------------------------------------------------------------------


@register_check(
    "rank_monotonicity",
    "Lemma 1: buffer-class ranks strictly increase along every hop",
    applies=lambda algorithm: isinstance(algorithm, HopClassScheme),
)
def _check_rank_monotonicity(algorithm: RoutingAlgorithm) -> Outcome:
    assert isinstance(algorithm, HopClassScheme)
    try:
        checked = check_rank_monotonicity(algorithm)
    except InvariantViolation as exc:
        return Outcome(STATUS_FAIL, str(exc))
    return Outcome(
        STATUS_PASS,
        f"{checked} rank transitions strictly increasing",
        counts={"transitions": checked},
    )


@register_check(
    "candidate_minimality",
    "every candidate hop moves strictly closer to the destination",
)
def _check_minimality(algorithm: RoutingAlgorithm) -> Outcome:
    topology = algorithm.topology
    checked = 0
    for src in range(topology.num_nodes):
        for dst in range(topology.num_nodes):
            if src == dst:
                continue
            try:
                checked += check_candidates_minimal(algorithm, src, dst)
            except InvariantViolation as exc:
                return Outcome(STATUS_FAIL, str(exc))
    return Outcome(
        STATUS_PASS,
        f"{checked} candidates minimal over all pairs",
        counts={"candidates": checked},
    )


@register_check(
    "acyclicity",
    "Dally-Seitz: the may-wait channel dependency graph has no cycle",
)
def _check_acyclicity(algorithm: RoutingAlgorithm) -> Outcome:
    edges = build_dependency_graph(algorithm)
    n_edges = sum(len(targets) for targets in edges.values())
    counts = {"resources": len(edges), "dependencies": n_edges}
    cycle = find_cycle(edges)
    if cycle is None:
        return Outcome(
            STATUS_PASS,
            f"acyclic: {len(edges)} resources, {n_edges} dependencies",
            counts=counts,
        )
    return Outcome(
        STATUS_FAIL,
        f"may-wait cycle of {len(cycle)} resources "
        f"(link, vc_class): {cycle}",
        witness=list(cycle),
        counts=counts,
    )


def _expected_virtual_channels(algorithm: RoutingAlgorithm) -> Optional[int]:
    """The paper's closed-form VC requirement, or None when unknown.

    A trailing ``x<lanes>`` multiplies the base requirement (the multilane
    wrapper of the paper's Section 4 study).
    """
    topology = algorithm.topology
    name = algorithm.name
    lanes = 1
    match = re.fullmatch(r"(?P<base>.+?)x(?P<lanes>\d+)", name)
    if match is not None:
        name = match.group("base")
        lanes = int(match.group("lanes"))
    has_wrap = _has_wrap(algorithm)
    base: Optional[int]
    if name == "ecube":
        base = 2 if has_wrap else 1
    elif name == "nlast":
        base = topology.n_dims + 1 if has_wrap else 1
    elif name == "2pn":
        base = 2**topology.n_dims
    elif name == "phop":
        base = topology.diameter + 1
    elif name in ("nhop", "nbc"):
        base = (topology.diameter + 1) // 2 + 1
    else:
        base = None
    return None if base is None else base * lanes


@register_check(
    "vc_provisioning",
    "virtual-channel budget matches the paper's Table 1 formula",
)
def _check_vc_provisioning(algorithm: RoutingAlgorithm) -> Outcome:
    expected = _expected_virtual_channels(algorithm)
    actual = algorithm.num_virtual_channels
    if expected is None:
        return Outcome(
            STATUS_SKIPPED,
            f"no closed-form VC requirement known for "
            f"{algorithm.name!r} (provisions {actual})",
        )
    counts = {"expected": expected, "actual": actual}
    if actual != expected:
        return Outcome(
            STATUS_FAIL,
            f"{algorithm.name} provisions {actual} virtual channels; "
            f"the paper's formula requires {expected}",
            counts=counts,
        )
    return Outcome(
        STATUS_PASS,
        f"{actual} virtual channels per physical channel, as required",
        counts=counts,
    )


@register_check(
    "adaptivity",
    "path enumeration matches the declared adaptivity class",
)
def _check_adaptivity(algorithm: RoutingAlgorithm) -> Outcome:
    topology = algorithm.topology
    pairs = 0
    adaptive_pairs = 0
    restricted_pairs = 0
    total_paths = 0
    for src in range(topology.num_nodes):
        for dst in range(topology.num_nodes):
            if src == dst:
                continue
            pairs += 1
            permitted = len(enumerate_paths(algorithm, src, dst))
            minimal = count_minimal_paths(algorithm, src, dst)
            total_paths += permitted
            if permitted == 0:
                return Outcome(
                    STATUS_FAIL,
                    f"{algorithm.name} permits no path {src}->{dst}",
                )
            if permitted > minimal:
                return Outcome(
                    STATUS_FAIL,
                    f"{algorithm.name} permits {permitted} paths "
                    f"{src}->{dst} but only {minimal} minimal paths "
                    "exist (non-minimal or duplicated routes)",
                )
            if permitted > 1:
                adaptive_pairs += 1
            if permitted < minimal:
                restricted_pairs += 1
    counts = {
        "pairs": pairs,
        "paths": total_paths,
        "adaptive_pairs": adaptive_pairs,
        "restricted_pairs": restricted_pairs,
    }
    if algorithm.fully_adaptive and restricted_pairs:
        return Outcome(
            STATUS_FAIL,
            f"{algorithm.name} claims full adaptivity but restricts "
            f"{restricted_pairs}/{pairs} pairs below the minimal-path "
            "count",
            counts=counts,
        )
    if not algorithm.adaptive and adaptive_pairs:
        return Outcome(
            STATUS_FAIL,
            f"{algorithm.name} claims determinism but offers a choice "
            f"on {adaptive_pairs}/{pairs} pairs",
            counts=counts,
        )
    if (
        algorithm.adaptive
        and not algorithm.fully_adaptive
        and adaptive_pairs == 0
        and pairs > 0
    ):
        return Outcome(
            STATUS_FAIL,
            f"{algorithm.name} claims partial adaptivity but offers no "
            "choice on any pair",
            counts=counts,
        )
    kind = (
        "fully adaptive"
        if algorithm.fully_adaptive
        else ("partially adaptive" if algorithm.adaptive else "deterministic")
    )
    return Outcome(
        STATUS_PASS,
        f"{kind} classification confirmed over {pairs} pairs "
        f"({total_paths} permitted paths)",
        counts=counts,
    )


@register_check(
    "escape_reachability",
    "no reachable routing state is a dead end; all candidates provisioned",
)
def _check_escape_reachability(algorithm: RoutingAlgorithm) -> Outcome:
    topology = algorithm.topology
    num_vcs = algorithm.num_virtual_channels
    configurations = 0
    candidates_seen = 0
    for src in range(topology.num_nodes):
        for dst in range(topology.num_nodes):
            if src == dst:
                continue
            frontier: List[Tuple[Any, int]] = [
                (algorithm.new_state(src, dst), src)
            ]
            seen: Set[Tuple[Hashable, int]] = set()
            while frontier:
                state, node = frontier.pop()
                marker = (state_fingerprint(state), node)
                if marker in seen or node == dst:
                    continue
                seen.add(marker)
                configurations += 1
                choices = algorithm.candidates(state, node, dst)
                if not choices:
                    return Outcome(
                        STATUS_FAIL,
                        f"{algorithm.name}: dead end at node {node} while "
                        f"routing {src}->{dst} (no candidate channel; a "
                        "worm holding channels here could never drain)",
                    )
                for link, vc_class in choices:
                    candidates_seen += 1
                    if not 0 <= vc_class < num_vcs:
                        return Outcome(
                            STATUS_FAIL,
                            f"{algorithm.name}: candidate class "
                            f"{vc_class} on link {link.index} outside "
                            f"the {num_vcs} provisioned virtual channels",
                        )
                    next_state = algorithm.advance(
                        copy.copy(state), node, link, vc_class
                    )
                    frontier.append((next_state, link.dst))
    return Outcome(
        STATUS_PASS,
        f"{configurations} reachable configurations, none a dead end; "
        f"{candidates_seen} candidates all provisioned",
        counts={
            "configurations": configurations,
            "candidates": candidates_seen,
        },
    )


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------


def evaluate(
    check: Check, algorithm: RoutingAlgorithm, topology_label: str
) -> CheckResult:
    """Run one check on one algorithm, applying waivers, never raising."""
    if not check.applies(algorithm):
        return CheckResult(
            check=check.name,
            algorithm=algorithm.name,
            topology=topology_label,
            status=STATUS_SKIPPED,
            detail=f"not applicable to {algorithm.name}",
        )
    try:
        outcome = check.run(algorithm)
    except ReproError as exc:
        return CheckResult(
            check=check.name,
            algorithm=algorithm.name,
            topology=topology_label,
            status=STATUS_ERROR,
            detail=f"{type(exc).__name__}: {exc}",
        )
    status = outcome.status
    waiver: Optional[str] = None
    if status == STATUS_FAIL:
        waiver = find_waiver(check.name, algorithm)
        if waiver is not None:
            status = STATUS_WAIVED
    return CheckResult(
        check=check.name,
        algorithm=algorithm.name,
        topology=topology_label,
        status=status,
        detail=outcome.detail,
        waiver=waiver,
        witness=outcome.witness,
        counts=outcome.counts,
    )


__all__ = [
    "CHECKS",
    "Check",
    "Outcome",
    "WAIVERS",
    "Waiver",
    "evaluate",
    "find_waiver",
    "register_check",
]
