"""Structured verdicts produced by the verification checks.

One :class:`CheckResult` records the outcome of one (check, algorithm,
topology) cell of the verification matrix.  Results serialise to plain
JSON dictionaries so CI can archive them and diff runs, and deserialise
back so the runner's cache can replay earlier verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: One virtual channel, as named in witnesses: (link index, vc class).
Witness = List[Tuple[int, int]]

#: Result statuses, in increasing order of severity.
STATUS_PASS = "pass"
STATUS_SKIPPED = "skipped"
STATUS_WAIVED = "waived"
STATUS_FAIL = "fail"
STATUS_ERROR = "error"

ALL_STATUSES = (
    STATUS_PASS,
    STATUS_SKIPPED,
    STATUS_WAIVED,
    STATUS_FAIL,
    STATUS_ERROR,
)


@dataclass
class CheckResult:
    """The verdict of one check on one (algorithm, topology) pair.

    * ``status`` — ``pass``, ``fail``, ``waived`` (the check failed but a
      registered waiver explains why that is acceptable), ``skipped``
      (check or algorithm not applicable) or ``error`` (the check itself
      crashed).
    * ``witness`` — for cycle checks, the resources along one offending
      cycle; empty otherwise.
    * ``counts`` — check-specific work counters (transitions walked,
      paths enumerated, ...), useful for spotting vacuous passes.
    """

    check: str
    algorithm: str
    topology: str
    status: str
    detail: str = ""
    waiver: Optional[str] = None
    witness: Witness = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        """True unless the result is an unwaived failure."""
        return self.status != STATUS_FAIL

    def to_dict(self) -> Dict[str, Any]:
        return {
            "check": self.check,
            "algorithm": self.algorithm,
            "topology": self.topology,
            "status": self.status,
            "detail": self.detail,
            "waiver": self.waiver,
            "witness": [list(resource) for resource in self.witness],
            "counts": dict(self.counts),
            "wall_time": round(self.wall_time, 6),
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CheckResult":
        return cls(
            check=data["check"],
            algorithm=data["algorithm"],
            topology=data["topology"],
            status=data["status"],
            detail=data.get("detail", ""),
            waiver=data.get("waiver"),
            witness=[
                (int(link), int(vc_class))
                for link, vc_class in data.get("witness", [])
            ],
            counts={
                key: int(value)
                for key, value in data.get("counts", {}).items()
            },
            wall_time=float(data.get("wall_time", 0.0)),
            cached=bool(data.get("cached", False)),
        )


def summarize(results: List[CheckResult]) -> Dict[str, int]:
    """Status histogram over *results* (every status key always present)."""
    summary = {status: 0 for status in ALL_STATUSES}
    for result in results:
        summary[result.status] += 1
    return summary


__all__ = [
    "ALL_STATUSES",
    "CheckResult",
    "STATUS_ERROR",
    "STATUS_FAIL",
    "STATUS_PASS",
    "STATUS_SKIPPED",
    "STATUS_WAIVED",
    "Witness",
    "summarize",
]
