"""Human-readable rendering of verification runs."""

from __future__ import annotations

from typing import List

from repro.analysis.verify.result import CheckResult
from repro.analysis.verify.runner import VerificationRun

#: Column order of the table.
_HEADER = ("topology", "algorithm", "check", "status", "time", "detail")

_STATUS_MARK = {
    "pass": "ok",
    "skipped": "--",
    "waived": "WAIVED",
    "fail": "FAIL",
    "error": "ERROR",
}


def _rows(results: List[CheckResult], max_detail: int) -> List[tuple]:
    rows = []
    for result in results:
        detail = result.detail.replace("\n", " ")
        if len(detail) > max_detail:
            detail = detail[: max_detail - 3] + "..."
        timing = "cached" if result.cached else f"{result.wall_time:.2f}s"
        rows.append(
            (
                result.topology,
                result.algorithm,
                result.check,
                _STATUS_MARK.get(result.status, result.status),
                timing,
                detail,
            )
        )
    return rows


def format_table(run: VerificationRun, max_detail: int = 60) -> str:
    """The full verdict matrix as a fixed-width text table."""
    rows = _rows(run.results, max_detail)
    widths = [
        max(len(_HEADER[column]), *(len(row[column]) for row in rows))
        if rows
        else len(_HEADER[column])
        for column in range(len(_HEADER))
    ]
    lines = [
        "  ".join(
            title.ljust(widths[column])
            for column, title in enumerate(_HEADER)
        ),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[column])
                for column, cell in enumerate(row)
            ).rstrip()
        )
    return "\n".join(lines)


def format_summary(run: VerificationRun) -> str:
    """One-line totals plus any waiver reasons worth surfacing."""
    summary = run.summary()
    counts = ", ".join(
        f"{count} {status}"
        for status, count in summary.items()
        if count
    )
    lines = [
        f"{len(run.results)} verdicts over "
        f"{', '.join(run.topologies)}: {counts or 'none'} "
        f"({run.wall_time:.2f}s)"
    ]
    for result in run.results:
        if result.status == "waived" and result.waiver:
            lines.append(
                f"waived: {result.algorithm}/{result.check} on "
                f"{result.topology} -- {result.waiver}"
            )
        elif result.status in ("fail", "error"):
            lines.append(
                f"{result.status.upper()}: {result.algorithm}/"
                f"{result.check} on {result.topology} -- {result.detail}"
            )
    return "\n".join(lines)


__all__ = ["format_summary", "format_table"]
