"""Deadlock-freedom verification framework (``repro-verify``).

A registry of named structural checks (:mod:`~repro.analysis.verify.checks`)
runs over every registered routing algorithm x a matrix of mesh/torus
topologies (:mod:`~repro.analysis.verify.runner`), producing structured
pass/fail/waived verdicts with witnesses (:mod:`~repro.analysis.verify.result`)
rendered as JSON or a text table (:mod:`~repro.analysis.verify.report`).
See ``docs/verification.md``.
"""

from repro.analysis.verify.checks import (
    CHECKS,
    Check,
    Outcome,
    WAIVERS,
    Waiver,
    evaluate,
    find_waiver,
    register_check,
)
from repro.analysis.verify.report import format_summary, format_table
from repro.analysis.verify.result import CheckResult, summarize
from repro.analysis.verify.runner import (
    DEFAULT_TOPOLOGIES,
    VerificationRun,
    parse_topology,
    run_verification,
    verification_code_hash,
)

__all__ = [
    "CHECKS",
    "Check",
    "CheckResult",
    "DEFAULT_TOPOLOGIES",
    "Outcome",
    "VerificationRun",
    "WAIVERS",
    "Waiver",
    "evaluate",
    "find_waiver",
    "format_summary",
    "format_table",
    "parse_topology",
    "register_check",
    "run_verification",
    "summarize",
    "verification_code_hash",
]
