"""Run the check battery over algorithms x topologies, with caching.

The runner sweeps every registered routing algorithm (or a chosen subset)
over a matrix of mesh/torus topologies, evaluates every applicable check,
and collects :class:`~repro.analysis.verify.result.CheckResult` verdicts.

Verdicts are pure functions of the source code, so they are cached keyed
on a hash of the packages the checks depend on (``repro.routing``,
``repro.topology``, ``repro.analysis``, ``repro.util``): a CI re-run on
an unchanged tree replays the cache instead of re-walking every state
space.  Any edit to those packages changes the hash and invalidates the
whole cache — conservative, but never stale.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro.analysis.verify.checks import CHECKS, evaluate
from repro.analysis.verify.result import (
    CheckResult,
    STATUS_ERROR,
    STATUS_FAIL,
    STATUS_SKIPPED,
    summarize,
)
from repro.routing.registry import iter_algorithms
from repro.topology.base import Topology
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus
from repro.util.errors import ConfigurationError

#: Result emitted when an algorithm refuses a topology altogether.
INSTANTIATE_CHECK = "instantiate"

#: Packages whose source determines every verdict.
_HASHED_SUBPACKAGES = ("routing", "topology", "analysis", "util")

#: Default verification matrix: small enough for exhaustive walks, wrap
#: and no-wrap variants of the paper's 2-D networks.
DEFAULT_TOPOLOGIES = ("torus:4x4", "mesh:4x4")

_CACHE_VERSION = 1


def parse_topology(spec: str) -> Tuple[str, Topology]:
    """Build the topology named by a ``kind:RxR[xR...]`` spec string.

    ``torus:4x4`` is a 4-ary 2-cube; ``mesh:3x3x3`` a 3-ary 3-mesh.  The
    radix must be uniform across dimensions (the paper's k-ary n-cubes).
    Returns the normalised label together with the topology.
    """
    kind, _, shape = spec.partition(":")
    kind = kind.strip().lower()
    if kind not in ("torus", "mesh") or not shape:
        raise ConfigurationError(
            f"bad topology spec {spec!r}; expected e.g. 'torus:4x4' "
            "or 'mesh:3x3x3'"
        )
    try:
        radices = [int(part) for part in shape.lower().split("x")]
    except ValueError:
        raise ConfigurationError(
            f"bad topology shape in {spec!r}; expected integers "
            "separated by 'x'"
        ) from None
    if len(set(radices)) != 1:
        raise ConfigurationError(
            f"non-uniform radix in {spec!r}; k-ary n-cubes need the "
            "same radix in every dimension"
        )
    radix, n_dims = radices[0], len(radices)
    topology = (
        Torus(radix, n_dims) if kind == "torus" else Mesh(radix, n_dims)
    )
    label = f"{kind}:" + "x".join(str(radix) for _ in range(n_dims))
    return label, topology


def verification_code_hash() -> str:
    """SHA-256 over the source files the verdicts depend on."""
    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for subpackage in _HASHED_SUBPACKAGES:
        directory = package_root / subpackage
        for path in sorted(directory.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()


@dataclass
class VerificationRun:
    """All verdicts of one runner invocation plus run metadata."""

    results: List[CheckResult] = field(default_factory=list)
    code_hash: str = ""
    topologies: List[str] = field(default_factory=list)
    wall_time: float = 0.0

    def summary(self) -> Dict[str, int]:
        return summarize(self.results)

    def ok(self, fail_on_error: bool = False) -> bool:
        """True when no unwaived failure (nor error, if requested) exists."""
        for result in self.results:
            if result.status == STATUS_FAIL:
                return False
            if fail_on_error and result.status == STATUS_ERROR:
                return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": _CACHE_VERSION,
            "code_hash": self.code_hash,
            "topologies": list(self.topologies),
            "wall_time": round(self.wall_time, 6),
            "summary": self.summary(),
            "results": [result.to_dict() for result in self.results],
        }


class ResultCache:
    """JSON-file cache of verdicts keyed on the verification code hash."""

    def __init__(self, path: Optional[str], code_hash: str) -> None:
        self.path = path
        self.code_hash = code_hash
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        if path is not None and os.path.exists(path):
            self._load(path)

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as stream:
                data = json.load(stream)
        except (OSError, ValueError):
            return  # unreadable cache: start fresh
        if (
            data.get("version") == _CACHE_VERSION
            and data.get("code_hash") == self.code_hash
        ):
            entries = data.get("results", {})
            if isinstance(entries, dict):
                self._entries = entries

    @staticmethod
    def _key(topology: str, algorithm: str, check: str) -> str:
        return f"{topology}|{algorithm}|{check}"

    def get(
        self, topology: str, algorithm: str, check: str
    ) -> Optional[CheckResult]:
        entry = self._entries.get(self._key(topology, algorithm, check))
        if entry is None:
            return None
        try:
            result = CheckResult.from_dict(entry)
        except (KeyError, TypeError, ValueError):
            return None
        result.cached = True
        return result

    def put(self, result: CheckResult) -> None:
        key = self._key(result.topology, result.algorithm, result.check)
        stored = result.to_dict()
        stored["cached"] = False  # replays mark themselves at load time
        self._entries[key] = stored
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "code_hash": self.code_hash,
            "results": self._entries,
        }
        with open(self.path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=1, sort_keys=True)
            stream.write("\n")


def run_verification(
    topology_specs: Optional[List[str]] = None,
    algorithms: Optional[List[str]] = None,
    checks: Optional[List[str]] = None,
    cache_path: Optional[str] = None,
) -> VerificationRun:
    """Evaluate the check battery and return every verdict.

    *topology_specs* defaults to :data:`DEFAULT_TOPOLOGIES`; *algorithms*
    defaults to the whole registry; *checks* defaults to every registered
    check.  *cache_path* enables the source-hash result cache.
    """
    started = time.perf_counter()
    specs = (
        list(topology_specs)
        if topology_specs
        else list(DEFAULT_TOPOLOGIES)
    )
    if checks is not None:
        unknown = [name for name in checks if name not in CHECKS]
        if unknown:
            raise ConfigurationError(
                f"unknown checks: {', '.join(unknown)}; "
                f"available: {', '.join(CHECKS)}"
            )
        selected = [CHECKS[name] for name in checks]
    else:
        selected = list(CHECKS.values())

    code_hash = verification_code_hash()
    cache = ResultCache(cache_path, code_hash)
    run = VerificationRun(code_hash=code_hash)

    for spec in specs:
        label, topology = parse_topology(spec)
        run.topologies.append(label)
        for name, algorithm, skip_reason in iter_algorithms(
            topology, algorithms
        ):
            if algorithm is None:
                run.results.append(
                    CheckResult(
                        check=INSTANTIATE_CHECK,
                        algorithm=name,
                        topology=label,
                        status=STATUS_SKIPPED,
                        detail=skip_reason or "not instantiable",
                    )
                )
                continue
            for check in selected:
                cached = cache.get(label, name, check.name)
                if cached is not None:
                    run.results.append(cached)
                    continue
                check_started = time.perf_counter()
                result = evaluate(check, algorithm, label)
                result.wall_time = time.perf_counter() - check_started
                run.results.append(result)
                if result.status != STATUS_ERROR:
                    cache.put(result)
    cache.save()
    run.wall_time = time.perf_counter() - started
    return run


__all__ = [
    "DEFAULT_TOPOLOGIES",
    "INSTANTIATE_CHECK",
    "ResultCache",
    "VerificationRun",
    "parse_topology",
    "run_verification",
    "verification_code_hash",
]
