"""Deadlock analysis and virtual-channel usage studies.

``dependency_graph`` builds the (virtual-)channel dependency graph a
routing algorithm induces and checks it for cycles; ``invariants``
machine-checks the Lemma-1 rank argument of the hop schemes and the
adaptivity/minimality contracts; ``vc_usage`` quantifies the
virtual-channel load balance behind the paper's nbc-vs-nhop discussion;
``verify`` packages all of it as the ``repro-verify`` check battery with
structured, cacheable verdicts (see ``docs/verification.md``).
"""

from repro.analysis.dependency_graph import (
    build_dependency_graph,
    find_cycle,
    is_acyclic,
)
from repro.analysis.invariants import (
    check_candidates_minimal,
    check_rank_monotonicity,
    count_minimal_paths,
    enumerate_paths,
)
from repro.analysis.vc_usage import (
    coefficient_of_variation,
    usage_fractions,
)
from repro.analysis.verify import run_verification

__all__ = [
    "build_dependency_graph",
    "check_candidates_minimal",
    "check_rank_monotonicity",
    "coefficient_of_variation",
    "count_minimal_paths",
    "enumerate_paths",
    "find_cycle",
    "is_acyclic",
    "run_verification",
    "usage_fractions",
]
