"""Uniform (random) traffic.

Each message's destination is drawn uniformly from all nodes other than the
source — the paper's model of massively parallel computations whose arrays
are hash-distributed.  The mean distance equals the network's average
diameter (8.03 on a 16x16 torus).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern


class UniformTraffic(TrafficPattern):
    """Destination uniform over all nodes except the source."""

    name = "uniform"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        self._num_nodes = topology.num_nodes

    def sample_destination(
        self, src: int, rng: random.Random
    ) -> Optional[int]:
        dst = rng.randrange(self._num_nodes - 1)
        if dst >= src:
            dst += 1  # skip the source without rejection sampling
        return dst

    def destination_distribution(self, src: int) -> Dict[int, float]:
        prob = 1.0 / (self._num_nodes - 1)
        return {
            dst: prob for dst in range(self._num_nodes) if dst != src
        }


__all__ = ["UniformTraffic"]
