"""Local traffic: destinations confined to a small neighbourhood.

The paper's local pattern on a 16x16 torus: node (i, j) sends with equal
probability to any node of the 7x7 submesh centred on it (offsets -3..+3
in each dimension, wrap-around), excluding itself — 48 candidate
destinations, a locality factor of 0.4, mean distance 3.5 hops, and
hop-class weights {1: .0833, 2: .1667, 3: .25, 4: .25, 5: .1667, 6: .0833}.

The neighbourhood radius is configurable; radius 3 reproduces the paper.
"""

from __future__ import annotations

import itertools
from typing import List

from repro.topology.base import Topology
from repro.topology.mesh import Mesh
from repro.traffic.base import UniformOverSetPattern
from repro.util.validation import require, require_positive


class LocalTraffic(UniformOverSetPattern):
    """Uniform destinations within a (2r+1)^n neighbourhood of the source."""

    name = "local"

    def __init__(self, topology: Topology, radius: int = 3) -> None:
        super().__init__(topology)
        require_positive(radius, "radius")
        require(
            2 * radius + 1 <= topology.radix,
            f"neighbourhood width {2 * radius + 1} exceeds radix "
            f"{topology.radix}",
        )
        self.radius = radius
        self._neighbourhoods: List[List[int]] = [
            self._build_neighbourhood(src)
            for src in range(topology.num_nodes)
        ]

    def _build_neighbourhood(self, src: int) -> List[int]:
        topo = self.topology
        coords = topo.coords(src)
        per_dim: List[List[int]] = []
        for dim in range(topo.n_dims):
            values = []
            for offset in range(-self.radius, self.radius + 1):
                value = coords[dim] + offset
                if isinstance(topo, Mesh):
                    if not 0 <= value < topo.radix:
                        continue
                else:
                    value %= topo.radix
                values.append(value)
            per_dim.append(values)
        neighbourhood = []
        for candidate in itertools.product(*per_dim):
            node = topo.node(tuple(candidate))
            if node != src:
                neighbourhood.append(node)
        return neighbourhood

    def candidate_destinations(self, src: int) -> List[int]:
        return self._neighbourhoods[src]

    def locality_fraction(self) -> float:
        """Neighbourhood span as a fraction of the radix (0.4 in the paper).

        The paper calls the 7x7 window on a 16-wide torus a "locality
        factor of 0.4": (2*3 + 1) / 16 = 0.4375, reported rounded.
        """
        return (2 * self.radius + 1) / self.topology.radix


__all__ = ["LocalTraffic"]
