"""Offered-load accounting (paper eq. (3)/(4)).

The paper normalizes throughput as average channel utilization

    rho = lambda * m_l * d_bar * N / C

where lambda is the per-node message rate (1/mean interarrival), m_l the
message length in flits, d_bar the mean hops per message, N the node count
and C the network channel count.  For a k-ary n-cube C/N = 2n, giving the
paper's simplified form rho = lambda * m_l * d_bar / (2n).

These helpers convert between a target offered load and the per-node
injection rate the arrival process needs.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.util.validation import require_positive


def channels_per_node(topology: Topology) -> float:
    """Network channels per node (2n on a torus; less on mesh boundaries)."""
    return topology.num_links / topology.num_nodes


def offered_load_to_rate(
    offered_load: float,
    topology: Topology,
    message_length: int,
    mean_distance: float,
) -> float:
    """Per-node message-generation probability for a target offered load.

    The rate is a per-cycle probability, so it is capped at 1.0: a node
    cannot generate more than one message per cycle.  Loads above
    :func:`max_offered_load` therefore all map to rate 1.0 — callers
    that care (the experiment runner does) must compare the requested
    load against :func:`max_offered_load` and report the load actually
    offered, rather than labelling a saturated point with a load the
    sources could never generate.
    """
    require_positive(message_length, "message_length")
    require_positive(mean_distance, "mean_distance")
    if offered_load < 0:
        raise ValueError(f"offered_load must be >= 0, got {offered_load}")
    rate = (
        offered_load
        * channels_per_node(topology)
        / (message_length * mean_distance)
    )
    return min(rate, 1.0)


def max_offered_load(
    topology: Topology,
    message_length: int,
    mean_distance: float,
) -> float:
    """Highest offered load the sources can actually generate.

    The geometric arrival process fires at most one message per node per
    cycle (rate 1.0); this is the offered channel utilization that limit
    corresponds to.  Requested loads above it are clamped by
    :func:`offered_load_to_rate`.
    """
    return rate_to_offered_load(1.0, topology, message_length, mean_distance)


def rate_to_offered_load(
    rate: float,
    topology: Topology,
    message_length: int,
    mean_distance: float,
) -> float:
    """Offered channel utilization implied by a per-node message rate."""
    require_positive(message_length, "message_length")
    require_positive(mean_distance, "mean_distance")
    return rate * message_length * mean_distance / channels_per_node(topology)


__all__ = [
    "channels_per_node",
    "max_offered_load",
    "offered_load_to_rate",
    "rate_to_offered_load",
]
