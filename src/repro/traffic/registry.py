"""Name-based construction of traffic patterns."""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Callable, List, Mapping

from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.local import LocalTraffic
from repro.traffic.permutations import (
    BitComplementTraffic,
    BitReversalTraffic,
    TransposeTraffic,
)
from repro.traffic.uniform import UniformTraffic
from repro.util.errors import ConfigurationError

# Immutable: the pattern set is closed at import time, so parent and
# ProcessPool workers always agree on it (DET005).
_FACTORIES: Mapping[str, Callable[..., TrafficPattern]] = MappingProxyType(
    {
        UniformTraffic.name: UniformTraffic,
        HotspotTraffic.name: HotspotTraffic,
        LocalTraffic.name: LocalTraffic,
        TransposeTraffic.name: TransposeTraffic,
        BitComplementTraffic.name: BitComplementTraffic,
        BitReversalTraffic.name: BitReversalTraffic,
    }
)


def available_patterns() -> List[str]:
    """All registered traffic-pattern names."""
    return sorted(_FACTORIES)


def make_traffic(
    name: str, topology: Topology, **options: Any
) -> TrafficPattern:
    """Instantiate the pattern called *name* on *topology*.

    Extra keyword options are forwarded to the pattern constructor
    (e.g. ``fraction=0.04`` for hotspot, ``radius=3`` for local).
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown traffic pattern {name!r}; "
            f"available: {', '.join(available_patterns())}"
        )
    return factory(topology, **options)


__all__ = ["available_patterns", "make_traffic"]
