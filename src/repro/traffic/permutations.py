"""Deterministic permutation traffic patterns.

These extend the paper: Glass & Ni report that turn-model algorithms such
as north-last beat e-cube on non-uniform patterns like matrix transpose,
and the paper explicitly flags that counter-claim (Section 3.4).  The
permutations here let the claim be tested with this simulator.

Every source sends all its messages to one fixed destination.  Sources
mapped to themselves generate no traffic.
"""

from __future__ import annotations

import random
from abc import abstractmethod
from typing import Dict, Optional

from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern
from repro.util.validation import require


class PermutationTraffic(TrafficPattern):
    """Base for fixed source->destination permutation patterns."""

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        self._mapping = [
            self.permute(src) for src in range(topology.num_nodes)
        ]

    @abstractmethod
    def permute(self, src: int) -> int:
        """The fixed destination of *src* (may equal *src*)."""

    def sample_destination(
        self, src: int, rng: random.Random
    ) -> Optional[int]:
        dst = self._mapping[src]
        return None if dst == src else dst

    def destination_distribution(self, src: int) -> Dict[int, float]:
        dst = self._mapping[src]
        if dst == src:
            return {}
        return {dst: 1.0}


class TransposeTraffic(PermutationTraffic):
    """Matrix transpose: (x1, x0) -> (x0, x1); 2-D networks only."""

    name = "transpose"

    def __init__(self, topology: Topology) -> None:
        require(
            topology.n_dims == 2,
            "transpose traffic requires a 2-dimensional network",
        )
        super().__init__(topology)

    def permute(self, src: int) -> int:
        coords = self.topology.coords(src)
        return self.topology.node((coords[1], coords[0]))


class BitComplementTraffic(PermutationTraffic):
    """Coordinate complement: x_i -> (k - 1) - x_i in every dimension."""

    name = "bit-complement"

    def permute(self, src: int) -> int:
        radix = self.topology.radix
        coords = self.topology.coords(src)
        return self.topology.node(
            tuple(radix - 1 - coord for coord in coords)
        )


class BitReversalTraffic(PermutationTraffic):
    """Bit-reversal of the node id (radix must be a power of two)."""

    name = "bit-reversal"

    def __init__(self, topology: Topology) -> None:
        total_bits = (topology.num_nodes - 1).bit_length()
        require(
            2**total_bits == topology.num_nodes,
            "bit-reversal traffic requires a power-of-two node count",
        )
        self._total_bits = total_bits
        super().__init__(topology)

    def permute(self, src: int) -> int:
        reversed_id = 0
        for bit in range(self._total_bits):
            if src & (1 << bit):
                reversed_id |= 1 << (self._total_bits - 1 - bit)
        return reversed_id


__all__ = [
    "BitComplementTraffic",
    "BitReversalTraffic",
    "PermutationTraffic",
    "TransposeTraffic",
]
