"""The traffic-pattern interface.

A pattern answers two questions:

* sampling — "a message was just generated at node *s*; where is it going?"
* analysis — "what is the exact destination distribution from node *s*?"

The second supports the paper's stratified statistics: the hop-class
weights used by the convergence estimator (Section 3, footnote 3) are the
exact probabilities that a generated message needs h hops, derived here
from the destination distribution rather than estimated from samples.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence

import numpy as np

from repro.topology.base import Topology


class TrafficPattern(ABC):
    """Destination selection for newly generated messages."""

    #: Short identifier used by the registry and result tables.
    name: str = "abstract"

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._hop_class_weights: Optional[Dict[int, float]] = None
        self._mean_distance: Optional[float] = None
        self._destination_table: Optional[np.ndarray] = None

    @abstractmethod
    def sample_destination(
        self, src: int, rng: random.Random
    ) -> Optional[int]:
        """Draw a destination for a message generated at *src*.

        Returns None when the pattern generates no message from *src*
        (e.g. a permutation pattern mapping *src* to itself).
        """

    @abstractmethod
    def destination_distribution(self, src: int) -> Dict[int, float]:
        """Exact destination probabilities for messages from *src*.

        Probabilities sum to 1 over destinations != src (self-addressed
        messages are never generated).  An empty dict means *src* never
        generates messages.
        """

    # -- derived analytics -----------------------------------------------------

    def hop_class_weights(self) -> Dict[int, float]:
        """P(message needs h hops), averaged over source nodes.

        These are the stratum weights of the paper's population-mean
        convergence estimator: e.g. 0.0157 for hop-class 1 and 0.0039 for
        hop-class 16 under uniform traffic on a 16x16 torus, and
        0.0833/0.1667/0.25 for classes {1,6}/{2,5}/{3,4} under local
        traffic.
        """
        if self._hop_class_weights is None:
            topo = self.topology
            weights: Dict[int, float] = {}
            active_sources = 0
            for src in range(topo.num_nodes):
                dist = self.destination_distribution(src)
                if not dist:
                    continue
                active_sources += 1
                for dst, prob in dist.items():
                    hops = topo.distance(src, dst)
                    weights[hops] = weights.get(hops, 0.0) + prob
            if active_sources:
                for hops in weights:
                    weights[hops] /= active_sources
            self._hop_class_weights = weights
        return dict(self._hop_class_weights)

    def mean_distance(self) -> float:
        """Expected hops of a generated message (the paper's d-bar)."""
        if self._mean_distance is None:
            weights = self.hop_class_weights()
            self._mean_distance = sum(
                hops * weight for hops, weight in weights.items()
            )
        return self._mean_distance

    # -- batched sampling ------------------------------------------------------

    def destination_table(self) -> np.ndarray:
        """Per-source cumulative destination distribution, [N, N] float64.

        Row *s* holds ``P(dst <= d | generated at s)`` over destination
        index *d*, built once from :meth:`destination_distribution` (so
        it is exact for every pattern, including renormalized ones like
        hotspot).  A source that never generates has an all-zero row —
        :func:`sample_destinations` maps it to the sentinel ``-1``, the
        batched counterpart of :meth:`sample_destination` returning
        ``None``.  Cached per pattern instance.
        """
        if self._destination_table is None:
            n = self.topology.num_nodes
            probs = np.zeros((n, n), dtype=np.float64)
            for src in range(n):
                for dst, prob in self.destination_distribution(src).items():
                    probs[src, dst] = prob
            cum = np.cumsum(probs, axis=1)
            # Normalize away cumsum float drift: every active row must
            # end at exactly 1.0, or a uniform drawn in [cum[-1], 1)
            # would fall past the table and silently drop a message.
            active = cum[:, -1] > 0.0
            cum[active] /= cum[active, -1][:, None]
            self._destination_table = cum
        return self._destination_table

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.topology!r})"


def sample_destinations(
    table: np.ndarray, srcs: np.ndarray, gen: np.random.Generator
) -> np.ndarray:
    """Batched destination draw for the sources *srcs*.

    *table* is a :meth:`TrafficPattern.destination_table`; one uniform
    per source indexes its cumulative row (``dst`` is the smallest index
    whose cumulative probability exceeds the draw).  Sources whose row
    carries no probability mass (never generate) yield ``-1``.  The
    per-(src, dst) probabilities match the scalar
    :meth:`~TrafficPattern.sample_destination` exactly; only the stream
    of uniforms differs (relaxed identity).
    """
    return destinations_from_uniforms(table, srcs, gen.random(srcs.shape[0]))


# repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
def destinations_from_uniforms(
    table: np.ndarray, srcs: np.ndarray, u: np.ndarray
) -> np.ndarray:
    """:func:`sample_destinations` over caller-supplied uniforms *u*.

    Split out so the batch engine can serve the uniforms from a
    per-lane prefetch buffer without changing the draw-to-destination
    mapping.
    """
    rows = table[srcs]
    drawn = (u[:, None] >= rows).sum(axis=1)
    return np.where(drawn < table.shape[1], drawn, -1)


class UniformOverSetPattern(TrafficPattern):
    """Helper base: destinations drawn uniformly from a per-source set."""

    def candidate_destinations(self, src: int) -> Sequence[int]:
        """The (non-empty) set of allowed destinations for *src*."""
        raise NotImplementedError

    def sample_destination(
        self, src: int, rng: random.Random
    ) -> Optional[int]:
        candidates = self.candidate_destinations(src)
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]

    def destination_distribution(self, src: int) -> Dict[int, float]:
        candidates = self.candidate_destinations(src)
        if not candidates:
            return {}
        prob = 1.0 / len(candidates)
        return {dst: prob for dst in candidates}


__all__ = [
    "TrafficPattern",
    "UniformOverSetPattern",
    "destinations_from_uniforms",
    "sample_destinations",
]
