"""Trace-driven workloads (paper §4 future work).

The paper closes by planning to evaluate the routing algorithms on
*communication traces obtained from computations on parallel processors*.
This module implements that pipeline: a :class:`MessageTrace` is a sorted
sequence of (cycle, src, dst) send events, loadable from a simple text
format, and two synthetic generators produce traces with the structure of
classic message-passing programs:

* :func:`stencil_trace` — iterative nearest-neighbour exchange (the
  communication pattern of Jacobi/red-black stencil solvers);
* :func:`reduction_trace` — repeated dimension-ordered tree reductions to
  a root (the pattern of global sums and barriers).

The engine replays a trace with blocking-send semantics: an event refused
by congestion control retries every cycle until admitted, preserving the
program's per-node send order.  The natural figure of merit is the
*makespan* — see :mod:`repro.experiments.trace_runner`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, TextIO, Tuple

from repro.topology.base import Topology
from repro.util.errors import ConfigurationError
from repro.util.validation import require, require_positive

#: One send: (issue cycle, source node, destination node).
TraceEvent = Tuple[int, int, int]


class MessageTrace:
    """An immutable, time-sorted sequence of send events."""

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        ordered: List[TraceEvent] = sorted(events)
        for cycle, src, dst in ordered:
            require(cycle >= 0, f"event cycle must be >= 0, got {cycle}")
            require(src != dst, f"self-addressed event at node {src}")
        self._events: Tuple[TraceEvent, ...] = tuple(ordered)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    @property
    def horizon(self) -> int:
        """Issue cycle of the last event (0 for an empty trace)."""
        return self._events[-1][0] if self._events else 0

    def validate_for(self, topology: Topology) -> None:
        """Check every node id fits *topology*."""
        for cycle, src, dst in self._events:
            if not (0 <= src < topology.num_nodes
                    and 0 <= dst < topology.num_nodes):
                raise ConfigurationError(
                    f"trace event ({cycle}, {src}, {dst}) references a "
                    f"node outside the {topology.num_nodes}-node network"
                )

    # -- text format: "# comment" lines and "cycle src dst" triples -------

    @classmethod
    def from_text(cls, stream: TextIO) -> "MessageTrace":
        events: List[TraceEvent] = []
        for line_number, line in enumerate(stream, start=1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            parts = body.split()
            if len(parts) != 3:
                raise ConfigurationError(
                    f"trace line {line_number}: expected 'cycle src dst', "
                    f"got {body!r}"
                )
            try:
                cycle, src, dst = (int(part) for part in parts)
            except ValueError as exc:
                raise ConfigurationError(
                    f"trace line {line_number}: non-integer field in "
                    f"{body!r}"
                ) from exc
            events.append((cycle, src, dst))
        return cls(events)

    @classmethod
    def from_file(cls, path: str) -> "MessageTrace":
        with open(path) as stream:
            return cls.from_text(stream)

    def to_text(self, stream: TextIO) -> None:
        stream.write("# cycle src dst\n")
        for cycle, src, dst in self._events:
            stream.write(f"{cycle} {src} {dst}\n")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MessageTrace({len(self)} events, horizon={self.horizon})"


def stencil_trace(
    topology: Topology, iterations: int, period: int
) -> MessageTrace:
    """Nearest-neighbour exchange, one round every *period* cycles.

    Every iteration, every node sends one message to each of its
    neighbours — the halo exchange of an iterative stencil solver.
    """
    require_positive(iterations, "iterations")
    require_positive(period, "period")
    events: List[TraceEvent] = []
    for iteration in range(iterations):
        cycle = iteration * period
        for node in range(topology.num_nodes):
            for link in topology.out_links(node):
                events.append((cycle, node, link.dst))
    return MessageTrace(events)


def reduction_trace(
    topology: Topology, root: int, rounds: int, period: int
) -> MessageTrace:
    """Dimension-ordered tree reduction to *root*, repeated *rounds* times.

    Within each round, nodes reduce along dimension 0 first, then
    dimension 1, ... — each step's senders forward to the node with their
    coordinate in that dimension collapsed to the root's, staggered one
    cycle per ring position so the trace has the serialization a real
    reduction exhibits.
    """
    require(0 <= root < topology.num_nodes, "root out of range")
    require_positive(rounds, "rounds")
    require_positive(period, "period")
    root_coords = topology.coords(root)
    events: List[TraceEvent] = []
    for round_index in range(rounds):
        base = round_index * period
        offset = 0
        for dim in range(topology.n_dims):
            for node in range(topology.num_nodes):
                coords = topology.coords(node)
                # Participates in this step iff all lower dims collapsed.
                if any(
                    coords[d] != root_coords[d] for d in range(dim)
                ):
                    continue
                if coords[dim] == root_coords[dim]:
                    continue
                target = list(coords)
                target[dim] = root_coords[dim]
                events.append(
                    (base + offset, node, topology.node(tuple(target)))
                )
            offset += 1
    return MessageTrace(events)


__all__ = [
    "MessageTrace",
    "TraceEvent",
    "reduction_trace",
    "stencil_trace",
]
