"""Message arrival processes.

The paper uses geometrically distributed interarrival times: in discrete
time that is a Bernoulli generation trial per node per cycle with success
probability equal to the per-node injection rate.  For efficiency the
process is simulated gap-wise — one geometric draw per message instead of
one uniform draw per node per cycle — which is statistically identical.
Pending arrivals live in a min-heap keyed by due cycle.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import List, Tuple

import numpy as np

from repro.util.validation import require_probability

#: Sentinel gap for a zero-rate process (effectively "never").
_NEVER = 1 << 60


class GeometricArrivals:
    """Per-node geometric interarrival schedule.

    ``rate`` is the probability a node generates a message in any given
    cycle (messages per node per cycle).
    """

    __slots__ = ("num_nodes", "rate", "next_due", "_heap", "_started")

    def __init__(self, num_nodes: int, rate: float) -> None:
        require_probability(rate, "rate")
        self.num_nodes = num_nodes
        self.rate = rate
        #: Cycle of the earliest pending arrival — a cheap peek the engine
        #: reads every cycle (and the idle fast-forward jumps to) without
        #: touching the heap.
        self.next_due = _NEVER
        self._heap: List[Tuple[int, int]] = []  # (due_cycle, node)
        self._started = False

    def start(self, now: int, rng: random.Random) -> None:
        """Schedule every node's first arrival at or after cycle *now*."""
        self._started = True
        self._heap = [
            (now + self._gap(rng) - 1, node)
            for node in range(self.num_nodes)
        ]
        heapq.heapify(self._heap)
        self.next_due = self._heap[0][0] if self._heap else _NEVER

    def _gap(self, rng: random.Random) -> int:
        """One geometric interarrival gap (support 1, 2, 3, ...)."""
        if self.rate >= 1.0:
            return 1
        if self.rate <= 0.0:
            return _NEVER
        u = rng.random()
        # Inverse-CDF of the geometric distribution on {1, 2, ...}.
        return int(math.log(1.0 - u) / math.log(1.0 - self.rate)) + 1

    def pop_due(self, now: int, rng: random.Random) -> List[int]:
        """Nodes generating a message at cycle *now*; reschedules each.

        A node can appear multiple times if its gaps are shorter than the
        polling interval (only possible at extreme rates).
        """
        assert self._started, "call start() before polling arrivals"
        due: List[int] = []
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, node = heapq.heappop(heap)
            due.append(node)
            heapq.heappush(heap, (now + self._gap(rng), node))
        self.next_due = heap[0][0] if heap else _NEVER
        return due

    def reseed(self, now: int, rng: random.Random) -> None:
        """Re-draw all pending gaps from a fresh stream.

        Called between sampling periods when the paper's methodology
        replaces the random-number streams.
        """
        self._heap = [
            (now + self._gap(rng), node) for _, node in self._heap
        ]
        heapq.heapify(self._heap)
        self.next_due = self._heap[0][0] if self._heap else _NEVER


def geometric_gaps(
    count: int, rate: float, gen: "np.random.Generator"
) -> np.ndarray:
    """*count* geometric interarrival gaps (support 1, 2, 3, ...).

    The batched inverse-CDF transform — the same per-draw math as
    :meth:`GeometricArrivals._gap`, over a numpy Generator.  Shared by
    :class:`BatchedGeometricArrivals` and the batch engine's lane-fused
    arrival kernel.
    """
    if rate >= 1.0:
        return np.ones(count, dtype=np.int64)
    if rate <= 0.0:
        return np.full(count, _NEVER, dtype=np.int64)
    u = gen.random(count)
    gaps = np.log1p(-u) / math.log(1.0 - rate)
    return gaps.astype(np.int64) + 1


#: Draws prefetched per buffer refill (amortizes Generator call and
#: transform overhead across ~a hundred per-lane polls).
_BUFFER_CHUNK = 4096


class GapBuffer:
    """Buffered :func:`geometric_gaps` over one lane's arrival stream.

    ``take(k)`` yields exactly the gaps ``geometric_gaps(k, ...)``
    would — numpy Generators consume the underlying stream uniformly,
    so prefetching a chunk and serving slices preserves the draw
    sequence bit for bit while replacing per-poll Generator calls and
    inverse-CDF transforms with one buffered refill per ~hundred
    polls.  Consumption sizes depend only on the owning lane's own
    schedule, keeping arrival draws lane-composition-independent.
    """

    __slots__ = ("rate", "gen", "_buf", "_pos")

    def __init__(
        self, rate: float, gen: "np.random.Generator"
    ) -> None:
        self.rate = rate
        self.gen = gen
        self._buf = np.empty(0, dtype=np.int64)
        self._pos = 0

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def take(self, count: int) -> np.ndarray:
        """The next *count* gaps (a read-only view into the buffer)."""
        if self.rate >= 1.0:
            return np.ones(count, dtype=np.int64)
        if self.rate <= 0.0:
            return np.full(count, _NEVER, dtype=np.int64)
        pos = self._pos
        if pos + count > self._buf.shape[0]:
            fresh = geometric_gaps(
                max(_BUFFER_CHUNK, count), self.rate, self.gen
            )
            self._buf = np.concatenate([self._buf[pos:], fresh])
            self._pos = pos = 0
        self._pos = pos + count
        return self._buf[pos:pos + count]


class UniformBuffer:
    """Buffered ``Generator.random`` draws, served in stream order.

    Same contract as :class:`GapBuffer` but for raw uniforms (the
    destination draws): ``take(k)`` returns exactly the uniforms
    ``gen.random(k)`` would.
    """

    __slots__ = ("gen", "_buf", "_pos")

    def __init__(self, gen: "np.random.Generator") -> None:
        self.gen = gen
        self._buf = np.empty(0, dtype=np.float64)
        self._pos = 0

    # repro: hot — per-cycle path (HOT001: no allocation-heavy constructs)
    def take(self, count: int) -> np.ndarray:
        """The next *count* uniforms (a read-only view)."""
        pos = self._pos
        if pos + count > self._buf.shape[0]:
            fresh = self.gen.random(max(_BUFFER_CHUNK, count))
            self._buf = np.concatenate([self._buf[pos:], fresh])
            self._pos = pos = 0
        self._pos = pos + count
        return self._buf[pos:pos + count]


class BatchedGeometricArrivals:
    """Vectorized counterpart of :class:`GeometricArrivals`.

    Same geometric interarrival process, but the per-node due cycles live
    in one numpy array and every redraw is a batched inverse-CDF over a
    numpy :class:`~numpy.random.Generator` — one vector draw per poll
    instead of one scalar draw per message.  Used by the batch backend's
    relaxed identity mode; the draw *order* differs from the heap-based
    scalar process (statistically equivalent, not bit-identical).
    """

    __slots__ = ("num_nodes", "rate", "next_due", "_due", "_started")

    def __init__(self, num_nodes: int, rate: float) -> None:
        require_probability(rate, "rate")
        self.num_nodes = num_nodes
        self.rate = rate
        self.next_due = _NEVER
        self._due = np.full(num_nodes, _NEVER, dtype=np.int64)
        self._started = False

    def _gaps(self, count: int, gen: np.random.Generator) -> np.ndarray:
        return geometric_gaps(count, self.rate, gen)

    def start(self, now: int, gen: np.random.Generator) -> None:
        """Schedule every node's first arrival at or after cycle *now*."""
        self._started = True
        self._due = now - 1 + self._gaps(self.num_nodes, gen)
        self.next_due = int(self._due.min()) if self.num_nodes else _NEVER

    def pop_due(self, now: int, gen: np.random.Generator) -> np.ndarray:
        """Nodes generating a message at cycle *now*; reschedules each.

        Returns the due node ids in ascending node order (the scalar
        process yields them in heap order — a relaxed-identity
        difference).  Gaps are >= 1, so a node fires at most once per
        poll.
        """
        assert self._started, "call start() before polling arrivals"
        due = self._due
        nodes = np.nonzero(due <= now)[0]
        if nodes.shape[0]:
            due[nodes] = now + self._gaps(nodes.shape[0], gen)
            self.next_due = int(due.min())
        return nodes

    def reseed(self, now: int, gen: np.random.Generator) -> None:
        """Re-draw all pending gaps from a fresh stream."""
        self._due = now + self._gaps(self.num_nodes, gen)
        self.next_due = int(self._due.min()) if self.num_nodes else _NEVER


__all__ = [
    "BatchedGeometricArrivals",
    "GapBuffer",
    "GeometricArrivals",
    "UniformBuffer",
    "geometric_gaps",
]
