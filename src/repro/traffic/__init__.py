"""Traffic patterns, arrival processes, and offered-load accounting.

The paper evaluates uniform, hotspot, and local patterns (Section 3); the
permutation patterns (matrix transpose, bit-complement, bit-reversal) are
included because the paper cites Glass & Ni's claim that turn-model
algorithms win on such non-uniform patterns — an extension experiment.
"""

from repro.traffic.arrivals import GeometricArrivals
from repro.traffic.base import TrafficPattern
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.load import (
    offered_load_to_rate,
    rate_to_offered_load,
)
from repro.traffic.local import LocalTraffic
from repro.traffic.permutations import (
    BitComplementTraffic,
    BitReversalTraffic,
    TransposeTraffic,
)
from repro.traffic.registry import available_patterns, make_traffic
from repro.traffic.trace import (
    MessageTrace,
    reduction_trace,
    stencil_trace,
)
from repro.traffic.uniform import UniformTraffic

__all__ = [
    "BitComplementTraffic",
    "BitReversalTraffic",
    "GeometricArrivals",
    "HotspotTraffic",
    "LocalTraffic",
    "MessageTrace",
    "TrafficPattern",
    "TransposeTraffic",
    "UniformTraffic",
    "available_patterns",
    "make_traffic",
    "offered_load_to_rate",
    "rate_to_offered_load",
    "reduction_trace",
    "stencil_trace",
]
