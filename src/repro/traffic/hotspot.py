"""Hotspot traffic: uniform background plus a favoured node.

The paper's construction (Section 3): with hotspot percentage *h*, a new
message goes to the hotspot node with probability ``h + (1 - h)/N`` and to
each other node with probability ``(1 - h)/N``.  For h = 4% on a 16x16
torus that is 0.0438 to the hotspot and 0.0038 elsewhere — the hotspot
receives about 11.5x the traffic of any other node.  Self-addressed draws
are re-drawn.  The default hotspot node is (15, 15), the choice for which
the paper reports nlast doing best.

Multiple hotspots — mentioned but not simulated in the paper — are
supported by passing several nodes; *h* is then split evenly among them.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern
from repro.util.validation import require, require_probability


def default_hotspot_node(topology: Topology) -> int:
    """The paper's default hotspot: the node with maximal coordinates."""
    return topology.node(tuple([topology.radix - 1] * topology.n_dims))


class HotspotTraffic(TrafficPattern):
    """Uniform traffic with extra probability mass on hotspot node(s)."""

    name = "hotspot"

    def __init__(
        self,
        topology: Topology,
        fraction: float = 0.04,
        hotspots: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(topology)
        require_probability(fraction, "fraction")
        if hotspots is None:
            hotspots = (default_hotspot_node(topology),)
        require(len(hotspots) > 0, "at least one hotspot node required")
        for node in hotspots:
            require(
                0 <= node < topology.num_nodes,
                f"hotspot node {node} out of range",
            )
        self.fraction = fraction
        self.hotspots: Tuple[int, ...] = tuple(hotspots)
        self._num_nodes = topology.num_nodes

    def sample_destination(
        self, src: int, rng: random.Random
    ) -> Optional[int]:
        while True:
            if rng.random() < self.fraction:
                dst = self.hotspots[rng.randrange(len(self.hotspots))]
            else:
                dst = rng.randrange(self._num_nodes)
            if dst != src:
                return dst

    def destination_distribution(self, src: int) -> Dict[int, float]:
        base = (1.0 - self.fraction) / self._num_nodes
        extra = self.fraction / len(self.hotspots)
        dist = {}
        for dst in range(self._num_nodes):
            if dst == src:
                continue
            prob = base
            if dst in self.hotspots:
                prob += extra
            dist[dst] = prob
        # Renormalize for the excluded (re-drawn) self-addressed mass.
        total = sum(dist.values())
        return {dst: prob / total for dst, prob in dist.items()}


__all__ = ["HotspotTraffic", "default_hotspot_node"]
