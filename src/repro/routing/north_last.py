"""The partially adaptive north-last algorithm of Glass & Ni.

Two-dimensional networks only.  With coordinates written ``(x1, x0)`` as in
the paper, "north" is travel in the negative direction of dimension 1.  The
turn model forbids turning *out of* a north hop, which for minimal routing
collapses to the rule the paper states: a message that must travel north
corrects dimension 0 completely first and then dimension 1 (pure e-cube
order, no adaptivity); every other message may route adaptively over its
minimal links, with northward half-ring ties resolved southward so the
message keeps its adaptivity.

Torus reconstruction (the paper gives no torus details; Glass & Ni define
the turn model on meshes and sketch the k-ary n-cube extension): virtual-
channel class = *number of wrap-around edges the message has crossed so
far*, giving ``n_dims + 1`` classes (3 on a 2-D torus).  This is
deadlock-free:

* a message's class is non-decreasing along its path, and the hop that
  crosses a wrap edge still uses the pre-crossing class, so each wrap edge
  is a terminal channel within its class — dependencies out of it go to
  the next class;
* the remaining class-c channels contain no wrap edges, so they form a
  mesh on which every message segment is monotone and the only turns are
  {+-x <-> south} (adaptive messages) and dimension-ordered turns (e-cube
  mode) — a subset of the north-last turn set, which Glass & Ni prove
  acyclic on meshes.

The within-mesh argument plus the strictly layered class transitions make
the full channel dependency graph acyclic; the analysis module
machine-checks this on small tori.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.routing.base import RouteChoice, RoutingAlgorithm
from repro.topology.base import Link, Topology
from repro.topology.mesh import Mesh
from repro.util.errors import RoutingError

_DIM_X = 0  # "east/west" dimension, corrected first when going north
_DIM_Y = 1  # "north/south" dimension; north = -1 direction


class _NorthLastState:
    """Per-message mode and wrap-crossing count."""

    __slots__ = ("ecube_order", "wraps")

    def __init__(self, ecube_order: bool) -> None:
        self.ecube_order = ecube_order
        self.wraps = 0


class NorthLast(RoutingAlgorithm):
    """Glass & Ni's north-last turn-model algorithm for 2-D networks."""

    name = "nlast"
    fully_adaptive = False
    adaptive = True

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        if topology.n_dims != 2:
            raise RoutingError(
                "north-last is defined for two-dimensional networks; "
                f"got n_dims={topology.n_dims}"
            )
        self._is_mesh = isinstance(topology, Mesh)

    @property
    def num_virtual_channels(self) -> int:
        # One class per possible wrap crossing, plus the initial class.
        return 1 if self._is_mesh else self.topology.n_dims + 1

    def new_state(self, src: int, dst: int) -> _NorthLastState:
        directions = self.topology.minimal_directions(src, dst, _DIM_Y)
        # Only an unavoidable north leg (unique minimal direction -1)
        # forces e-cube order; a half-ring tie is resolved southward.
        return _NorthLastState(ecube_order=directions == (-1,))

    def advance(
        self,
        state: _NorthLastState,
        current: int,
        link: Link,
        vc_class: int,
    ) -> _NorthLastState:
        if link.wraps:
            state.wraps += 1
        return state

    def state_key(self, state: _NorthLastState) -> Optional[Hashable]:
        """Candidates depend only on the mode and wrap count."""
        return (state.ecube_order, state.wraps)

    def candidates(
        self, state: _NorthLastState, current: int, dst: int
    ) -> List[RouteChoice]:
        self._check_not_delivered(current, dst)
        vc_class = 0 if self._is_mesh else state.wraps
        if state.ecube_order:
            return [self._ecube_order_hop(current, dst, vc_class)]
        return self._adaptive_hops(current, dst, vc_class)

    def _ecube_order_hop(
        self, current: int, dst: int, vc_class: int
    ) -> RouteChoice:
        topo = self.topology
        for dim in (_DIM_X, _DIM_Y):
            directions = topo.minimal_directions(current, dst, dim)
            if not directions:
                continue
            direction = directions[0]  # tie at k/2 resolves to +
            return (topo.out_link(current, dim, direction), vc_class)
        raise AssertionError("unreachable: current != dst but no hop found")

    def _adaptive_hops(
        self, current: int, dst: int, vc_class: int
    ) -> List[RouteChoice]:
        topo = self.topology
        choices: List[RouteChoice] = []
        for direction in topo.minimal_directions(current, dst, _DIM_X):
            choices.append(
                (topo.out_link(current, _DIM_X, direction), vc_class)
            )
        if 1 in topo.minimal_directions(current, dst, _DIM_Y):
            # South only: an adaptive message never turns north.
            choices.append((topo.out_link(current, _DIM_Y, 1), vc_class))
        return choices

    def message_class(
        self, src: int, dst: int, state: _NorthLastState
    ) -> Hashable:
        """Class = canonical first (link, vc) — per the paper's footnote."""
        if state.ecube_order:
            link, vc_class = self._ecube_order_hop(src, dst, 0)
        else:
            link, vc_class = self._adaptive_hops(src, dst, 0)[0]
        return (link.index, vc_class)


__all__ = ["NorthLast"]
