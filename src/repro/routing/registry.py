"""Name-based construction of routing algorithms.

The experiment harness, CLI, benchmarks and examples all refer to
algorithms by the paper's short names.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.routing.base import RoutingAlgorithm
from repro.routing.bonus_cards import NegativeHopBonusCards
from repro.routing.ecube import ECube
from repro.routing.negative_hop import NegativeHop
from repro.routing.north_last import NorthLast
from repro.routing.positive_hop import PositiveHop
from repro.routing.two_power_n import TwoPowerN
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError, RoutingError

# register_algorithm() extends this table at import time only, so the
# parent and ProcessPool workers build identical copies by importing the
# same modules.
# repro-lint: ignore[DET005] write-once registry, extended at import only
_FACTORIES: Dict[str, Callable[[Topology], RoutingAlgorithm]] = {
    ECube.name: ECube,
    NorthLast.name: NorthLast,
    TwoPowerN.name: TwoPowerN,
    PositiveHop.name: PositiveHop,
    NegativeHop.name: NegativeHop,
    NegativeHopBonusCards.name: NegativeHopBonusCards,
}

#: The paper's six algorithms, in its presentation order.
ALGORITHM_NAMES = ("ecube", "nlast", "2pn", "phop", "nhop", "nbc")


def available_algorithms() -> List[str]:
    """All registered algorithm names."""
    return sorted(_FACTORIES)


def make_algorithm(name: str, topology: Topology) -> RoutingAlgorithm:
    """Instantiate the algorithm called *name* on *topology*.

    A ``x<lanes>`` suffix multiplies the algorithm's virtual channels into
    interchangeable lanes (the paper's §4 extra-virtual-channel study):
    ``"ecubex2"`` is e-cube with two lanes per dateline class.

    >>> from repro.topology import Torus
    >>> make_algorithm("phop", Torus(16, 2)).num_virtual_channels
    17
    >>> make_algorithm("ecubex4", Torus(16, 2)).num_virtual_channels
    8
    """
    factory = _FACTORIES.get(name)
    if factory is not None:
        return factory(topology)
    match = re.fullmatch(r"(?P<base>.+)x(?P<lanes>\d+)", name)
    if match and match.group("base") in _FACTORIES:
        from repro.routing.multilane import with_lanes

        inner = _FACTORIES[match.group("base")](topology)
        return with_lanes(inner, int(match.group("lanes")))
    raise ConfigurationError(
        f"unknown routing algorithm {name!r}; "
        f"available: {', '.join(available_algorithms())} "
        "(optionally with a x<lanes> suffix, e.g. 'ecubex2')"
    )


def iter_algorithms(
    topology: Topology, names: Optional[List[str]] = None
) -> Iterator[Tuple[str, Optional[RoutingAlgorithm], Optional[str]]]:
    """Instantiate every registered algorithm on *topology*, tolerantly.

    Yields ``(name, algorithm, None)`` for every algorithm that can be
    built on *topology* and ``(name, None, reason)`` for the ones that
    refuse it (e.g. nlast on a 3-D network, nhop on an odd-radix torus).
    Used by the verification runner, which must sweep the whole registry
    without dying on the first inapplicable combination.
    """
    for name in names if names is not None else available_algorithms():
        try:
            yield name, make_algorithm(name, topology), None
        except RoutingError as exc:
            yield name, None, str(exc)


def register_algorithm(
    name: str, factory: Callable[[Topology], RoutingAlgorithm]
) -> None:
    """Register a user-defined algorithm (see examples/custom_algorithm.py)."""
    if name in _FACTORIES:
        raise ConfigurationError(f"algorithm {name!r} is already registered")
    _FACTORIES[name] = factory


__all__ = [
    "ALGORITHM_NAMES",
    "available_algorithms",
    "iter_algorithms",
    "make_algorithm",
    "register_algorithm",
]
