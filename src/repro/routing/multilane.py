"""Virtual-channel lane multiplication (paper §4 future work).

The paper's concluding section flags "evaluation of improvements in
throughputs with addition of virtual channels" as open work, citing
Dally's virtual-channel flow control result that extra channels improve
e-cube.  :class:`MultiLane` implements that study generically: it wraps
any routing algorithm and provides ``lanes`` physically separate virtual
channels per original channel *class*.  A message that could reserve
class ``c`` may reserve any lane ``c * lanes + i`` — more worms share
each physical channel, raising utilization at the cost of multiplexing.

Deadlock freedom is inherited: lanes of one class are interchangeable, so
any rank function or dependency-layer argument on classes carries over
with ``rank(lane) = rank(lane // lanes)`` (the analysis tools confirm the
wrapped graphs stay acyclic for the base algorithms that are acyclic).
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional

from repro.routing.base import RouteChoice, RoutingAlgorithm
from repro.topology.base import Link, Topology
from repro.util.validation import require


class MultiLane(RoutingAlgorithm):
    """Wrap *inner*, multiplying every virtual-channel class into lanes."""

    adaptive = True  # lane choice itself is adaptive

    def __init__(self, inner: RoutingAlgorithm, lanes: int) -> None:
        require(lanes >= 1, f"lanes must be >= 1, got {lanes}")
        super().__init__(inner.topology)
        self.inner = inner
        self.lanes = lanes
        self.name = f"{inner.name}x{lanes}"
        self.fully_adaptive = inner.fully_adaptive
        self.adaptive = inner.adaptive or lanes > 1

    @property
    def num_virtual_channels(self) -> int:
        return self.inner.num_virtual_channels * self.lanes

    def new_state(self, src: int, dst: int) -> Any:
        return self.inner.new_state(src, dst)

    def state_key(self, state: Any) -> Optional[Hashable]:
        """Lane expansion is stateless: the inner key is the whole key."""
        return self.inner.state_key(state)

    def candidates(
        self, state: Any, current: int, dst: int
    ) -> List[RouteChoice]:
        lanes = self.lanes
        expanded: List[RouteChoice] = []
        for link, vc_class in self.inner.candidates(state, current, dst):
            base = vc_class * lanes
            for lane in range(lanes):
                expanded.append((link, base + lane))
        return expanded

    def advance(
        self, state: Any, current: int, link: Link, vc_class: int
    ) -> Any:
        return self.inner.advance(
            state, current, link, vc_class // self.lanes
        )

    def message_class(self, src: int, dst: int, state: Any) -> Hashable:
        return self.inner.message_class(src, dst, state)


def with_lanes(inner: RoutingAlgorithm, lanes: int) -> RoutingAlgorithm:
    """*inner* unchanged for one lane, wrapped otherwise."""
    if lanes == 1:
        return inner
    return MultiLane(inner, lanes)


__all__ = ["MultiLane", "with_lanes"]
