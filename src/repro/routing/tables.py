"""Interned route tables: candidate sets as flat numpy rows.

The engine-level memoization (:meth:`RoutingAlgorithm.candidates_cached`,
the resolved-candidate caches) already turns every shipped algorithm's
deterministic component into a static ``(node, dst, state_key) ->
candidates`` mapping.  :class:`RouteTable` interns that mapping into
*dense integer rows* so the batch backend's relaxed identity mode can
gather whole request batches at once:

* ``cand_flat[row, k]`` — flat VC index (``link.index * V + vc_class``)
  of candidate *k*, ``-1`` padded;
* ``cand_ch[row, k]`` — physical-channel index (for load gathers);
* ``cand_dst[row, k]`` — the node the hop lands on;
* ``count[row]`` — number of candidates;
* ``term[row, k]`` — True when candidate *k* lands on the destination
  (the hop after which the message stops requesting routes);
* ``succ[row, k]`` — the row a message occupies after committing
  candidate *k*, interned lazily on first commit (``-1`` until then;
  never queried for hops that arrive at the destination).

Successor rows are computed from a stored *representative state* per
row: ``advance`` is applied to a shallow copy of the representative and
the result is interned under its own key.  This is sound under a
contract slightly stronger than :meth:`RoutingAlgorithm.state_key`'s:
the advanced state's key must be determined by ``(state_key, current,
link, vc_class)`` alone.  Every shipped algorithm satisfies it — e-cube
is stateless, the hop schemes map ``(vc_class,)`` through
``class_after_hop(vc_class, current)``, north-last increments its wrap
count on wrap links, 2pn's tag never changes, and multi-lane delegates —
and any custom algorithm whose ``advance`` consults state outside its
key must not be run in relaxed mode (strict mode never builds tables).

States whose ``state_key`` is ``None`` (memoization opt-out) cannot be
interned; :meth:`RouteTable.row_for` raises ``ConfigurationError``.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.routing.base import RoutingAlgorithm
from repro.topology.base import Link
from repro.util.errors import ConfigurationError

#: Initial row capacity; doubled on demand.
_INITIAL_ROWS = 256

#: Initial candidate width; widened on demand (nbc's first-hop cross
#: product of links x initial classes is the widest shipped case).
_INITIAL_WIDTH = 8


class RouteTable:
    """Dense interned candidate rows for one (algorithm, topology)."""

    def __init__(self, algorithm: RoutingAlgorithm) -> None:
        self.algorithm = algorithm
        self._v = algorithm.num_virtual_channels
        self._index: Dict[Tuple[int, int, Hashable], int] = {}
        self.size = 0
        self._width = _INITIAL_WIDTH
        cap = _INITIAL_ROWS
        self.cand_flat = np.full((cap, self._width), -1, dtype=np.int64)
        self.cand_ch = np.zeros((cap, self._width), dtype=np.int64)
        self.cand_dst = np.zeros((cap, self._width), dtype=np.int64)
        self.term = np.zeros((cap, self._width), dtype=bool)
        self.count = np.zeros(cap, dtype=np.int64)
        self.succ = np.full((cap, self._width), -1, dtype=np.int64)
        #: Python-side per-row data for the scalar seams: candidate Link
        #: objects (successor interning), flat-index lists (parking).
        self.links: List[List[Link]] = []
        self.flats: List[List[int]] = []
        self.rep_state: List[Any] = []
        self.node: List[int] = []
        self.dst: List[int] = []

    def _grow_rows(self) -> None:
        cap = self.cand_flat.shape[0] * 2
        width = self._width

        def wider(old: np.ndarray, fill: int) -> np.ndarray:
            fresh = np.full((cap, width), fill, dtype=old.dtype)
            fresh[: old.shape[0]] = old
            return fresh

        self.cand_flat = wider(self.cand_flat, -1)
        self.cand_ch = wider(self.cand_ch, 0)
        self.cand_dst = wider(self.cand_dst, 0)
        self.term = wider(self.term, False)
        self.succ = wider(self.succ, -1)
        fresh_count = np.zeros(cap, dtype=np.int64)
        fresh_count[: self.count.shape[0]] = self.count
        self.count = fresh_count

    def _grow_width(self, needed: int) -> None:
        width = self._width
        while width < needed:
            width *= 2
        cap = self.cand_flat.shape[0]

        def wider(old: np.ndarray, fill: int) -> np.ndarray:
            fresh = np.full((cap, width), fill, dtype=old.dtype)
            fresh[:, : old.shape[1]] = old
            return fresh

        self.cand_flat = wider(self.cand_flat, -1)
        self.cand_ch = wider(self.cand_ch, 0)
        self.cand_dst = wider(self.cand_dst, 0)
        self.term = wider(self.term, False)
        self.succ = wider(self.succ, -1)
        self._width = width

    def row_for(
        self,
        node: int,
        dst: int,
        state: Any,
        key: Optional[Hashable] = None,
    ) -> int:
        """Intern (and return) the row of one (node, dst, state) position.

        *state* becomes the row's representative on first interning; it
        must not be mutated by the caller afterwards (the table advances
        shallow copies, never the representative itself).
        """
        if key is None:
            key = self.algorithm.state_key(state)
            if key is None:
                raise ConfigurationError(
                    f"routing algorithm {self.algorithm.name!r} returned "
                    "state_key=None: its candidate sets cannot be "
                    "table-interned, which relaxed-identity batch "
                    "execution requires (run identity='strict' instead)"
                )
        entry = (node, dst, key)
        row = self._index.get(entry)
        if row is not None:
            return row
        choices = self.algorithm.candidates_cached(state, node, dst)
        n = len(choices)
        if n > self._width:
            self._grow_width(n)
        row = self.size
        if row == self.cand_flat.shape[0]:
            self._grow_rows()
        v = self._v
        links: List[Link] = []
        flats: List[int] = []
        for k, (link, vc_class) in enumerate(choices):
            flat = link.index * v + vc_class
            self.cand_flat[row, k] = flat
            self.cand_ch[row, k] = link.index
            self.cand_dst[row, k] = link.dst
            self.term[row, k] = link.dst == dst
            links.append(link)
            flats.append(flat)
        self.count[row] = n
        self.links.append(links)
        self.flats.append(flats)
        self.rep_state.append(state)
        self.node.append(node)
        self.dst.append(dst)
        self._index[entry] = row
        self.size = row + 1
        return row

    def successor(self, row: int, k: int) -> int:
        """The row occupied after committing candidate *k* of *row*.

        Lazily interned: ``advance`` runs once per (row, candidate) on a
        shallow copy of the representative state.  Must not be called
        for a hop that arrives at the destination (delivered messages
        request no further candidates).
        """
        cached = int(self.succ[row, k])
        if cached >= 0:
            return cached
        algorithm = self.algorithm
        link = self.links[row][k]
        vc_class = int(self.cand_flat[row, k]) - link.index * self._v
        advanced = algorithm.advance(
            copy.copy(self.rep_state[row]), self.node[row], link, vc_class
        )
        succ = self.row_for(link.dst, self.dst[row], advanced)
        self.succ[row, k] = succ
        return succ


__all__ = ["RouteTable"]
