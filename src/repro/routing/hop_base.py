"""Hop schemes: wormhole algorithms derived from SAF buffer-class schemes.

The paper's Section 2.1 derives wormhole algorithms from store-and-forward
(SAF) algorithms that avoid deadlock by *buffer reservation*: node buffers
are partitioned into classes b0..bm and every message's sequence of buffer
classes has monotonically increasing rank.  The derivation provides one
virtual channel c_i per buffer class b_i on every physical channel, and a
message that would occupy b_i in SAF reserves c_i in wormhole (Lemma 1).

:class:`HopClassScheme` captures exactly the SAF side of that construction
— how a message's buffer class evolves hop by hop — and doubles as the
wormhole algorithm through the shared class logic.  The same object drives
both the flit-level wormhole engine and the packet-level SAF/VCT engine, so
the paper's "derived from" relationship is literal in this codebase.

All hop schemes are fully adaptive: any minimal link may carry any hop; only
the virtual-channel *class* is constrained.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.routing.base import RouteChoice, RoutingAlgorithm
from repro.topology.base import Link, Topology


class _HopState:
    """Per-message class pointer.

    ``vc_class`` is the class the *next* hop must use; ``None`` until the
    first hop is committed for schemes that offer an initial choice (nbc).
    """

    __slots__ = ("vc_class",)

    def __init__(self, vc_class: Any) -> None:
        self.vc_class = vc_class


class HopClassScheme(RoutingAlgorithm):
    """Base for positive-hop, negative-hop and bonus-card schemes."""

    fully_adaptive = True
    adaptive = True

    # -- the SAF buffer-class algorithm ------------------------------------

    @abstractmethod
    def initial_classes(self, src: int, dst: int) -> Sequence[int]:
        """Buffer classes a fresh message may start in (usually just (0,))."""

    @abstractmethod
    def class_after_hop(self, vc_class: int, from_node: int) -> int:
        """Buffer class after a hop departing *from_node* in *vc_class*."""

    @abstractmethod
    def rank(self, vc_class: int, node: int) -> int:
        """Lemma-1 rank of occupying class *vc_class* at *node*.

        Every implementation must make ranks strictly increase along any
        message path; :mod:`repro.analysis.invariants` machine-checks this.
        """

    # -- wormhole interface --------------------------------------------------

    def new_state(self, src: int, dst: int) -> _HopState:
        classes = self.initial_classes(src, dst)
        return _HopState(classes[0] if len(classes) == 1 else None)

    def candidates(
        self, state: _HopState, current: int, dst: int
    ) -> List[RouteChoice]:
        self._check_not_delivered(current, dst)
        links = self.minimal_links(current, dst)
        if state.vc_class is not None:
            vc_class = state.vc_class
            return [(link, vc_class) for link in links]
        # First hop of a scheme with an initial-class choice (the head is
        # still at its source, so current == src): the cross product of
        # minimal links and permitted starting classes.
        choices: List[RouteChoice] = []
        for vc_class in self.initial_classes(current, dst):
            for link in links:
                choices.append((link, vc_class))
        return choices

    def advance(
        self, state: _HopState, current: int, link: Link, vc_class: int
    ) -> _HopState:
        state.vc_class = self.class_after_hop(vc_class, current)
        return state

    def state_key(self, state: _HopState) -> Optional[Hashable]:
        """Candidates depend only on the class pointer."""
        return (state.vc_class,)

    # -- congestion control -----------------------------------------------------

    def message_class(self, src: int, dst: int, state: _HopState) -> Hashable:
        """Class = highest virtual-channel number usable for the first hop."""
        return max(self.initial_classes(src, dst))


__all__ = ["HopClassScheme"]
