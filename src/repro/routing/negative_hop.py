"""The negative-hop (nhop) fully-adaptive scheme.

The network's nodes are 2-colored by coordinate-sum parity (possible exactly
when the graph is bipartite: any mesh, or a torus of even radix).  A hop
from an odd node to an even node is *negative*; a message that has taken
*i* negative hops occupies class *i*.  On any minimal path at most every
other hop is negative, so ``ceil(diameter / 2) + 1`` classes suffice — nine
virtual channels per physical channel on a 16x16 torus, roughly half of
phop's seventeen.

Lemma-1 rank: ``2 * class + parity(node)``.  A hop from an even node keeps
the class and lands on an odd node (+1); a hop from an odd node increments
the class and lands on an even node (+1); either way the rank strictly
increases, so the derived wormhole algorithm is deadlock-free.

The paper notes that odd-radix tori admit comparable schemes but defers the
(involved) construction to a separate report; we follow it and refuse
odd-radix tori explicitly.
"""

from __future__ import annotations

from typing import Sequence

from repro.routing.hop_base import HopClassScheme
from repro.topology.base import Topology
from repro.topology.mesh import Mesh
from repro.util.errors import RoutingError


def check_bipartite(topology: Topology, algorithm_name: str) -> None:
    """Reject topologies whose parity coloring is not a proper 2-coloring."""
    if isinstance(topology, Mesh):
        return  # meshes are always bipartite
    if topology.radix % 2 != 0:
        raise RoutingError(
            f"{algorithm_name} requires an even-radix torus (the parity "
            "2-coloring must be proper); the paper defers odd-radix "
            f"designs to a separate report. Got radix {topology.radix}."
        )


class NegativeHop(HopClassScheme):
    """Negative-hops-taken virtual-channel classes (paper's ``nhop``)."""

    name = "nhop"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        check_bipartite(topology, self.name)
        self._num_classes = topology.max_negative_hops() + 1

    @property
    def num_virtual_channels(self) -> int:
        return self._num_classes

    def initial_classes(self, src: int, dst: int) -> Sequence[int]:
        return (0,)

    def class_after_hop(self, vc_class: int, from_node: int) -> int:
        # A hop departing an odd node lands on an even node: negative hop.
        return vc_class + self.topology.parity(from_node)

    def rank(self, vc_class: int, node: int) -> int:
        return 2 * vc_class + self.topology.parity(node)

    def negative_hops_required(self, src: int, dst: int) -> int:
        """Negative hops on any minimal path from *src* to *dst*.

        Node parities alternate along a path, so the count depends only on
        the path length and the source parity, not on the path chosen.
        """
        length = self.topology.distance(src, dst)
        if self.topology.parity(src):
            return (length + 1) // 2
        return length // 2


__all__ = ["NegativeHop", "check_bipartite"]
