"""Deadlock-free minimal wormhole routing algorithms.

This package is the paper's primary contribution: six algorithms with
different degrees of adaptivity, all sharing the
:class:`~repro.routing.base.RoutingAlgorithm` interface consumed by the
flit-level simulator.

==========  ===================  ==========================================
Name        Adaptivity           Virtual channels per physical channel
==========  ===================  ==========================================
``ecube``   non-adaptive         2 on tori (dateline), 1 on meshes
``nlast``   partially adaptive   2 on tori (dateline), 1 on meshes
``2pn``     fully adaptive       2**n (tag-addressed)
``phop``    fully adaptive       diameter + 1 (positive-hop classes)
``nhop``    fully adaptive       ceil(diameter/2) + 1 (negative-hop)
``nbc``     fully adaptive       same as ``nhop`` (bonus cards)
==========  ===================  ==========================================
"""

from repro.routing.base import RouteChoice, RoutingAlgorithm
from repro.routing.bonus_cards import NegativeHopBonusCards
from repro.routing.ecube import ECube
from repro.routing.hop_base import HopClassScheme
from repro.routing.negative_hop import NegativeHop
from repro.routing.north_last import NorthLast
from repro.routing.positive_hop import PositiveHop
from repro.routing.registry import (
    ALGORITHM_NAMES,
    available_algorithms,
    make_algorithm,
)
from repro.routing.two_power_n import TwoPowerN

__all__ = [
    "ALGORITHM_NAMES",
    "ECube",
    "HopClassScheme",
    "NegativeHop",
    "NegativeHopBonusCards",
    "NorthLast",
    "PositiveHop",
    "RouteChoice",
    "RoutingAlgorithm",
    "TwoPowerN",
    "available_algorithms",
    "make_algorithm",
]
