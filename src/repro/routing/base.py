"""The routing-algorithm interface used by the simulator.

A routing algorithm answers one question per hop: *given a message at a
node, which (physical link, virtual-channel class) pairs may carry its next
hop?*  All algorithms in the paper are **minimal** — every candidate hop
moves the message strictly closer to its destination — which also rules out
livelock.

The interface is deliberately stateful-per-message: algorithms may attach a
small opaque state object to each message (hop counters, tags, datelines)
via :meth:`RoutingAlgorithm.new_state` and update it on every committed hop
via :meth:`RoutingAlgorithm.advance`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.topology.base import Link, Topology
from repro.util.errors import RoutingError
from repro.util.fingerprint import state_fingerprint

#: A candidate next hop: the physical link plus the virtual-channel class
#: the message must reserve on it.
RouteChoice = Tuple[Link, int]


class RoutingAlgorithm(ABC):
    """Base class for deadlock-free minimal routing algorithms.

    Subclasses set the class attributes :attr:`name`,
    :attr:`fully_adaptive` and :attr:`adaptive`, implement
    :meth:`candidates`, and may override the state hooks.
    """

    #: Short identifier used by the registry and in result tables.
    name: str = "abstract"
    #: True when every minimal path is permitted.
    fully_adaptive: bool = False
    #: True when at least some routing freedom exists.
    adaptive: bool = False

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        # Candidate-set memo: (node, destination, state_key) -> the
        # RouteChoice tuple candidates() would return.  Filled lazily by
        # candidates_cached, so the deterministic component of every
        # algorithm (e-cube order, north-last restrictions, hop-class
        # thresholds) becomes a static route table after warm-up.
        self._route_table: Dict[
            Tuple[int, int, Hashable], Tuple[RouteChoice, ...]
        ] = {}

    # -- resources ---------------------------------------------------------

    @property
    @abstractmethod
    def num_virtual_channels(self) -> int:
        """Virtual channels this algorithm needs per physical channel."""

    # -- per-message state ---------------------------------------------------

    def new_state(self, src: int, dst: int) -> Any:
        """Create per-message routing state (default: stateless)."""
        return None

    def advance(
        self, state: Any, current: int, link: Link, vc_class: int
    ) -> Any:
        """Update *state* after the message commits to a hop.

        *current* is the node the hop departs from.  Returns the new state
        (which may be the mutated input object).
        """
        return state

    # -- routing -------------------------------------------------------------

    @abstractmethod
    def candidates(
        self, state: Any, current: int, dst: int
    ) -> List[RouteChoice]:
        """All (link, vc_class) pairs allowed for the next hop.

        Raises :class:`RoutingError` if *current* == *dst* — a delivered
        message must not ask for another hop.
        """

    # -- candidate-set memoization ------------------------------------------

    def state_key(self, state: Any) -> Optional[Hashable]:
        """Hashable fingerprint of the candidate-relevant part of *state*.

        The contract: two states with equal keys must yield equal
        :meth:`candidates` results at every (current, dst) — the key is
        what the candidate-set memo (:meth:`candidates_cached`) and the
        engine's resolved-candidate cache index on.  Returning ``None``
        disables memoization for this state.

        The default covers stateless algorithms (state ``None``) and any
        state whose *entire* contents drive the candidate set, via
        :func:`repro.util.fingerprint.state_fingerprint`.  Algorithms
        whose candidate sets depend on a projection of their state
        override this with a smaller (and cheaper) key.
        """
        if state is None:
            return ()
        key = state_fingerprint(state)
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def candidates_cached(
        self, state: Any, current: int, dst: int
    ) -> Sequence[RouteChoice]:
        """Memoized :meth:`candidates` (see :meth:`state_key`).

        Cache hits return a shared tuple; callers must not mutate it.
        States without a key fall through to a fresh ``candidates`` call.
        """
        key = self.state_key(state)
        if key is None:
            return self.candidates(state, current, dst)
        table = self._route_table
        entry = (current, dst, key)
        cached = table.get(entry)
        if cached is None:
            cached = tuple(self.candidates(state, current, dst))
            table[entry] = cached
        return cached

    # -- congestion control ----------------------------------------------------

    def message_class(self, src: int, dst: int, state: Any) -> Hashable:
        """Class key for the input-buffer-limit congestion control.

        The paper (Section 3, footnote 2) classifies messages by the
        virtual channel(s) they can use; the default covers algorithms
        whose messages all start in class 0.
        """
        return 0

    # -- helpers ---------------------------------------------------------------

    def _check_not_delivered(self, current: int, dst: int) -> None:
        if current == dst:
            raise RoutingError(
                f"message already at destination node {dst}; "
                "no further hop exists"
            )

    def minimal_links(self, current: int, dst: int) -> List[Link]:
        """All links out of *current* that lie on some minimal path to *dst*."""
        topo = self.topology
        links: List[Link] = []
        for dim in range(topo.n_dims):
            for direction in topo.minimal_directions(current, dst, dim):
                link = topo.out_link(current, dim, direction)
                if link is not None:
                    links.append(link)
        return links

    def describe(self) -> str:
        """One-line human-readable summary."""
        kind = (
            "fully adaptive"
            if self.fully_adaptive
            else ("partially adaptive" if self.adaptive else "non-adaptive")
        )
        return (
            f"{self.name}: {kind}, "
            f"{self.num_virtual_channels} virtual channels/physical channel"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.topology!r})"


def dateline_vc_class(
    current_coord: int, dst_coord: int, direction: int
) -> int:
    """Dally–Seitz dateline virtual-channel class for one torus ring hop.

    Travelling in the + direction a message still ahead of its wrap-around
    crossing (current > dest) uses class 0 and switches to class 1 once the
    crossing is behind it; symmetrically for the - direction.  Messages
    whose ring path never wraps use class 1 throughout.  Both usages give
    every (channel, class) pair a strictly increasing rank along any path,
    so each ring's channel dependency graph is acyclic.
    """
    if direction == 1:
        return 0 if current_coord > dst_coord else 1
    return 0 if current_coord < dst_coord else 1


__all__ = ["RouteChoice", "RoutingAlgorithm", "dateline_vc_class"]
