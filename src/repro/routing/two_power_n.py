"""The fully-adaptive two-power-n ("2pn") algorithm.

An n-bit tag is computed from the source and destination addresses once,
at injection (paper, eq. (1)):

    t_i = 1 if s_i < d_i,  t_i = 0 if s_i > d_i,  free if s_i = d_i.

Each physical channel carries ``2**n`` virtual channels, one addressed by
every possible tag; a message uses the virtual channel numbered by its tag
on *every* hop, choosing adaptively among the minimal links of its
uncorrected dimensions.  The scheme generalises Dally's double-channel mesh
construction to tori with 2**n channels and is the improvement over Linder &
Harden's ``(n+1) * 2**(n-1)`` channels discussed in the paper.

Free tag bits are set to 0 here; the paper leaves the choice open.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.routing.base import RouteChoice, RoutingAlgorithm
from repro.topology.base import Topology


class TwoPowerN(RoutingAlgorithm):
    """Tag-addressed fully-adaptive routing with 2**n virtual channels."""

    name = "2pn"
    fully_adaptive = True
    adaptive = True

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)

    @property
    def num_virtual_channels(self) -> int:
        return 2**self.topology.n_dims

    def compute_tag(self, src: int, dst: int) -> int:
        """The n-bit tag of a (src, dst) pair, free bits set to 0."""
        src_coords = self.topology.coords(src)
        dst_coords = self.topology.coords(dst)
        tag = 0
        for dim in range(self.topology.n_dims):
            if src_coords[dim] < dst_coords[dim]:
                tag |= 1 << dim
        return tag

    def new_state(self, src: int, dst: int) -> int:
        return self.compute_tag(src, dst)

    def state_key(self, state: int) -> Optional[Hashable]:
        """The tag is the whole candidate-relevant state."""
        return state

    def candidates(
        self, state: int, current: int, dst: int
    ) -> List[RouteChoice]:
        self._check_not_delivered(current, dst)
        return [(link, state) for link in self.minimal_links(current, dst)]

    def message_class(self, src: int, dst: int, state: int) -> Hashable:
        """Class = the tag (the one virtual-channel number the message uses)."""
        return state


__all__ = ["TwoPowerN"]
