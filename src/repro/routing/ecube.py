"""The non-adaptive e-cube (dimension-order) routing algorithm.

A message corrects dimension 0 completely, then dimension 1, and so on.  On
a torus it travels the minimal way around each ring (ties at exactly half
the ring are broken toward the + direction so the algorithm stays
deterministic) and uses the two-class dateline scheme of Dally & Seitz to
break the wrap-around cycle, so two virtual channels per physical channel
suffice.  On a mesh a single virtual channel suffices.
"""

from __future__ import annotations

from typing import Any, Hashable, List

from repro.routing.base import (
    RouteChoice,
    RoutingAlgorithm,
    dateline_vc_class,
)
from repro.topology.base import Topology


class ECube(RoutingAlgorithm):
    """Deterministic dimension-order routing (the paper's baseline)."""

    name = "ecube"
    fully_adaptive = False
    adaptive = False

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        self._has_wrap = any(link.wraps for link in topology.links)

    @property
    def num_virtual_channels(self) -> int:
        return 2 if self._has_wrap else 1

    def candidates(
        self, state: Any, current: int, dst: int
    ) -> List[RouteChoice]:
        self._check_not_delivered(current, dst)
        topo = self.topology
        for dim in range(topo.n_dims):
            directions = topo.minimal_directions(current, dst, dim)
            if not directions:
                continue
            direction = directions[0]  # tie at k/2 resolves to +
            link = topo.out_link(current, dim, direction)
            if self._has_wrap:
                vc_class = dateline_vc_class(
                    topo.coords(current)[dim],
                    topo.coords(dst)[dim],
                    direction,
                )
            else:
                vc_class = 0
            return [(link, vc_class)]
        raise AssertionError("unreachable: current != dst but no hop found")

    def message_class(self, src: int, dst: int, state: Any) -> Hashable:
        """Class = the exact first (link, vc) the message will request.

        The paper classifies e-cube messages by "the particular virtual
        channel [the message] intends to use".
        """
        (link, vc_class), = self.candidates(state, src, dst)
        return (link.index, vc_class)


__all__ = ["ECube"]
