"""The positive-hop (phop) fully-adaptive scheme.

Gopal's positive-hop SAF algorithm places a message that has completed *i*
hops in a buffer of class *i*; since a minimal path is at most the network
diameter long, ``diameter + 1`` buffer classes (and hence virtual channels
per physical channel — 17 on a 16x16 torus) suffice.  Ranks are simply the
class numbers and increase by one each hop, so Lemma 1 applies directly.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.routing.hop_base import HopClassScheme
from repro.topology.base import Topology


class PositiveHop(HopClassScheme):
    """Hops-taken-so-far virtual-channel classes (paper's ``phop``)."""

    name = "phop"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        self._num_classes = topology.diameter + 1

    @property
    def num_virtual_channels(self) -> int:
        return self._num_classes

    def initial_classes(self, src: int, dst: int) -> Sequence[int]:
        return (0,)

    def class_after_hop(self, vc_class: int, from_node: int) -> int:
        return vc_class + 1

    def rank(self, vc_class: int, node: int) -> int:
        return vc_class


__all__ = ["PositiveHop"]
