"""The negative-hop-with-bonus-cards (nbc) fully-adaptive scheme.

The plain hop schemes use low-numbered virtual channels far more than
high-numbered ones (every message starts in class 0; only messages between
diametrically opposite nodes ever reach the top class).  nbc rebalances: at
injection each message receives

    bonus cards  b  =  (max possible negative hops in the network)
                       - (negative hops this message will take)

and may start its first hop in *any* class 0..b, preferring the least
congested.  After the first hop it behaves exactly like nhop relative to
its chosen starting class, so the top class ever used is
``b + negative_hops = max_negative_hops`` and the virtual-channel budget is
the same nine channels as nhop on a 16x16 torus.

The Lemma-1 rank is unchanged (``2 * class + parity``), so deadlock freedom
is inherited from nhop regardless of the starting class.
"""

from __future__ import annotations

from typing import Sequence

from repro.routing.negative_hop import NegativeHop
from repro.topology.base import Topology


class NegativeHopBonusCards(NegativeHop):
    """nhop plus load balancing across starting classes (paper's ``nbc``)."""

    name = "nbc"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        self._max_negative_hops = topology.max_negative_hops()

    def bonus_cards(self, src: int, dst: int) -> int:
        """Bonus cards granted at the source (paper's formula, Section 2.1)."""
        return self._max_negative_hops - self.negative_hops_required(src, dst)

    def initial_classes(self, src: int, dst: int) -> Sequence[int]:
        return range(self.bonus_cards(src, dst) + 1)


__all__ = ["NegativeHopBonusCards"]
