"""Small argument-validation helpers.

These raise :class:`repro.util.errors.ConfigurationError` with a precise
message instead of letting bad parameters surface deep inside the simulator
as obscure index errors.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union

from repro.util.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with *message* unless *condition*."""
    if not condition:
        raise ConfigurationError(message)


def require_type(
    value: Any,
    expected: Union[Type, Tuple[Type, ...]],
    name: str,
) -> None:
    """Require ``isinstance(value, expected)``; bool is not accepted as int."""
    if isinstance(value, bool) and expected is int:
        raise ConfigurationError(
            f"{name} must be an int, got bool {value!r}"
        )
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else "/".join(t.__name__ for t in expected)
        )
        raise ConfigurationError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )


def require_positive(value: Union[int, float], name: str) -> None:
    """Require a strictly positive number."""
    require_type(value, (int, float), name)
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")


def require_non_negative(value: Union[int, float], name: str) -> None:
    """Require a number >= 0."""
    require_type(value, (int, float), name)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require a float in [0, 1]."""
    require_type(value, (int, float), name)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


__all__ = [
    "require",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "require_type",
]
