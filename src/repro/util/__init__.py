"""Shared utilities: RNG streams, validation, errors, state fingerprints."""

from repro.util.errors import (
    ConfigurationError,
    DeadlockError,
    ReproError,
    RoutingError,
    TopologyError,
)
from repro.util.fingerprint import state_fingerprint
from repro.util.rng import RngStreams
from repro.util.validation import (
    require,
    require_positive,
    require_probability,
    require_type,
)

__all__ = [
    "ConfigurationError",
    "DeadlockError",
    "ReproError",
    "RngStreams",
    "RoutingError",
    "TopologyError",
    "require",
    "require_positive",
    "require_probability",
    "require_type",
    "state_fingerprint",
]
