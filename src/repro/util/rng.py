"""Independent random-number streams for simulation reproducibility.

The paper (Section 3, "Convergence criteria") maintains *separate* sequences
of random numbers for the message interarrival process, destination
selection, and other stochastic choices, and replaces the streams with fresh
ones at the start of every sampling period.  :class:`RngStreams` reproduces
that discipline on top of :class:`random.Random`.

Streams are derived deterministically from a single root seed, so an entire
experiment is reproducible from one integer.
"""

from __future__ import annotations

import random
from typing import Dict

import numpy as np

from repro.util.validation import require_type

#: Canonical stream names used by the simulator.  Arbitrary extra names are
#: allowed; these constants only exist so call sites do not scatter string
#: literals.
STREAM_ARRIVALS = "arrivals"
STREAM_DESTINATIONS = "destinations"
STREAM_ROUTING = "routing"
STREAM_ARBITRATION = "arbitration"


class RngStreams:
    """A family of named, independent random streams.

    Each named stream is a :class:`random.Random` seeded from
    ``hash((root_seed, name, epoch))`` where *epoch* counts how many times
    the streams have been renewed.  Renewal (``advance_epoch``) models the
    paper's "new streams of random numbers are used" step between sampling
    periods.
    """

    def __init__(self, root_seed: int = 0) -> None:
        require_type(root_seed, int, "root_seed")
        self._root_seed = root_seed
        self._epoch = 0
        self._streams: Dict[str, random.Random] = {}
        self._numpy_streams: Dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        """The root seed all streams derive from."""
        return self._root_seed

    @property
    def epoch(self) -> int:
        """How many times the streams have been renewed."""
        return self._epoch

    def stream(self, name: str) -> random.Random:
        """Return the stream called *name*, creating it on first use."""
        require_type(name, str, "name")
        existing = self._streams.get(name)
        if existing is None:
            existing = random.Random(self._derive_seed(name))
            self._streams[name] = existing
        return existing

    def numpy_stream(self, name: str) -> np.random.Generator:
        """The numpy counterpart of :meth:`stream`, for batched draws.

        Seeded from the exact same ``_mix(root_seed, name, epoch)``
        schedule as the scalar streams (over PCG64), so an experiment's
        numpy draws are reproducible from the same root seed and renew
        on the same epoch boundaries.  The numpy stream named *name* and
        the :class:`random.Random` stream of the same name are seeded
        alike but produce unrelated sequences — callers use one or the
        other per run (the batch backend's identity modes), never both.
        """
        require_type(name, str, "name")
        existing = self._numpy_streams.get(name)
        if existing is None:
            existing = np.random.Generator(
                np.random.PCG64(self._derive_seed(name))
            )
            self._numpy_streams[name] = existing
        return existing

    def advance_epoch(self) -> None:
        """Replace every existing stream with a freshly seeded one.

        Called between sampling periods so that successive samples use
        statistically independent random sequences, as the paper describes.
        """
        self._epoch += 1
        for name in list(self._streams):
            self._streams[name] = random.Random(self._derive_seed(name))
        for name in list(self._numpy_streams):
            self._numpy_streams[name] = np.random.Generator(
                np.random.PCG64(self._derive_seed(name))
            )

    def spawn(self, label: str) -> "RngStreams":
        """Derive an independent child family (e.g. one per node)."""
        child_seed = self._mix(self._root_seed, label, self._epoch)
        return RngStreams(child_seed)

    def _derive_seed(self, name: str) -> int:
        return self._mix(self._root_seed, name, self._epoch)

    @staticmethod
    def _mix(seed: int, name: str, epoch: int) -> int:
        # A small, stable integer hash.  ``hash`` is salted per process for
        # strings, which would destroy reproducibility, so mix explicitly.
        acc = (seed * 0x9E3779B1 + epoch * 0x85EBCA77) & 0xFFFFFFFFFFFF
        for ch in name:
            acc = (acc * 31 + ord(ch)) & 0xFFFFFFFFFFFF
        return acc


__all__ = [
    "RngStreams",
    "STREAM_ARBITRATION",
    "STREAM_ARRIVALS",
    "STREAM_DESTINATIONS",
    "STREAM_ROUTING",
]
