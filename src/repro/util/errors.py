"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library errors without also
swallowing programming mistakes such as :class:`TypeError`.
"""

from typing import Any, Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An experiment or simulator configuration is invalid or inconsistent."""


class TopologyError(ReproError):
    """A topology parameter or node/link reference is invalid."""


class RoutingError(ReproError):
    """A routing algorithm was asked to do something it cannot do.

    Examples: routing a message that is already at its destination, or
    instantiating the negative-hop scheme on an odd-radix torus (the paper
    defers that construction to a separate report).
    """


class DeadlockError(ReproError):
    """The simulator watchdog detected a deadlock.

    All six algorithms in the paper are deadlock-free, so this error firing
    during a simulation indicates a bug in an algorithm implementation (or a
    deliberately broken algorithm used in tests to validate the watchdog).

    When the engine runs with ``SimulationConfig.sanitize=True``,
    :attr:`report` carries the wait-for-graph sanitizer's
    :class:`~repro.simulator.sanitizer.DeadlockReport` naming the cycle
    of ``(link, vc_class)`` resources and the blocked messages.
    """

    def __init__(self, message: str, report: Optional[Any] = None) -> None:
        super().__init__(message)
        self.report = report


class ConvergenceError(ReproError):
    """A statistics run failed to produce a usable estimate."""
