"""Hashable fingerprints of per-message routing-state objects.

Routing algorithms attach small opaque state objects to messages
(:meth:`repro.routing.base.RoutingAlgorithm.new_state`).  The analysis
walks — invariant checking, dependency-graph construction, the verifier's
reachability sweeps — all need to deduplicate visited configurations, so
they need a hashable key for states that may be plain values, ``__slots__``
instances, or ordinary objects.  This module is the one shared definition
of that key.
"""

from __future__ import annotations

from typing import Any, Hashable


def state_fingerprint(state: Any) -> Hashable:
    """A hashable fingerprint of a routing-state object.

    Plain hashable values (``None``, ints, strings, tuples) are their own
    fingerprint; ``__slots__`` instances hash their slot values in slot
    order; other objects hash their sorted ``__dict__`` items.  Two states
    compare equal under this fingerprint exactly when every attribute the
    algorithm stores matches.
    """
    if state is None or isinstance(state, (int, str, tuple)):
        return state
    slots = getattr(type(state), "__slots__", None)
    if slots is not None:
        return tuple(getattr(state, name) for name in slots)
    return tuple(sorted(vars(state).items()))  # pragma: no cover


__all__ = ["state_fingerprint"]
