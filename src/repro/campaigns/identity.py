"""Content identity of simulation points: the store's addressing scheme.

A simulation point is fully determined by its
:class:`~repro.simulator.config.SimulationConfig` (results are a pure
function of the config — the serial/parallel/batch identity tests pin
this), so a *content address* derived from the config is a sound cache
key: two campaigns that expand to the same config may share one stored
result.

The identity is split the same way sweep checkpoints always split it:

* :func:`campaign_signature` hashes every field **shared** by the points
  of one campaign (everything except algorithm / offered load / seed, and
  except the backend — per-seed results are bit-identical across
  backends, so a result simulated under one backend is equally valid
  under the other);
* :func:`point_key` names one point **within** a campaign;
* :func:`result_key` combines the two into the store's record key.

These definitions were born in :mod:`repro.experiments.parallel` (which
re-exports them unchanged); they live here so the campaign store can use
them without importing the executor machinery.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict

from repro.simulator.config import SimulationConfig

#: Config fields that vary between the points of one campaign; everything
#: else must match for a stored result to be reused.
POINT_FIELDS = ("algorithm", "offered_load", "seed")

#: Fields excluded from the campaign signature: the point fields, plus
#: the backend — per-seed results are bit-identical across backends (the
#: cross-backend test matrix pins this), so a result recorded under one
#: backend is equally valid under the other and a resumed campaign may
#: switch backends without losing completed points.
#:
#: ``identity`` is deliberately NOT excluded.  Backend exclusion rests
#: on bit-identity, which only ``identity="strict"`` guarantees;
#: relaxed-mode results are statistically, not bitwise, equivalent and
#: must never be served from a strict record (or vice versa).  The
#: exclusion stays sound alongside relaxed mode because
#: ``identity="relaxed"`` is only constructible with
#: ``backend="batch"`` (config validation), so a backendless identity
#: never conflates the two contracts.  Since the signature hashes every
#: non-excluded field of the config dataclass, stores written before
#: the ``identity`` field existed hash differently and show up as cache
#: misses — re-simulate (or keep serving them from an old checkout);
#: they are never served wrongly.
SIGNATURE_EXCLUDED = POINT_FIELDS + ("backend",)


def point_key(config: SimulationConfig) -> str:
    """Stable identity of one sweep point within a campaign."""
    return (
        f"{config.algorithm}|{config.traffic}|{config.topology}"
        f"{config.radix}^{config.n_dims}|{config.switching}"
        f"|load={config.offered_load:.6g}|seed={config.seed}"
    )


def campaign_signature(config: SimulationConfig) -> str:
    """Hash of every config field shared by all points of a campaign.

    Two configs that differ only in algorithm / offered load / seed map
    to the same signature, so one checkpoint file can back a whole
    figure's (algorithms x loads) grid — while a checkpoint recorded
    under different sampling schedules, switching modes, etc. is
    rejected instead of silently reused.
    """
    shared = dataclasses.asdict(config)
    for name in SIGNATURE_EXCLUDED:
        shared.pop(name, None)
    blob = json.dumps(shared, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def result_key(signature: str, point: str) -> str:
    """The store's content address for one (campaign, point) identity."""
    blob = f"{signature}\n{point}"
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def config_key(config: SimulationConfig) -> str:
    """Content address of one config's simulation result."""
    return result_key(campaign_signature(config), point_key(config))


def config_record_dict(config: SimulationConfig) -> Dict[str, Any]:
    """The config as stored beside its result, for collision hygiene.

    Everything the result depends on appears; the backend is excluded
    for the same reason it is excluded from the signature (per-seed
    results are backend-independent).  Values are JSON-safe.
    """
    record = dataclasses.asdict(config)
    record.pop("backend", None)
    return json.loads(json.dumps(record, sort_keys=True, default=repr))


__all__ = [
    "POINT_FIELDS",
    "SIGNATURE_EXCLUDED",
    "campaign_signature",
    "config_key",
    "config_record_dict",
    "point_key",
    "result_key",
]
