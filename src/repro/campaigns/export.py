"""Exports straight from the campaign store: CSV rows and paper tables.

A campaign's export never simulates: it expands the spec, pulls every
point from the store (failing loudly when points are missing), and
renders the same CSV/tables the sweep CLI produces — plus the campaign
context columns (topology, seed) a cross-topology grid needs.  Exports
are deterministic: the same store contents produce byte-identical files.
"""

from __future__ import annotations

import csv
from typing import Dict, List, Sequence, TextIO, Tuple

from repro.campaigns.spec import CampaignSpec, grid_label
from repro.campaigns.store import ResultStore
from repro.experiments.tables import format_figure, peak_summary
from repro.simulator.config import SimulationConfig
from repro.stats.summary import SimulationResult
from repro.util.errors import ReproError


class IncompleteCampaignError(ReproError):
    """An export was requested for a campaign with unsimulated points."""

    def __init__(
        self, spec_name: str, missing: Sequence[SimulationConfig]
    ) -> None:
        preview = ", ".join(
            config.label() for config in list(missing)[:3]
        )
        more = len(missing) - min(len(missing), 3)
        suffix = f" (+{more} more)" if more else ""
        super().__init__(
            f"campaign {spec_name!r}: {len(missing)} of its points are "
            f"not in the store yet: {preview}{suffix}; run the campaign "
            "first (repro-campaign run)"
        )
        self.missing = list(missing)


def collect(
    spec: CampaignSpec, store: ResultStore
) -> List[Tuple[SimulationConfig, SimulationResult]]:
    """Every (config, result) of the campaign, from the store only."""
    configs = spec.expand()
    pairs: List[Tuple[SimulationConfig, SimulationResult]] = []
    missing: List[SimulationConfig] = []
    for config in configs:
        result = store.get(config)
        if result is None:
            missing.append(config)
        else:
            pairs.append((config, result))
    if missing:
        raise IncompleteCampaignError(spec.name, missing)
    return pairs


def campaign_rows(
    pairs: Sequence[Tuple[SimulationConfig, SimulationResult]],
) -> List[Dict[str, object]]:
    """Flat CSV rows: campaign context columns + the result's row."""
    rows = []
    for config, result in pairs:
        row: Dict[str, object] = {
            "topology": config.topology,
            "radix": config.radix,
            "n_dims": config.n_dims,
            "switching": config.switching,
            "seed": config.seed,
        }
        row.update(result.to_dict())
        rows.append(row)
    return rows


def write_campaign_csv(
    pairs: Sequence[Tuple[SimulationConfig, SimulationResult]],
    stream: TextIO,
) -> None:
    """Write the campaign's points as CSV, in expansion order."""
    writer = None
    for row in campaign_rows(pairs):
        if writer is None:
            writer = csv.DictWriter(stream, fieldnames=list(row))
            writer.writeheader()
        writer.writerow(row)


def grid_series(
    pairs: Sequence[Tuple[SimulationConfig, SimulationResult]],
) -> Dict[Tuple[str, str], Dict[str, List[SimulationResult]]]:
    """Per-(topology, traffic) grids of per-algorithm series.

    Within a grid, each algorithm's series is in expansion order
    (loads, then seeds) — the layout `format_figure` renders.
    """
    grids: Dict[Tuple[str, str], Dict[str, List[SimulationResult]]] = {}
    for config, result in pairs:
        series = grids.setdefault(grid_label(config), {})
        series.setdefault(config.algorithm, []).append(result)
    return grids


def format_campaign_tables(
    spec: CampaignSpec,
    pairs: Sequence[Tuple[SimulationConfig, SimulationResult]],
) -> str:
    """The paper-style latency/throughput tables for every grid."""
    parts = []
    for (topology, traffic), series in grid_series(pairs).items():
        title = f"Campaign {spec.name!r}: {traffic} traffic on {topology}"
        parts.append(format_figure(series, title))
        parts.append("")
        parts.append(peak_summary(series))
        parts.append("")
    return "\n".join(parts).rstrip("\n")


__all__ = [
    "IncompleteCampaignError",
    "campaign_rows",
    "collect",
    "format_campaign_tables",
    "grid_series",
    "write_campaign_csv",
]
