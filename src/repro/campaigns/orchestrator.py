"""Campaign orchestration: spec -> store lookups -> executor -> report.

:func:`run_campaign` expands a :class:`~repro.campaigns.spec.CampaignSpec`,
serves every point already in the :class:`~repro.campaigns.store.ResultStore`
from disk (a cache hit costs no simulation at all), hands the remainder
to an executor, and records each fresh completion into the store as it
lands — so an interrupted campaign resumes per point, and the *next*
campaign that shares points starts from them for free.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from time import monotonic
from typing import List, Optional, Sequence

from repro.campaigns.executors import (
    CampaignExecutor,
    Progress,
    make_executor,
)
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.simulator.config import SimulationConfig
from repro.stats.summary import SimulationResult


class StoreSink:
    """run_points checkpoint adapter that appends into a ResultStore."""

    def __init__(self, store: ResultStore) -> None:
        self.store = store
        self.completed = 0

    def get(self, key: str) -> Optional[SimulationResult]:
        # Cache hits are resolved by the orchestrator before the executor
        # runs (it has the full configs; a bare point key is ambiguous
        # across campaigns), so the executor always simulates.
        return None

    def record(
        self,
        key: str,
        result: SimulationResult,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        if config is None:
            raise ValueError(
                "StoreSink.record needs the point's config to address "
                "the store"
            )
        self.store.put(config, result)
        self.completed += 1


def _format_eta(seconds: float) -> str:
    seconds = max(int(round(seconds)), 0)
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    return f"{hours}:{minutes:02d}:{secs:02d}"


@dataclass
class CampaignReport:
    """What one campaign run did: totals, cache hits, timing, results."""

    name: str
    total: int
    cached: int
    simulated: int
    seconds: float
    configs: List[SimulationConfig] = field(default_factory=list)
    results: List[SimulationResult] = field(default_factory=list)

    @property
    def all_cached(self) -> bool:
        return self.simulated == 0 and self.cached == self.total

    def summary(self) -> str:
        return (
            f"campaign {self.name!r}: {self.total} points, "
            f"cache hits: {self.cached}/{self.total}, "
            f"simulated {self.simulated} in {_format_eta(self.seconds)}"
        )


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    jobs: int = 1,
    executor: Optional[CampaignExecutor] = None,
    progress: Optional[Progress] = None,
    verbose: bool = False,
    batch_size: int = 32,
) -> CampaignReport:
    """Run every point of *spec*, serving repeats from *store*.

    Results come back in the spec's expansion order.  Fresh points are
    appended to the store as they finish; a second identical run is
    100% cache hits and performs zero engine invocations.
    """
    if progress is None:
        def progress(line: str) -> None:
            if verbose:
                print(line, file=sys.stderr)

    started = monotonic()
    configs = spec.expand()
    total = len(configs)
    results: List[Optional[SimulationResult]] = [None] * total
    pending: List[int] = []
    for index, config in enumerate(configs):
        cached = store.get(config)
        if cached is not None:
            results[index] = cached
        else:
            pending.append(index)
    hits = total - len(pending)
    if executor is None:
        executor = make_executor(jobs, batch_size=batch_size)
    progress(
        f"campaign {spec.name!r}: {total} points, {hits} cached, "
        f"{len(pending)} to simulate (executor: {executor.describe()})"
    )

    if pending:
        sink = StoreSink(store)
        run_started = monotonic()

        def eta_progress(line: str) -> None:
            # run_points reports per-point lines against the *pending*
            # subset; re-frame them against the whole campaign and
            # append the ETA implied by the simulation rate so far.
            done = sink.completed
            if done and "[skip]" not in line:
                elapsed = monotonic() - run_started
                remaining = (len(pending) - done) * (elapsed / done)
                line = (
                    f"{line} | campaign {hits + done}/{total}, "
                    f"eta {_format_eta(remaining)}"
                )
            progress(line)

        fresh = executor.run(
            [configs[index] for index in pending],
            sink=sink,
            progress=eta_progress,
        )
        for index, result in zip(pending, fresh):
            results[index] = result

    report = CampaignReport(
        name=spec.name,
        total=total,
        cached=hits,
        simulated=len(pending),
        seconds=round(monotonic() - started, 3),
        configs=configs,
        results=[result for result in results if result is not None],
    )
    progress(report.summary())
    return report


__all__ = ["CampaignReport", "StoreSink", "run_campaign"]
