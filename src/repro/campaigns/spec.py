"""Declarative campaign specifications.

A :class:`CampaignSpec` names a whole grid of simulation points —
(topology x traffic x algorithm x load x seed) — plus the shared
configuration they run under, and expands it to concrete
:class:`~repro.simulator.config.SimulationConfig` points in a fixed,
documented order.  Specs are plain data: they serialize to/from JSON so
campaigns can live in files next to the results they produced.

Example spec file::

    {
      "name": "uniform-vs-hotspot",
      "algorithms": ["ecube", "nbc"],
      "topologies": ["torus:8x2"],
      "traffics": ["uniform",
                   {"pattern": "hotspot", "options": {"fraction": 0.04}}],
      "loads": [0.2, 0.4, 0.6],
      "seeds": [1, 2],
      "profile": "quick",
      "base": {"switching": "wormhole"}
    }

Expansion order is **topologies, then traffics, then algorithms, then
loads, then seeds** (outermost to innermost), so exports and tables are
stable across runs.  The ``profile`` is applied first and an explicit
topology spec overrides the profile's radix.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.profiles import PROFILES, apply_profile
from repro.routing.registry import ALGORITHM_NAMES
from repro.simulator.config import SimulationConfig
from repro.util.errors import ConfigurationError

#: Topology kinds a spec may name (mirrors SimulationConfig validation).
TOPOLOGY_KINDS = ("torus", "mesh")


def parse_topology(spec: str) -> Tuple[str, int, int]:
    """Parse ``"torus:16x2"`` / ``"mesh:4x3"`` into (kind, radix, n_dims)."""
    kind, _, shape = spec.partition(":")
    if kind not in TOPOLOGY_KINDS:
        raise ConfigurationError(
            f"topology spec {spec!r}: kind must be one of "
            f"{TOPOLOGY_KINDS}, got {kind!r}"
        )
    radix_text, _, dims_text = shape.partition("x")
    try:
        radix, n_dims = int(radix_text), int(dims_text)
    except ValueError:
        raise ConfigurationError(
            f"topology spec {spec!r}: expected '<kind>:<radix>x<dims>', "
            f"e.g. 'torus:16x2'"
        ) from None
    if radix < 2 or n_dims < 1:
        raise ConfigurationError(
            f"topology spec {spec!r}: radix must be >= 2 and dims >= 1"
        )
    return kind, radix, n_dims


def format_topology(kind: str, radix: int, n_dims: int) -> str:
    """The spec string for a (kind, radix, n_dims) triple."""
    return f"{kind}:{radix}x{n_dims}"


@dataclass(frozen=True)
class TrafficSpec:
    """One traffic pattern of a campaign, with its options."""

    pattern: str
    options: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def parse(
        cls, data: Union[str, Dict[str, Any], "TrafficSpec"]
    ) -> "TrafficSpec":
        if isinstance(data, TrafficSpec):
            return data
        if isinstance(data, str):
            return cls(pattern=data)
        if isinstance(data, dict):
            unknown = set(data) - {"pattern", "options"}
            if unknown or "pattern" not in data:
                raise ConfigurationError(
                    f"traffic spec {data!r}: expected keys 'pattern' and "
                    "optionally 'options'"
                )
            options = data.get("options") or {}
            return cls(
                pattern=data["pattern"],
                options=tuple(sorted(options.items())),
            )
        raise ConfigurationError(
            f"traffic spec must be a string or mapping, got {data!r}"
        )

    def options_dict(self) -> Dict[str, Any]:
        return dict(self.options)

    def to_dict(self) -> Dict[str, Any]:
        return {"pattern": self.pattern, "options": self.options_dict()}

    def label(self) -> str:
        if not self.options:
            return self.pattern
        args = ",".join(f"{k}={v}" for k, v in self.options)
        return f"{self.pattern}({args})"


@dataclass
class CampaignSpec:
    """A declarative (topology x traffic x algorithm x load x seed) grid."""

    name: str
    algorithms: Tuple[str, ...]
    loads: Tuple[float, ...]
    seeds: Tuple[int, ...] = (1,)
    topologies: Tuple[str, ...] = ("torus:16x2",)
    traffics: Tuple[TrafficSpec, ...] = (TrafficSpec("uniform"),)
    #: Run profile applied to the base config before expansion (an
    #: explicit topology spec overrides the profile's radix); None keeps
    #: the SimulationConfig defaults.
    profile: Optional[str] = None
    #: Extra SimulationConfig field overrides shared by every point
    #: (switching, flow_control, sampling schedule, ...).
    base: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ConfigurationError(
                f"campaign name must be a non-empty string without '/', "
                f"got {self.name!r}"
            )
        self.algorithms = tuple(self.algorithms)
        self.loads = tuple(float(load) for load in self.loads)
        self.seeds = tuple(int(seed) for seed in self.seeds)
        self.topologies = tuple(self.topologies)
        self.traffics = tuple(
            TrafficSpec.parse(traffic) for traffic in self.traffics
        )
        for collection, what in (
            (self.algorithms, "algorithms"),
            (self.loads, "loads"),
            (self.seeds, "seeds"),
            (self.topologies, "topologies"),
            (self.traffics, "traffics"),
        ):
            if not collection:
                raise ConfigurationError(
                    f"campaign {self.name!r}: {what} must be non-empty"
                )
        unknown = set(self.algorithms) - set(ALGORITHM_NAMES)
        if unknown:
            raise ConfigurationError(
                f"campaign {self.name!r}: unknown algorithms "
                f"{sorted(unknown)}; choose from {list(ALGORITHM_NAMES)}"
            )
        if self.profile is not None and self.profile not in PROFILES:
            raise ConfigurationError(
                f"campaign {self.name!r}: unknown profile "
                f"{self.profile!r}; choose from {sorted(PROFILES)}"
            )
        for topology in self.topologies:
            parse_topology(topology)
        point_fields = {"algorithm", "offered_load", "seed", "traffic",
                        "traffic_options", "topology", "radix", "n_dims"}
        overlap = point_fields & set(self.base)
        if overlap:
            raise ConfigurationError(
                f"campaign {self.name!r}: base overrides {sorted(overlap)} "
                "conflict with the spec's own grid axes"
            )

    # -- expansion -------------------------------------------------------

    @property
    def point_count(self) -> int:
        return (
            len(self.topologies)
            * len(self.traffics)
            * len(self.algorithms)
            * len(self.loads)
            * len(self.seeds)
        )

    def base_config(self) -> SimulationConfig:
        """The shared config before the grid axes are applied."""
        config = SimulationConfig(**self.base)
        if self.profile is not None:
            config = apply_profile(config, self.profile)
        return config

    def expand(self) -> List[SimulationConfig]:
        """Every point of the campaign, in the documented order."""
        shared = self.base_config()
        points: List[SimulationConfig] = []
        for topology in self.topologies:
            kind, radix, n_dims = parse_topology(topology)
            for traffic in self.traffics:
                for algorithm in self.algorithms:
                    for load in self.loads:
                        for seed in self.seeds:
                            points.append(
                                dataclasses.replace(
                                    shared,
                                    topology=kind,
                                    radix=radix,
                                    n_dims=n_dims,
                                    traffic=traffic.pattern,
                                    traffic_options=traffic.options_dict(),
                                    algorithm=algorithm,
                                    offered_load=load,
                                    seed=seed,
                                )
                            )
        return points

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "algorithms": list(self.algorithms),
            "loads": list(self.loads),
            "seeds": list(self.seeds),
            "topologies": list(self.topologies),
            "traffics": [traffic.to_dict() for traffic in self.traffics],
            "profile": self.profile,
            "base": dict(self.base),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"campaign spec must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"campaign spec has unknown keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        missing = {"name", "algorithms", "loads"} - set(data)
        if missing:
            raise ConfigurationError(
                f"campaign spec is missing required keys {sorted(missing)}"
            )
        kwargs = dict(data)
        base = kwargs.get("base")
        if base is not None and not isinstance(base, dict):
            raise ConfigurationError(
                f"campaign spec 'base' must be an object, got {base!r}"
            )
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        try:
            with open(path, encoding="utf-8") as stream:
                data = json.load(stream)
        except OSError as error:
            raise ConfigurationError(
                f"cannot read campaign spec {path!r}: {error}"
            ) from None
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"campaign spec {path!r} is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)

    def to_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.to_dict(), stream, indent=2, sort_keys=True)
            stream.write("\n")


def grid_label(config: SimulationConfig) -> Tuple[str, str]:
    """(topology, traffic) labels grouping a campaign's export grids."""
    topology = format_topology(config.topology, config.radix, config.n_dims)
    traffic = config.traffic
    if config.traffic_options:
        args = ",".join(
            f"{k}={v}" for k, v in sorted(config.traffic_options.items())
        )
        traffic = f"{traffic}({args})"
    if config.switching != "wormhole":
        traffic = f"{traffic}/{config.switching}"
    return topology, traffic


__all__ = [
    "CampaignSpec",
    "TOPOLOGY_KINDS",
    "TrafficSpec",
    "format_topology",
    "grid_label",
    "parse_topology",
]
