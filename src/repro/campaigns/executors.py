"""Executor seam: how a campaign's pending points actually run.

An executor turns a list of pending
:class:`~repro.simulator.config.SimulationConfig` points into
:class:`~repro.stats.summary.SimulationResult`s, recording each finished
point into the campaign sink as it lands.  Both shipped executors
delegate to :func:`repro.experiments.parallel.run_points`, which already
implements deterministic submission-order results, per-point persistence
and the batch backend's seed-batch grouping — the seam exists so a
multi-host work-queue executor can slot in later without touching the
orchestrator.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.experiments.parallel import ResultSink, run_points
from repro.simulator.config import SimulationConfig
from repro.stats.summary import SimulationResult

Progress = Callable[[str], None]


class CampaignExecutor:
    """Base executor: runs points serially in process."""

    name = "serial"

    def __init__(self, batch_size: int = 32) -> None:
        self.batch_size = batch_size

    @property
    def jobs(self) -> int:
        return 1

    def run(
        self,
        configs: Sequence[SimulationConfig],
        sink: Optional[ResultSink] = None,
        progress: Optional[Progress] = None,
    ) -> List[SimulationResult]:
        return run_points(
            configs,
            jobs=self.jobs,
            checkpoint=sink,
            progress=progress,
            batch_size=self.batch_size,
        )

    def describe(self) -> str:
        return self.name


SerialExecutor = CampaignExecutor


class ProcessPoolCampaignExecutor(CampaignExecutor):
    """Fan pending points out to a local process pool."""

    name = "pool"

    def __init__(self, jobs: int, batch_size: int = 32) -> None:
        super().__init__(batch_size=batch_size)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._jobs = jobs

    @property
    def jobs(self) -> int:
        return self._jobs

    def describe(self) -> str:
        return f"{self.name} x{self._jobs}"


def make_executor(jobs: int = 1, batch_size: int = 32) -> CampaignExecutor:
    """The standard executor for a local run: serial or process pool."""
    if jobs <= 1:
        return SerialExecutor(batch_size=batch_size)
    return ProcessPoolCampaignExecutor(jobs, batch_size=batch_size)


__all__ = [
    "CampaignExecutor",
    "ProcessPoolCampaignExecutor",
    "ResultSink",
    "SerialExecutor",
    "make_executor",
]
