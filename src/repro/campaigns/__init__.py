"""repro.campaigns — declarative campaigns over a memoized result store.

The pieces, layered bottom-up:

* :mod:`repro.campaigns.identity` — content addresses of simulation
  points (``campaign_signature`` / ``point_key`` / ``result_key``).
* :mod:`repro.campaigns.store` — :class:`ResultStore`, the append-only
  content-addressed store shared across campaigns.
* :mod:`repro.campaigns.spec` — :class:`CampaignSpec`, the declarative
  (topology x traffic x algorithm x load x seed) grid.
* :mod:`repro.campaigns.executors` — the executor seam (serial /
  process pool) over :func:`repro.experiments.parallel.run_points`.
* :mod:`repro.campaigns.orchestrator` — :func:`run_campaign`.
* :mod:`repro.campaigns.export` — CSV/tables straight from the store.
* :mod:`repro.campaigns.cli` — the ``repro-campaign`` entry point.

Exports resolve lazily: :mod:`repro.experiments.parallel` imports the
store layer from here, so importing this package must not (circularly)
pull in the executor layer.
"""

from types import MappingProxyType

__all__ = [
    "CampaignExecutor",
    "CampaignReport",
    "CampaignSpec",
    "ResultStore",
    "SerialExecutor",
    "TrafficSpec",
    "campaign_signature",
    "make_executor",
    "point_key",
    "run_campaign",
]

# Read-only lazy-import table (immutable so ProcessPool workers can never
# drift from the parent — the DET005 worker-shared-state discipline).
_LAZY_EXPORTS = MappingProxyType(
    {
        "CampaignExecutor": ("repro.campaigns.executors", "CampaignExecutor"),
        "CampaignReport": ("repro.campaigns.orchestrator", "CampaignReport"),
        "CampaignSpec": ("repro.campaigns.spec", "CampaignSpec"),
        "ResultStore": ("repro.campaigns.store", "ResultStore"),
        "SerialExecutor": ("repro.campaigns.executors", "SerialExecutor"),
        "TrafficSpec": ("repro.campaigns.spec", "TrafficSpec"),
        "campaign_signature": (
            "repro.campaigns.identity",
            "campaign_signature",
        ),
        "make_executor": ("repro.campaigns.executors", "make_executor"),
        "point_key": ("repro.campaigns.identity", "point_key"),
        "run_campaign": ("repro.campaigns.orchestrator", "run_campaign"),
    }
)


def __getattr__(name: str) -> object:
    """Lazily resolve exports so the store layer imports stay acyclic."""
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(
            f"module 'repro.campaigns' has no attribute {name!r}"
        )
    module_name, attr = target
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
