"""Command-line interface: ``repro-campaign``.

Subcommands::

    repro-campaign run spec.json --store results/store.jsonl --jobs 8
    repro-campaign run --figure 3 --profile quick --store store.jsonl
    repro-campaign status --store store.jsonl [spec.json]
    repro-campaign gc --store store.jsonl [--purge-sidecars]
                      [--max-age-days D] [--max-size-mb M]
    repro-campaign export spec.json --store store.jsonl --csv out.csv

``run`` simulates only the points the store has never seen (a repeated
campaign is 100% cache hits and performs zero engine invocations);
``status`` reports store contents and a spec's cache coverage; ``export``
regenerates CSVs and paper-style tables straight from the store, without
simulating anything.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.campaigns.export import (
    IncompleteCampaignError,
    collect,
    format_campaign_tables,
    write_campaign_csv,
)
from repro.campaigns.orchestrator import run_campaign
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.experiments import paper_figures
from repro.experiments.profiles import PROFILES
from repro.util.errors import ReproError

#: Default store file: one shared store in the working directory, so
#: every campaign run from the same place memoizes into the same pool.
DEFAULT_STORE = "campaign-store.jsonl"


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        metavar="SPEC.json",
        help="campaign spec file (see docs/campaigns.md for the format)",
    )
    parser.add_argument(
        "--figure",
        choices=sorted(paper_figures.FIGURE_GRIDS),
        default=None,
        help="use the built-in campaign spec of a paper figure instead",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default=None,
        help="run profile for --figure specs (default: REPRO_PROFILE "
             "env var or 'scaled')",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="seed for --figure specs"
    )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        metavar="PATH",
        help=f"content-addressed result store file "
             f"(default: {DEFAULT_STORE})",
    )


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description=(
            "Run declarative simulation campaigns over a shared, "
            "content-addressed result store: repeated points are served "
            "from disk instead of re-simulated."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="simulate a campaign's missing points into the store"
    )
    _add_spec_arguments(run)
    _add_store_argument(run)
    run.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the pending points (default 1)",
    )
    run.add_argument(
        "--batch-size", type=int, default=32, metavar="B",
        help="max seeds per lockstep batch for backend='batch' points",
    )
    run.add_argument(
        "--csv", default=None, metavar="PATH",
        help="also export the campaign's results to this CSV file",
    )
    run.add_argument(
        "--tables", action="store_true",
        help="also print the paper-style latency/throughput tables",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )

    status = commands.add_parser(
        "status", help="store contents and a spec's cache coverage"
    )
    _add_spec_arguments(status)
    _add_store_argument(status)

    gc = commands.add_parser(
        "gc",
        help="compact the store file (drop superseded record lines)",
    )
    _add_store_argument(gc)
    gc.add_argument(
        "--purge-sidecars", action="store_true",
        help="also delete .corrupt/.stale quarantine sidecars left by "
             "earlier recoveries (inspect them first)",
    )
    gc.add_argument(
        "--max-age-days", type=float, default=None, metavar="D",
        help="evict records older than D days (records without a "
             "recorded_at stamp count as oldest)",
    )
    gc.add_argument(
        "--max-size-mb", type=float, default=None, metavar="M",
        help="evict oldest records until the store file fits M MiB",
    )

    export = commands.add_parser(
        "export",
        help="regenerate CSV/tables from the store (never simulates)",
    )
    _add_spec_arguments(export)
    _add_store_argument(export)
    export.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write the campaign's results to this CSV file",
    )
    export.add_argument(
        "--tables", action="store_true",
        help="print the paper-style latency/throughput tables",
    )
    export.add_argument(
        "--check", action="store_true",
        help="with --figure: run the figure's shape checks on the "
             "store-served series",
    )

    return parser.parse_args(argv)


def _load_spec(args: argparse.Namespace) -> Optional[CampaignSpec]:
    """The campaign spec named by the arguments (None when omitted)."""
    if args.spec is not None and args.figure is not None:
        raise ReproError("give either a spec file or --figure, not both")
    if args.figure is not None:
        return paper_figures.figure_campaign_spec(
            args.figure, profile=args.profile, seed=args.seed
        )
    if args.spec is not None:
        return CampaignSpec.from_file(args.spec)
    return None


def _require_spec(args: argparse.Namespace) -> CampaignSpec:
    spec = _load_spec(args)
    if spec is None:
        raise ReproError(
            f"'{args.command}' needs a campaign: give a spec file "
            "or --figure N"
        )
    return spec


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _require_spec(args)
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    store = ResultStore(args.store)
    report = run_campaign(
        spec,
        store,
        jobs=args.jobs,
        batch_size=args.batch_size,
        verbose=not args.quiet,
    )
    print(report.summary())
    print(f"store: {args.store} ({len(store)} records)")
    if args.csv or args.tables:
        pairs = list(zip(report.configs, report.results))
        if args.tables:
            print()
            print(format_campaign_tables(spec, pairs))
        if args.csv:
            with open(args.csv, "w", newline="") as stream:
                write_campaign_csv(pairs, stream)
            print(f"wrote {args.csv}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    store = ResultStore(args.store)
    signatures = store.signatures()
    print(f"store: {args.store}")
    print(
        f"records: {len(store)} across {len(signatures)} campaign "
        f"signature(s)"
    )
    if spec is not None:
        cached, missing = store.coverage(spec.expand())
        total = cached + len(missing)
        percent = 100.0 * cached / total if total else 100.0
        print(
            f"campaign {spec.name!r}: {cached}/{total} points cached "
            f"({percent:.1f}%)"
        )
        for config in missing[:5]:
            print(f"  missing: {config.label()}")
        if len(missing) > 5:
            print(f"  ... and {len(missing) - 5} more")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    stats = store.gc(
        purge_sidecars=args.purge_sidecars,
        max_age_days=args.max_age_days,
        max_size_mb=args.max_size_mb,
    )
    print(f"store: {args.store}")
    print(
        f"records: {stats['live_records']} live; "
        f"{stats['dropped_lines']} superseded line(s) dropped "
        f"({stats['lines_before']} -> {stats['lines_after']})"
    )
    if args.max_age_days is not None:
        print(
            f"evicted {stats['evicted_age']} record(s) older than "
            f"{args.max_age_days:g} day(s)"
        )
    if args.max_size_mb is not None:
        print(
            f"evicted {stats['evicted_size']} record(s) to fit "
            f"{args.max_size_mb:g} MiB"
        )
    print(
        f"bytes: {stats['bytes_before']} -> {stats['bytes_after']}"
    )
    for sidecar in stats["sidecars_removed"]:
        print(f"removed sidecar: {sidecar}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    spec = _require_spec(args)
    store = ResultStore(args.store)
    try:
        pairs = collect(spec, store)
    except IncompleteCampaignError as error:
        print(str(error), file=sys.stderr)
        return 3
    if not args.csv and not args.tables and not args.check:
        print(
            "nothing to export: pass --csv PATH and/or --tables "
            "(and --check with --figure)",
            file=sys.stderr,
        )
        return 2
    exit_code = 0
    if args.tables:
        print(format_campaign_tables(spec, pairs))
    if args.check:
        if args.figure is None:
            print("--check needs --figure", file=sys.stderr)
            return 2
        series: dict = {}
        for config, result in pairs:
            series.setdefault(config.algorithm, []).append(result)
        checks = paper_figures.FIGURE_CHECKS[args.figure](series)
        if args.tables:
            print()
        print(paper_figures.format_checks(checks))
        if not all(passed for _, passed in checks):
            exit_code = 1
    if args.csv:
        with open(args.csv, "w", newline="") as stream:
            write_campaign_csv(pairs, stream)
        print(f"wrote {args.csv}")
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "gc":
            return _cmd_gc(args)
        return _cmd_export(args)
    except ReproError as error:
        print(f"repro-campaign {args.command}: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
