"""Content-addressed, append-only store of simulation results.

One :class:`ResultStore` file holds one JSON record per finished
simulation point, keyed by the point's content address
(:func:`~repro.campaigns.identity.result_key`).  The store is shared
across campaigns: any campaign whose expansion contains a previously
simulated config gets that point served from disk instead of
re-simulated, bit-identical to a fresh run (results are a pure function
of the config).

Durability discipline:

* **Append-only.**  Recording a point appends one line; the bytes
  written per point are bounded by that record's own size, never by the
  number of points already stored (the earlier checkpoint format
  re-serialized everything on every record — O(N^2) I/O over a
  campaign).  A torn final line from a killed process is recovered on
  the next load.
* **Nothing untrusted is silently overwritten.**  Corrupt lines and
  records with an unknown schema version are surfaced with a warning,
  and the original file is preserved as a ``<path>.corrupt`` /
  ``<path>.stale`` sidecar before the store rewrites itself from the
  salvageable records.
* **Collision hygiene.**  Every record carries the config dict it was
  simulated from; a lookup whose config disagrees with the stored one
  (a key collision, or a corrupted record) is surfaced and treated as a
  miss rather than served wrong data, and an append that would pair an
  existing key with a different config raises.

Legacy ``repro-sweep --checkpoint`` files (schema v1: one JSON document
rewritten per point) are migrated in place on first open, so existing
campaigns resume transparently through the store.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import warnings
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.campaigns.identity import (
    campaign_signature,
    config_record_dict,
    point_key,
    result_key,
)
from repro.simulator.config import SimulationConfig
from repro.stats.summary import SimulationResult
from repro.util.errors import ReproError

#: Store record schema version ("v" field of every record line).
STORE_VERSION = 2

#: Schema version of the legacy whole-file checkpoint format that
#: :class:`ResultStore` migrates in place.
LEGACY_CHECKPOINT_VERSION = 1


class StoreWarning(UserWarning):
    """A campaign-store file needed recovery or was not trusted."""


class StoreIntegrityError(ReproError):
    """Two different configs mapped to the same store key."""


def _quarantine(path: str, suffix: str, reason: str) -> None:
    """Preserve an untrusted store file as a sidecar and warn about it."""
    sidecar = path + suffix
    try:
        shutil.copy2(path, sidecar)
    except OSError as error:  # pragma: no cover - copy failure is exotic
        warnings.warn(
            f"could not preserve untrusted store file {path!r}: {error}",
            StoreWarning,
            stacklevel=3,
        )
        return
    warnings.warn(
        f"{reason}; the original file is preserved as {sidecar!r}",
        StoreWarning,
        stacklevel=3,
    )


class ResultStore:
    """Append-only result store over one JSONL file.

    *legacy_signature* applies only when *path* holds a legacy (v1)
    whole-file checkpoint: a legacy file recorded by a **different**
    campaign is quarantined as ``<path>.stale`` instead of migrated
    (matching the old checkpoint's trust rule).  ``None`` migrates any
    structurally valid legacy file.
    """

    def __init__(
        self, path: str, legacy_signature: Optional[str] = None
    ) -> None:
        self.path = path
        self._records: Dict[str, Dict[str, Any]] = {}
        self._decoded: Dict[str, SimulationResult] = {}
        self._load(legacy_signature)

    # -- loading ---------------------------------------------------------

    def _load(self, legacy_signature: Optional[str]) -> None:
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path, encoding="utf-8") as stream:
                text = stream.read()
        except OSError as error:
            _quarantine(
                self.path,
                ".corrupt",
                f"store file {self.path!r} is unreadable ({error}); "
                "starting fresh",
            )
            return
        if not text.strip():
            return

        first_line = text.splitlines()[0]
        try:
            first = json.loads(first_line)
        except json.JSONDecodeError:
            first = None
        if isinstance(first, dict) and "points" in first:
            self._adopt_legacy(first, legacy_signature)
            return

        lines = [line for line in text.splitlines() if line.strip()]
        bad = 0
        for line in lines:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            if (
                not isinstance(record, dict)
                or record.get("v") != STORE_VERSION
                or record.get("kind") != "point"
                or "key" not in record
            ):
                bad += 1
                continue
            # Last record wins: a re-append (e.g. a legacy record
            # upgraded with its config) shadows the earlier line.
            self._records[record["key"]] = record
        if bad:
            _quarantine(
                self.path,
                ".corrupt",
                f"store file {self.path!r}: skipped {bad} corrupt or "
                f"unrecognized record line(s) of {len(lines)}",
            )
            self._rewrite()

    def _adopt_legacy(
        self, data: Dict[str, Any], legacy_signature: Optional[str]
    ) -> None:
        """Migrate a v1 whole-file checkpoint into store records."""
        if data.get("version") != LEGACY_CHECKPOINT_VERSION:
            _quarantine(
                self.path,
                ".stale",
                f"checkpoint file {self.path!r} has unknown schema "
                f"version {data.get('version')!r}; starting fresh",
            )
            self._truncate()
            return
        signature = data.get("signature")
        if legacy_signature is not None and signature != legacy_signature:
            _quarantine(
                self.path,
                ".stale",
                f"checkpoint file {self.path!r} was recorded by a "
                "different campaign (signature mismatch); starting fresh",
            )
            self._truncate()
            return
        for point, payload in data.get("points", {}).items():
            key = result_key(str(signature), point)
            self._records[key] = {
                "kind": "point",
                "v": STORE_VERSION,
                "key": key,
                "signature": signature,
                "point": point,
                "config": None,  # legacy checkpoints stored no configs
                "result": payload,
            }
        self._rewrite()

    def _truncate(self) -> None:
        self._rewrite()

    def _rewrite(self) -> None:
        """Atomically rewrite the file from the in-memory records.

        Only used for one-time recovery/migration; the steady-state
        write path is the append in :meth:`put_record`.
        """
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".campaign-store-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                for record in self._records.values():
                    stream.write(json.dumps(record) + "\n")
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # -- reading ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def signatures(self) -> Dict[str, int]:
        """Record count per campaign signature (for ``status``)."""
        counts: Dict[str, int] = {}
        for record in self._records.values():
            signature = str(record.get("signature"))
            counts[signature] = counts.get(signature, 0) + 1
        return counts

    def _decode(self, key: str) -> SimulationResult:
        cached = self._decoded.get(key)
        if cached is None:
            cached = SimulationResult.from_json_dict(
                self._records[key]["result"]
            )
            self._decoded[key] = cached
        return cached

    def get_record(
        self, signature: str, point: str
    ) -> Optional[SimulationResult]:
        """Result stored for one (campaign signature, point key), if any."""
        key = result_key(signature, point)
        if key not in self._records:
            return None
        return self._decode(key)

    def get(self, config: SimulationConfig) -> Optional[SimulationResult]:
        """Result stored for *config*, verified against the stored config.

        A record whose stored config disagrees with *config* (a key
        collision or a corrupted record) is surfaced with a warning and
        treated as a miss: the store never serves a result for a config
        it was not simulated from.
        """
        key = result_key(campaign_signature(config), point_key(config))
        record = self._records.get(key)
        if record is None:
            return None
        stored = record.get("config")
        if stored is not None and stored != config_record_dict(config):
            warnings.warn(
                f"store record {key} does not match the requested config "
                "(fingerprint collision?); treating it as a miss",
                StoreWarning,
                stacklevel=2,
            )
            return None
        return self._decode(key)

    def config_dict(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored config dict of one record (None for legacy records)."""
        record = self._records.get(key)
        if record is None:
            return None
        return record.get("config")

    # -- writing ---------------------------------------------------------

    def put_record(
        self,
        signature: str,
        point: str,
        result: SimulationResult,
        config_dict: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Append one finished point; returns False if already stored.

        Raises :class:`StoreIntegrityError` when *point* is already
        stored under the same key with a **different** config — the
        collision-hygiene guarantee.  A legacy record (no stored config)
        is upgraded in place when the config is now known.
        """
        key = result_key(signature, point)
        existing = self._records.get(key)
        if existing is not None:
            stored = existing.get("config")
            if (
                stored is not None
                and config_dict is not None
                and stored != config_dict
            ):
                raise StoreIntegrityError(
                    f"store key {key} already holds a result for a "
                    f"different config (point {existing.get('point')!r}); "
                    "refusing to overwrite"
                )
            if stored is not None or config_dict is None:
                return False  # identical identity: nothing to add
        record = {
            "kind": "point",
            "v": STORE_VERSION,
            "key": key,
            "signature": signature,
            "point": point,
            "config": config_dict,
            "result": result.to_json_dict(),
            # Unix epoch seconds; drives the gc retention budgets.
            # Older records without the field sort as epoch 0 (evicted
            # first under any budget).
            "recorded_at": time.time(),
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        # Append-only: one line per point, O(record) bytes regardless of
        # how many points the store already holds.
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(record) + "\n")
        self._records[key] = record
        self._decoded.pop(key, None)
        return True

    def put(self, config: SimulationConfig, result: SimulationResult) -> bool:
        """Append *config*'s finished result; returns False if cached."""
        return self.put_record(
            campaign_signature(config),
            point_key(config),
            result,
            config_record_dict(config),
        )

    # -- maintenance -----------------------------------------------------

    def gc(
        self,
        purge_sidecars: bool = False,
        max_age_days: Optional[float] = None,
        max_size_mb: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Compact the store file down to one line per live record.

        The append-only write path can leave superseded lines behind —
        a legacy record re-appended with its config, or shadowed
        duplicates after a crash-recovery load — which cost disk and
        load time but are never served.  ``gc`` atomically rewrites the
        file from the live in-memory records (the exact set lookups are
        answered from), dropping everything else.  With
        *purge_sidecars*, quarantine sidecars (``<path>.corrupt`` /
        ``<path>.stale``) left by earlier recoveries are deleted too —
        only ask for that once their contents have been inspected.

        Retention budgets evict *live* records, oldest first by their
        ``recorded_at`` stamp (records predating the stamp sort as
        epoch 0, so legacy entries go first):

        * *max_age_days* drops every record older than the cutoff
          (relative to *now*, default wall clock — injectable for
          tests).
        * *max_size_mb* then evicts oldest-first until the rewritten
          file fits the budget (sized as each record's JSON line).

        Returns a stats dict: lines/bytes before and after, the number
        of superseded lines dropped, records evicted by each budget,
        and the sidecar paths removed.
        """

        def measure() -> Tuple[int, int]:
            if not os.path.exists(self.path):
                return 0, 0
            with open(self.path, encoding="utf-8") as stream:
                text = stream.read()
            lines = sum(1 for line in text.splitlines() if line.strip())
            return lines, len(text.encode("utf-8"))

        def stamp(key: str) -> float:
            value = self._records[key].get("recorded_at")
            try:
                return float(value) if value is not None else 0.0
            except (TypeError, ValueError):
                return 0.0

        lines_before, bytes_before = measure()

        evicted_age = 0
        if max_age_days is not None:
            if now is None:
                now = time.time()
            cutoff = now - max_age_days * 86400.0
            stale = [
                key for key in self._records if stamp(key) < cutoff
            ]
            for key in stale:
                del self._records[key]
                self._decoded.pop(key, None)
            evicted_age = len(stale)

        evicted_size = 0
        if max_size_mb is not None:
            budget = max_size_mb * 1024.0 * 1024.0
            # Size each record as the JSON line _rewrite would emit.
            sizes = {
                key: len(json.dumps(record)) + 1
                for key, record in self._records.items()
            }
            total = float(sum(sizes.values()))
            # Oldest first; key breaks recorded_at ties deterministically.
            for key in sorted(self._records, key=lambda k: (stamp(k), k)):
                if total <= budget:
                    break
                total -= sizes[key]
                del self._records[key]
                self._decoded.pop(key, None)
                evicted_size += 1

        if lines_before or self._records or evicted_age or evicted_size:
            self._rewrite()
        lines_after, bytes_after = measure()

        removed: List[str] = []
        if purge_sidecars:
            for suffix in (".corrupt", ".stale"):
                sidecar = self.path + suffix
                if os.path.exists(sidecar):
                    os.unlink(sidecar)
                    removed.append(sidecar)
        return {
            "lines_before": lines_before,
            "lines_after": lines_after,
            # Superseded-duplicate lines only; budget evictions are
            # reported separately so the CLI's labels stay truthful.
            "dropped_lines": max(
                0, lines_before - lines_after - evicted_age - evicted_size
            ),
            "bytes_before": bytes_before,
            "bytes_after": bytes_after,
            "live_records": len(self._records),
            "evicted_age": evicted_age,
            "evicted_size": evicted_size,
            "sidecars_removed": removed,
        }

    def coverage(
        self, configs: List[SimulationConfig]
    ) -> Tuple[int, List[SimulationConfig]]:
        """(cached count, missing configs) for a campaign expansion."""
        missing = [
            config for config in configs if self.get(config) is None
        ]
        return len(configs) - len(missing), missing


__all__ = [
    "LEGACY_CHECKPOINT_VERSION",
    "STORE_VERSION",
    "ResultStore",
    "StoreIntegrityError",
    "StoreWarning",
]
