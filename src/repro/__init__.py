"""repro — a reproduction of Boppana & Chalasani (ISCA 1993).

A flit-level wormhole-routing simulator for k-ary n-cubes and meshes, the
six deadlock-free routing algorithms the paper compares (e-cube,
north-last, 2pn, phop, nhop, nbc), the paper's traffic patterns and
statistics methodology, and an experiment harness that regenerates every
figure of the evaluation section.

Quickstart::

    from repro import Torus, SimulationConfig, run_point

    result = run_point(
        SimulationConfig(
            radix=8,
            n_dims=2,
            algorithm="nbc",
            traffic="uniform",
            offered_load=0.3,
        )
    )
    print(result.average_latency, result.achieved_utilization)
"""

from types import MappingProxyType

from repro.routing import (
    ALGORITHM_NAMES,
    RoutingAlgorithm,
    available_algorithms,
    make_algorithm,
)
from repro.topology import Mesh, Torus

__version__ = "1.0.0"

__all__ = [
    "ALGORITHM_NAMES",
    "Mesh",
    "RoutingAlgorithm",
    "SimulationConfig",
    "Torus",
    "__version__",
    "available_algorithms",
    "make_algorithm",
    "run_point",
]

# Read-only lazy-import table (immutable so ProcessPool workers can never
# drift from the parent — the DET005 worker-shared-state discipline).
_LAZY_EXPORTS = MappingProxyType(
    {
        "SimulationConfig": ("repro.simulator.config", "SimulationConfig"),
        "run_point": ("repro.experiments.runner", "run_point"),
    }
)


def __getattr__(name: str) -> object:
    """Lazily resolve heavy simulator exports so bare imports stay cheap."""
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    module_name, attr = target
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
