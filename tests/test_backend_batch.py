"""Cross-backend identity: the vectorized batch engine vs the object engine.

The contract of :mod:`repro.simulator.batch`: a lane of a
:class:`BatchEngine` is **bit-identical** to an object
:class:`~repro.simulator.engine.Engine` running the same config with that
lane's seed — same state fingerprint after any number of cycles, same
samples, same :class:`SimulationResult`.  The object engine stays the
oracle; everything here drives both and compares.

Covered:

* the full supported matrix — all six paper algorithms x mesh/torus x
  wormhole/VCT — compared by state fingerprint at an uneven cycle
  schedule (catches divergence inside a run, not just at the end);
* a randomized fuzz sweep over 50+ sampled configurations;
* batch edge cases: B=1, a deadlock firing in a subset of lanes while
  the rest continue lockstep, and early-drained (stopped) lanes;
* :func:`run_batch` == per-seed :func:`run_point` through the full
  convergence schedule;
* unsupported configurations raising :class:`ConfigurationError`;
* the parallel scheduler's seed-batch grouping and the checkpoint's
  backend portability.
"""

import dataclasses
import random

import pytest

from repro.experiments.parallel import run_points, run_sweep_points
from repro.experiments.runner import run_batch, run_point
from repro.routing.base import RoutingAlgorithm
from repro.routing.registry import ALGORITHM_NAMES
from repro.simulator.batch import BatchEngine
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine
from repro.topology.torus import Torus
from repro.util.errors import ConfigurationError, DeadlockError
from tests.conftest import tiny_config


def batch_config(**overrides) -> SimulationConfig:
    """A 4x4 batch-capable (conservative) config for identity tests."""
    defaults = {
        "flow_control": "conservative",
        "backend": "batch",
        "offered_load": 0.45,
        "message_length": 4,
    }
    defaults.update(overrides)
    return tiny_config(**defaults)


def drive_both(config, seeds, schedule):
    """Step a BatchEngine and per-seed Engines through *schedule*.

    Yields (seed, object fingerprint, batch fingerprint) after every
    chunk of the schedule, so divergence is caught where it starts.
    """
    engine = BatchEngine(config, seeds)
    singles = [
        Engine(dataclasses.replace(config, seed=seed, backend="object"))
        for seed in seeds
    ]
    for cycles in schedule:
        engine.run_cycles(cycles)
        for index, single in enumerate(singles):
            single.run_cycles(cycles)
            yield (
                seeds[index],
                single.state_fingerprint(),
                engine.state_fingerprint(index),
            )
        assert all(
            engine.conservation_check(index) for index in range(len(seeds))
        )


class TestMatrixIdentity:
    """The acceptance matrix: 6 algorithms x mesh/torus x wormhole/vct."""

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    @pytest.mark.parametrize("topology", ["mesh", "torus"])
    @pytest.mark.parametrize("switching", ["wormhole", "vct"])
    def test_fingerprint_identity(self, algorithm, topology, switching):
        config = batch_config(
            algorithm=algorithm, topology=topology, switching=switching
        )
        # Uneven chunks: identity must hold mid-warmup, mid-worm, and
        # deep into the congested steady state, not just at round marks.
        for seed, expected, actual in drive_both(
            config, [23, 7], (1, 7, 113, 179)
        ):
            assert actual == expected, (
                f"{algorithm}/{topology}/{switching} diverged for "
                f"seed {seed}"
            )

    @pytest.mark.parametrize("mux_policy", ["round_robin", "highest_class"])
    @pytest.mark.parametrize(
        "selection_policy", ["first", "random", "least_multiplexed"]
    )
    def test_policy_identity(self, mux_policy, selection_policy):
        config = batch_config(
            algorithm="nbc",
            offered_load=0.6,
            mux_policy=mux_policy,
            selection_policy=selection_policy,
        )
        for seed, expected, actual in drive_both(
            config, [11], (3, 197)
        ):
            assert actual == expected, (
                f"{mux_policy}/{selection_policy} diverged for seed {seed}"
            )


class TestFuzzIdentity:
    def test_fifty_sampled_configs(self):
        """Randomized cross-backend sweep (fixed rng seed: reproducible)."""
        rng = random.Random(20260808)
        for trial in range(50):
            config = batch_config(
                algorithm=rng.choice(ALGORITHM_NAMES),
                topology=rng.choice(["mesh", "torus"]),
                switching=rng.choice(["wormhole", "vct"]),
                selection_policy=rng.choice(
                    ["least_multiplexed", "random", "first"]
                ),
                mux_policy=rng.choice(["round_robin", "highest_class"]),
                offered_load=rng.choice([0.1, 0.3, 0.6, 0.9]),
                message_length=rng.choice([2, 4, 7]),
                injection_limit=rng.choice([None, 1, 2]),
            )
            seeds = [rng.randrange(1, 10_000)]
            cycles = rng.randrange(60, 160)
            for seed, expected, actual in drive_both(
                config, seeds, (cycles,)
            ):
                assert actual == expected, (
                    f"fuzz trial {trial} diverged: {config.label()} "
                    f"seed {seed}"
                )


class _NeverRoutes(RoutingAlgorithm):
    """Deliberately broken: offers no candidates, so worms stall until
    the watchdog fires (all shipped algorithms are deadlock-free, so a
    genuine per-lane deadlock needs a broken router)."""

    name = "never-routes"

    @property
    def num_virtual_channels(self):
        return 1

    def candidates(self, state, current, dst):
        self._check_not_delivered(current, dst)
        return []

    def message_class(self, src, dst, state):
        return 0


class TestBatchEdgeCases:
    def test_single_lane_batch(self):
        """B=1: the degenerate batch is still bit-identical."""
        config = batch_config(algorithm="nbc", offered_load=0.6)
        for seed, expected, actual in drive_both(config, [42], (250,)):
            assert actual == expected

    def test_deadlock_in_subset_of_lanes(self):
        """A watchdog trip freezes its lane; the rest continue lockstep.

        With a broken router at a trickle load, lanes deadlock when
        their own traffic first stalls long enough — at different
        cycles per seed.  At this horizon seeds 1/2/3 have tripped and
        seed 6 has not; the surviving lane must match an object engine
        that sailed past its siblings' deaths unperturbed.
        """
        topology = Torus(4, 2)
        config = batch_config(
            offered_load=0.003, deadlock_threshold=50
        )
        seeds = [1, 2, 3, 6]
        engine = BatchEngine(
            config, seeds, topology=topology,
            algorithm=_NeverRoutes(topology),
        )
        engine.run_cycles(100)
        errors = engine.lane_errors()
        assert sorted(errors) == [0, 1, 2]
        assert engine.running_lane_indices == [3]
        for index, error in errors.items():
            assert isinstance(error, DeadlockError)
            assert f"seed {seeds[index]}" in str(error)
        # Oracle: each object engine dies (or survives) identically.
        for index, seed in enumerate(seeds):
            single = Engine(
                dataclasses.replace(
                    config, seed=seed, backend="object"
                ),
                topology=topology,
                algorithm=_NeverRoutes(topology),
            )
            if index in errors:
                with pytest.raises(DeadlockError, match="no progress"):
                    single.run_cycles(100)
            else:
                single.run_cycles(100)
                fingerprint = engine.state_fingerprint(index)
                assert fingerprint == single.state_fingerprint()

    def test_stopped_lane_does_not_perturb_survivors(self):
        """Early-drained lanes freeze; the rest keep their schedules."""
        config = batch_config(algorithm="nlast", offered_load=0.6)
        seeds = [5, 9, 13]
        engine = BatchEngine(config, seeds)
        engine.run_cycles(150)
        engine.stop_lane(1)
        assert engine.running_lane_indices == [0, 2]
        frozen = engine.state_fingerprint(1)
        engine.run_cycles(150)
        # The stopped lane's state (cycle included) is untouched ...
        assert engine.state_fingerprint(1) == frozen
        # ... and survivors match object engines that ran 300 cycles.
        for index in (0, 2):
            single = Engine(
                dataclasses.replace(
                    config, seed=seeds[index], backend="object"
                )
            )
            single.run_cycles(300)
            assert engine.state_fingerprint(index) == (
                single.state_fingerprint()
            )

    def test_idle_fast_forward_with_stopped_lane(self):
        """All-idle fast-forward consults only the running lanes."""
        config = batch_config(offered_load=0.01)
        engine = BatchEngine(config, [3, 4])
        engine.stop_lane(0)
        engine.run_cycles(500)
        single = Engine(
            dataclasses.replace(config, seed=4, backend="object")
        )
        single.run_cycles(500)
        assert engine.state_fingerprint(1) == single.state_fingerprint()


class TestRunBatch:
    def test_matches_run_point_per_seed(self):
        """The full convergence schedule, summarized per lane."""
        config = batch_config(algorithm="nbc", offered_load=0.5)
        seeds = [4, 8, 15]
        batched = run_batch(config, seeds)
        for seed, result in zip(seeds, batched):
            single = run_point(
                dataclasses.replace(config, seed=seed, backend="object")
            )
            expected = single.to_json_dict()
            actual = result.to_json_dict()
            # Wall clock is the one legitimately backend-dependent
            # field (lockstep lanes share a single timer).
            expected.pop("wall_seconds")
            actual.pop("wall_seconds")
            assert actual == expected

    def test_deadlock_raises_like_run_point(self):
        topology = Torus(4, 2)
        config = batch_config(offered_load=0.01, deadlock_threshold=50)
        with pytest.raises(DeadlockError, match="no progress"):
            run_batch(
                config, [1, 2], topology=topology,
                algorithm=_NeverRoutes(topology),
            )


class TestUnsupportedConfigs:
    def test_config_rejects_batch_with_ideal_flow_control(self):
        with pytest.raises(ConfigurationError, match="conservative"):
            tiny_config(backend="batch")  # default flow_control="ideal"

    def test_config_rejects_batch_with_saf(self):
        with pytest.raises(ConfigurationError, match="saf"):
            batch_config(switching="saf", message_length=4)

    def test_config_rejects_batch_with_obs(self):
        with pytest.raises(ConfigurationError, match="obs"):
            batch_config(obs=True)

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            tiny_config(backend="gpu")

    def test_engine_rejects_empty_seed_list(self):
        with pytest.raises(ConfigurationError, match="seed"):
            BatchEngine(batch_config(), [])

    def test_engine_rejects_ideal_flow_control(self):
        # Constructed directly (bypassing config validation's coupled
        # check) the engine still refuses ideal flow control.
        config = tiny_config(flow_control="ideal")
        with pytest.raises(ConfigurationError, match="conservative"):
            BatchEngine(config, [1])

    def test_engine_rejects_oversized_message_length(self):
        config = batch_config(message_length=2 ** 15)
        with pytest.raises(ConfigurationError, match="int16"):
            BatchEngine(config, [1])


class TestParallelSeedBatches:
    def test_grouped_equals_object_and_survives_pool(self):
        """One seed-batch task per point == per-seed object points,
        serial and with real worker processes."""
        base = batch_config(algorithm="phop")
        configs = run_sweep_points(
            base, ["phop"], (0.3, 0.6), seeds=(2, 5, 11)
        )
        assert len(configs) == 6
        object_configs = [
            dataclasses.replace(c, backend="object") for c in configs
        ]
        expected = run_points(object_configs, jobs=1)
        serial = run_points(configs, jobs=1, batch_size=2)
        pooled = run_points(configs, jobs=2, batch_size=2)
        strip = [
            dataclasses.replace(r, wall_seconds=0.0) for r in expected
        ]
        assert [
            dataclasses.replace(r, wall_seconds=0.0) for r in serial
        ] == strip
        assert [
            dataclasses.replace(r, wall_seconds=0.0) for r in pooled
        ] == strip

    def test_checkpoint_portable_across_backends(self, tmp_path):
        """A campaign checkpointed under one backend resumes under the
        other: per-seed results are bit-identical, so the signature
        excludes the backend field."""
        path = str(tmp_path / "sweep.ckpt.json")
        base = batch_config(algorithm="ecube")
        object_configs = run_sweep_points(
            dataclasses.replace(base, backend="object"),
            ["ecube"], (0.4,), seeds=(3, 7),
        )
        first = run_points(object_configs, checkpoint_path=path)
        # Resume the same campaign with the batch backend: everything
        # is already checkpointed, so no simulation runs at all.
        batch_configs = run_sweep_points(
            base, ["ecube"], (0.4,), seeds=(3, 7)
        )
        resumed = run_points(batch_configs, checkpoint_path=path)
        assert resumed == first
