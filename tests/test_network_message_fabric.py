"""Unit tests for Message life-cycle state and the Fabric container."""

import pytest

from repro.network.fabric import Fabric
from repro.network.message import Message
from repro.util.errors import ConfigurationError


def make_message(**overrides):
    defaults = {
        "msg_id": 1,
        "src": 0,
        "dst": 5,
        "length": 16,
        "distance": 2,
        "route_state": None,
        "msg_class": 0,
        "created_at": 100,
    }
    defaults.update(overrides)
    return Message(**defaults)


class TestMessage:
    def test_initial_position_is_source(self):
        message = make_message()
        assert message.head_node == 0
        assert not message.head_arrived
        assert message.flits_to_inject == 16
        assert not message.injection_complete

    def test_not_delivered_initially(self):
        assert not make_message().delivered

    def test_latency_requires_delivery(self):
        with pytest.raises(ValueError):
            make_message().latency

    def test_latency_after_delivery(self):
        message = make_message()
        message.delivered_at = 150
        assert message.latency == 50

    def test_delivered_when_all_flits_ejected(self):
        message = make_message(length=4)
        message.flits_ejected = 4
        assert message.delivered

    def test_head_node_follows_path(self, torus4):
        from repro.network.virtual_channel import VirtualChannel

        message = make_message()
        link = torus4.out_link(0, 0, 1)
        vc = VirtualChannel(link, 0, 1)
        vc.reserve(message)
        message.path.append(vc)
        assert message.head_node == link.dst
        assert not message.head_arrived  # flit not transferred yet
        vc.receive_flit(0)
        assert message.head_arrived


class TestFabric:
    def test_builds_channel_per_link(self, torus4):
        fabric = Fabric(torus4, num_vcs=3, vc_capacity=1)
        assert len(fabric.channels) == torus4.num_links
        assert all(len(ch.vcs) == 3 for ch in fabric.channels)

    def test_total_virtual_channels(self, torus4):
        fabric = Fabric(torus4, num_vcs=2, vc_capacity=1)
        assert sum(1 for _ in fabric.virtual_channels()) == (
            torus4.num_links * 2
        )

    def test_rejects_zero_vcs(self, torus4):
        with pytest.raises(ConfigurationError):
            Fabric(torus4, num_vcs=0, vc_capacity=1)

    def test_rejects_zero_capacity(self, torus4):
        with pytest.raises(ConfigurationError):
            Fabric(torus4, num_vcs=1, vc_capacity=0)

    def test_flit_counters_reset(self, torus4):
        fabric = Fabric(torus4, num_vcs=1, vc_capacity=2)
        message = make_message(length=4)
        channel = fabric.channel(0)
        channel.vcs[0].reserve(message)
        channel.transmit(0, False, True)
        assert fabric.total_flits_moved() == 1
        fabric.reset_flit_counters()
        assert fabric.total_flits_moved() == 0
        assert fabric.channel(0).vcs[0].flits_carried_total == 0

    def test_occupied_flits(self, torus4):
        fabric = Fabric(torus4, num_vcs=1, vc_capacity=2)
        message = make_message(length=4)
        channel = fabric.channel(0)
        channel.vcs[0].reserve(message)
        channel.transmit(0, False, True)
        channel.transmit(1, False, True)
        assert fabric.occupied_flits() == 2
