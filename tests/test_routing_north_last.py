"""Unit tests for the north-last partially adaptive algorithm."""

import pytest

from repro.routing.north_last import NorthLast
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus
from repro.util.errors import RoutingError


@pytest.fixture
def nlast_mesh():
    return NorthLast(Mesh(10, 2))


@pytest.fixture
def nlast4(torus4):
    return NorthLast(torus4)


class TestResources:
    def test_three_vcs_on_torus(self, nlast4):
        # wrap-count classes: 0, 1, 2 wrap crossings
        assert nlast4.num_virtual_channels == 3

    def test_one_vc_on_mesh(self, nlast_mesh):
        assert nlast_mesh.num_virtual_channels == 1

    def test_partially_adaptive(self, nlast4):
        assert nlast4.adaptive
        assert not nlast4.fully_adaptive

    def test_rejects_3d(self, torus4_3d):
        with pytest.raises(RoutingError):
            NorthLast(torus4_3d)


class TestPaperExample:
    """The paper: routing (3,3)->(1,1) on a 10x10 network always goes
    through (3,2), (3,1), (2,1) — coordinates written (x1, x0)."""

    def path_of(self, algorithm, topo, src_coords, dst_coords):
        # The paper writes (x1, x0); our coords tuples are (x0, x1).
        src = topo.node((src_coords[1], src_coords[0]))
        dst = topo.node((dst_coords[1], dst_coords[0]))
        state = algorithm.new_state(src, dst)
        node = src
        visited = []
        while node != dst:
            choices = algorithm.candidates(state, node, dst)
            assert len(choices) == 1, "north messages have no adaptivity"
            link, vc_class = choices[0]
            state = algorithm.advance(state, node, link, vc_class)
            node = link.dst
            c = topo.coords(node)
            visited.append((c[1], c[0]))
        return visited

    def test_mesh_path_is_forced(self, nlast_mesh):
        path = self.path_of(
            nlast_mesh, nlast_mesh.topology, (3, 3), (1, 1)
        )
        assert path == [(3, 2), (3, 1), (2, 1), (1, 1)]


class TestModes:
    def test_north_message_is_ecube_ordered(self, nlast_mesh):
        topo = nlast_mesh.topology
        src = topo.node((3, 3))
        dst = topo.node((1, 1))  # needs -1 hops in dim 1: north
        state = nlast_mesh.new_state(src, dst)
        assert state.ecube_order

    def test_south_message_is_adaptive(self, nlast_mesh):
        topo = nlast_mesh.topology
        src = topo.node((1, 1))
        dst = topo.node((3, 3))
        state = nlast_mesh.new_state(src, dst)
        assert not state.ecube_order

    def test_adaptive_message_offers_both_dims(self, nlast_mesh):
        topo = nlast_mesh.topology
        src = topo.node((1, 1))
        dst = topo.node((3, 3))
        state = nlast_mesh.new_state(src, dst)
        choices = nlast_mesh.candidates(state, src, dst)
        assert {link.dim for link, _ in choices} == {0, 1}

    def test_adaptive_message_never_offers_north(self, nlast4, torus4):
        for src in range(torus4.num_nodes):
            for dst in range(torus4.num_nodes):
                if src == dst:
                    continue
                state = nlast4.new_state(src, dst)
                if state.ecube_order:
                    continue
                for link, _ in nlast4.candidates(state, src, dst):
                    assert not (link.dim == 1 and link.direction == -1)

    def test_torus_tie_in_dim1_stays_adaptive(self, nlast4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((0, 2))  # dim-1 tie on a 4-ring
        state = nlast4.new_state(src, dst)
        assert not state.ecube_order


class TestWrapCountClasses:
    def test_class_starts_at_zero(self, nlast4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((1, 1))
        state = nlast4.new_state(src, dst)
        for _, vc_class in nlast4.candidates(state, src, dst):
            assert vc_class == 0

    def test_class_increments_on_wrap(self, nlast4, torus4):
        src = torus4.node((3, 0))
        dst = torus4.node((1, 1))
        state = nlast4.new_state(src, dst)
        wrap_link = torus4.out_link(src, 0, 1)
        assert wrap_link.wraps
        state = nlast4.advance(state, src, wrap_link, 0)
        assert state.wraps == 1
        node = wrap_link.dst
        for _, vc_class in nlast4.candidates(state, node, dst):
            assert vc_class == 1

    def test_class_never_exceeds_provisioned(self, nlast4, torus4):
        from repro.analysis.invariants import check_candidates_minimal

        for src in (0, 5, 10, 15):
            for dst in range(torus4.num_nodes):
                if dst != src:
                    check_candidates_minimal(nlast4, src, dst)


class TestMessageClass:
    def test_is_link_and_class_pair(self, nlast4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((1, 1))
        state = nlast4.new_state(src, dst)
        key = nlast4.message_class(src, dst, state)
        assert isinstance(key, tuple) and len(key) == 2
