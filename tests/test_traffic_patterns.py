"""Unit tests for the traffic patterns (uniform, hotspot, local)."""

import random

import pytest

from repro.traffic.hotspot import HotspotTraffic, default_hotspot_node
from repro.traffic.local import LocalTraffic
from repro.traffic.uniform import UniformTraffic
from repro.util.errors import ConfigurationError


class TestUniform:
    def test_never_self(self, torus4):
        pattern = UniformTraffic(torus4)
        rng = random.Random(1)
        assert all(
            pattern.sample_destination(5, rng) != 5 for _ in range(200)
        )

    def test_covers_all_destinations(self, torus4):
        pattern = UniformTraffic(torus4)
        rng = random.Random(2)
        seen = {pattern.sample_destination(0, rng) for _ in range(2000)}
        assert seen == set(range(1, 16))

    def test_distribution_is_uniform(self, torus4):
        pattern = UniformTraffic(torus4)
        dist = pattern.destination_distribution(3)
        assert 3 not in dist
        assert len(dist) == 15
        assert all(p == pytest.approx(1 / 15) for p in dist.values())

    def test_mean_distance_matches_topology_average(self, torus16):
        pattern = UniformTraffic(torus16)
        assert pattern.mean_distance() == pytest.approx(
            torus16.average_distance()
        )

    def test_paper_hop_class_weights(self, torus16):
        """Paper footnote 3: w(1) = 0.0157 and w(16) = 0.0039 on 16^2."""
        weights = UniformTraffic(torus16).hop_class_weights()
        assert weights[1] == pytest.approx(4 / 255)
        assert weights[16] == pytest.approx(1 / 255)
        assert sum(weights.values()) == pytest.approx(1.0)


class TestHotspot:
    def test_default_hotspot_is_max_corner(self, torus16):
        assert default_hotspot_node(torus16) == torus16.node((15, 15))

    def test_paper_probabilities(self, torus16):
        """Paper: 4% hotspot -> 0.0438 to the hotspot, 0.0038 elsewhere."""
        pattern = HotspotTraffic(torus16, fraction=0.04)
        dist = pattern.destination_distribution(0)
        hotspot = torus16.node((15, 15))
        assert dist[hotspot] == pytest.approx(0.0438, abs=0.0003)
        assert dist[1] == pytest.approx(0.00375, abs=0.0002)

    def test_hotspot_receives_11x_traffic(self, torus16):
        pattern = HotspotTraffic(torus16, fraction=0.04)
        dist = pattern.destination_distribution(0)
        hotspot = torus16.node((15, 15))
        ratio = dist[hotspot] / dist[1]
        assert ratio == pytest.approx(11.5, rel=0.05)

    def test_sampling_matches_distribution(self, torus4):
        pattern = HotspotTraffic(torus4, fraction=0.25, hotspots=[15])
        rng = random.Random(3)
        draws = [pattern.sample_destination(0, rng) for _ in range(4000)]
        hot_share = draws.count(15) / len(draws)
        expected = pattern.destination_distribution(0)[15]
        assert hot_share == pytest.approx(expected, rel=0.15)
        assert 0 not in draws

    def test_multiple_hotspots_split_fraction(self, torus4):
        pattern = HotspotTraffic(torus4, fraction=0.2, hotspots=[5, 10])
        dist = pattern.destination_distribution(0)
        assert dist[5] == pytest.approx(dist[10])
        assert dist[5] > dist[1]

    def test_rejects_invalid_fraction(self, torus4):
        with pytest.raises(ConfigurationError):
            HotspotTraffic(torus4, fraction=1.5)

    def test_rejects_bad_hotspot_node(self, torus4):
        with pytest.raises(ConfigurationError):
            HotspotTraffic(torus4, hotspots=[99])


class TestLocal:
    def test_neighbourhood_size_on_paper_network(self, torus16):
        """7x7 window minus the source: 48 candidate destinations."""
        pattern = LocalTraffic(torus16, radius=3)
        assert len(pattern.candidate_destinations(0)) == 48

    def test_mean_distance_is_3_5(self, torus16):
        pattern = LocalTraffic(torus16, radius=3)
        assert pattern.mean_distance() == pytest.approx(3.5)

    def test_paper_hop_class_weights(self, torus16):
        """Paper footnote 3: classes {1,6}: 0.0833, {2,5}: 0.1667,
        {3,4}: 0.25."""
        weights = LocalTraffic(torus16, radius=3).hop_class_weights()
        assert weights[1] == pytest.approx(4 / 48)
        assert weights[2] == pytest.approx(8 / 48)
        assert weights[3] == pytest.approx(12 / 48)
        assert weights[4] == pytest.approx(12 / 48)
        assert weights[5] == pytest.approx(8 / 48)
        assert weights[6] == pytest.approx(4 / 48)

    def test_locality_fraction(self, torus16):
        pattern = LocalTraffic(torus16, radius=3)
        assert pattern.locality_fraction() == pytest.approx(0.4375)

    def test_wraps_around_torus(self, torus16):
        pattern = LocalTraffic(torus16, radius=3)
        neighbourhood = pattern.candidate_destinations(0)
        assert torus16.node((15, 15)) in neighbourhood

    def test_mesh_corner_has_smaller_neighbourhood(self, mesh4):
        pattern = LocalTraffic(mesh4, radius=1)
        assert len(pattern.candidate_destinations(0)) == 3

    def test_rejects_radius_too_large(self, torus4):
        with pytest.raises(ConfigurationError):
            LocalTraffic(torus4, radius=2)

    def test_sampling_stays_local(self, torus16):
        pattern = LocalTraffic(torus16, radius=3)
        rng = random.Random(4)
        src = torus16.node((8, 8))
        for _ in range(300):
            dst = pattern.sample_destination(src, rng)
            assert torus16.distance(src, dst) <= 6
