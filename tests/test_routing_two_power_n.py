"""Unit tests for the two-power-n (2pn) algorithm."""

import pytest

from repro.routing.two_power_n import TwoPowerN
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus


@pytest.fixture
def tpn4(torus4):
    return TwoPowerN(torus4)


class TestResources:
    def test_four_vcs_on_2d(self, tpn4):
        """The paper: 2pn uses the fewest virtual channels, four, for tori."""
        assert tpn4.num_virtual_channels == 4

    def test_eight_vcs_on_3d(self, torus4_3d):
        assert TwoPowerN(torus4_3d).num_virtual_channels == 8

    def test_fully_adaptive(self, tpn4):
        assert tpn4.fully_adaptive


class TestTag:
    def test_tag_bit_set_when_source_below_destination(self, tpn4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((1, 0))  # s0 < d0 only
        assert tpn4.compute_tag(src, dst) == 0b01

    def test_tag_bit_clear_when_source_above(self, tpn4, torus4):
        src = torus4.node((3, 0))
        dst = torus4.node((1, 0))
        assert tpn4.compute_tag(src, dst) == 0b00

    def test_both_bits(self, tpn4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((1, 1))
        assert tpn4.compute_tag(src, dst) == 0b11

    def test_free_bit_defaults_to_zero(self, tpn4, torus4):
        src = torus4.node((2, 0))
        dst = torus4.node((2, 1))  # dim 0 aligned: free bit -> 0
        assert tpn4.compute_tag(src, dst) == 0b10

    def test_tag_is_index_comparison_not_direction(self, tpn4, torus4):
        # s0=0 < d0=3, but minimal travel is the -1 (wrapping) direction:
        # the tag still reflects the index comparison.
        src = torus4.node((0, 0))
        dst = torus4.node((3, 0))
        assert tpn4.compute_tag(src, dst) == 0b01


class TestRouting:
    def test_uses_tag_class_on_every_hop(self, tpn4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((2, 1))
        state = tpn4.new_state(src, dst)
        node = src
        while node != dst:
            choices = tpn4.candidates(state, node, dst)
            for _, vc_class in choices:
                assert vc_class == state
            link, vc_class = choices[0]
            state = tpn4.advance(state, node, link, vc_class)
            node = link.dst

    def test_offers_all_uncorrected_dimensions(self, tpn4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((1, 1))
        choices = tpn4.candidates(tpn4.new_state(src, dst), src, dst)
        assert {link.dim for link, _ in choices} == {0, 1}

    def test_tie_offers_both_directions(self, tpn4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((2, 0))
        choices = tpn4.candidates(tpn4.new_state(src, dst), src, dst)
        directions = {link.direction for link, _ in choices if link.dim == 0}
        assert directions == {1, -1}

    def test_allows_every_minimal_path(self, tpn4, torus4):
        from repro.analysis.invariants import (
            count_minimal_paths,
            enumerate_paths,
        )

        src = torus4.node((0, 0))
        dst = torus4.node((1, 1))
        paths = enumerate_paths(tpn4, src, dst)
        assert len(paths) == count_minimal_paths(tpn4, src, dst) == 2


class TestMeshVariant:
    def test_mesh_uses_same_tag_scheme(self):
        mesh = Mesh(4, 2)
        algorithm = TwoPowerN(mesh)
        assert algorithm.num_virtual_channels == 4
        src = mesh.node((0, 0))
        dst = mesh.node((3, 2))
        assert algorithm.compute_tag(src, dst) == 0b11

    def test_mesh_dependency_graph_acyclic(self):
        """Dally's mesh construction: direction-coherent classes."""
        from repro.analysis import build_dependency_graph, is_acyclic

        algorithm = TwoPowerN(Mesh(4, 2))
        assert is_acyclic(build_dependency_graph(algorithm))


class TestMessageClass:
    def test_class_is_tag(self, tpn4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((1, 1))
        state = tpn4.new_state(src, dst)
        assert tpn4.message_class(src, dst, state) == state
