"""Structural checks on per-hop-class results across algorithms.

The stratified estimator reports a mean latency per hop class; this file
pins the physical structure those strata must have — monotone growth
with distance, and the pipelined floor per class — for several
algorithms at once.
"""

import dataclasses

import pytest

from repro.experiments.runner import run_point
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def per_algorithm_results():
    base = tiny_config(radix=6, offered_load=0.25, seed=33)
    return {
        name: run_point(dataclasses.replace(base, algorithm=name))
        for name in ("ecube", "2pn", "nbc")
    }


class TestHopClassLatencies:
    def test_every_stratum_respects_the_pipelined_floor(
        self, per_algorithm_results
    ):
        message_length = 4  # tiny_config default
        for name, result in per_algorithm_results.items():
            for hops, latency in result.hop_class_latency.items():
                assert latency >= message_length + hops - 1, (name, hops)

    def test_latency_grows_with_distance(self, per_algorithm_results):
        for name, result in per_algorithm_results.items():
            strata = sorted(result.hop_class_latency.items())
            assert len(strata) >= 4, name
            # Allow local non-monotonicity from noise, require the trend.
            assert strata[-1][1] > strata[0][1], name

    def test_all_hop_classes_observed(self, per_algorithm_results):
        """Uniform traffic on a 6x6 torus reaches distances 1..6."""
        for name, result in per_algorithm_results.items():
            assert set(result.hop_class_latency) == set(range(1, 7)), name

    def test_stratified_mean_within_stratum_range(
        self, per_algorithm_results
    ):
        for result in per_algorithm_results.values():
            strata = result.hop_class_latency.values()
            assert min(strata) <= result.average_latency <= max(strata)

    def test_wait_decomposition_consistent(self, per_algorithm_results):
        """average_wait must equal latency minus the pipelined term, up to
        the difference between stratified and plain means."""
        for name, result in per_algorithm_results.items():
            assert result.average_wait >= 0, name
            assert result.average_wait < result.average_latency, name
