"""Unit and property tests for single-ring arithmetic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.topology.ring import (
    crosses_wrap,
    ring_directions,
    ring_distance,
    ring_offset,
    step,
)


class TestRingDistance:
    def test_same_node(self):
        assert ring_distance(3, 3, 8) == 0

    def test_forward_shorter(self):
        assert ring_distance(1, 3, 8) == 2

    def test_backward_shorter(self):
        assert ring_distance(1, 7, 8) == 2

    def test_half_ring(self):
        assert ring_distance(0, 4, 8) == 4

    def test_odd_radix(self):
        assert ring_distance(0, 3, 5) == 2  # backward through 4


class TestRingDirections:
    def test_aligned_gives_nothing(self):
        assert ring_directions(2, 2, 8) == ()

    def test_forward(self):
        assert ring_directions(0, 3, 8) == (1,)

    def test_backward(self):
        assert ring_directions(0, 6, 8) == (-1,)

    def test_tie_gives_both(self):
        assert ring_directions(0, 4, 8) == (1, -1)

    def test_odd_radix_never_ties(self):
        for src in range(5):
            for dst in range(5):
                if src != dst:
                    assert len(ring_directions(src, dst, 5)) == 1


class TestRingOffset:
    def test_forward(self):
        assert ring_offset(1, 3, 8) == 2

    def test_backward(self):
        assert ring_offset(1, 7, 8) == -2

    def test_tie_reported_positive(self):
        assert ring_offset(0, 4, 8) == 4


class TestStepAndWrap:
    def test_step_forward(self):
        assert step(3, 1, 8) == 4

    def test_step_forward_wraps(self):
        assert step(7, 1, 8) == 0

    def test_step_backward_wraps(self):
        assert step(0, -1, 8) == 7

    def test_crosses_wrap_forward_only_at_top(self):
        assert crosses_wrap(7, 1, 8)
        assert not crosses_wrap(6, 1, 8)

    def test_crosses_wrap_backward_only_at_zero(self):
        assert crosses_wrap(0, -1, 8)
        assert not crosses_wrap(1, -1, 8)


@given(
    radix=st.integers(min_value=2, max_value=16),
    src=st.integers(min_value=0, max_value=15),
    dst=st.integers(min_value=0, max_value=15),
)
def test_minimal_direction_reduces_distance(radix, src, dst):
    src %= radix
    dst %= radix
    before = ring_distance(src, dst, radix)
    for direction in ring_directions(src, dst, radix):
        after = ring_distance(step(src, direction, radix), dst, radix)
        assert after == before - 1


@given(
    radix=st.integers(min_value=2, max_value=16),
    src=st.integers(min_value=0, max_value=15),
    dst=st.integers(min_value=0, max_value=15),
)
def test_distance_is_symmetric_and_bounded(radix, src, dst):
    src %= radix
    dst %= radix
    distance = ring_distance(src, dst, radix)
    assert distance == ring_distance(dst, src, radix)
    assert 0 <= distance <= radix // 2


@given(
    radix=st.integers(min_value=2, max_value=16),
    src=st.integers(min_value=0, max_value=15),
    dst=st.integers(min_value=0, max_value=15),
)
def test_offset_magnitude_matches_distance(radix, src, dst):
    src %= radix
    dst %= radix
    assert abs(ring_offset(src, dst, radix)) == ring_distance(src, dst, radix)
