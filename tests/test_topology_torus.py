"""Unit tests for the k-ary n-cube topology."""

import pytest

from repro.topology.torus import Torus
from repro.util.errors import ConfigurationError, TopologyError


class TestConstruction:
    def test_node_count(self, torus4):
        assert torus4.num_nodes == 16

    def test_link_count_is_2n_per_node(self, torus4):
        assert torus4.num_links == 16 * 4

    def test_paper_network_has_1024_links(self, torus16):
        """The 16x16 torus of the paper: 256 nodes, 1024 channels."""
        assert torus16.num_nodes == 256
        assert torus16.num_links == 1024

    def test_three_dimensional(self, torus4_3d):
        assert torus4_3d.num_nodes == 64
        assert torus4_3d.num_links == 64 * 6

    def test_rejects_radix_one(self):
        with pytest.raises(ConfigurationError):
            Torus(1, 2)

    def test_rejects_zero_dims(self):
        with pytest.raises(ConfigurationError):
            Torus(4, 0)


class TestLinks:
    def test_every_node_has_2n_outgoing(self, torus4):
        for node in range(torus4.num_nodes):
            assert len(list(torus4.out_links(node))) == 4

    def test_out_link_destination(self, torus4):
        link = torus4.out_link(0, 0, 1)
        assert link.src == 0
        assert link.dst == torus4.node((1, 0))

    def test_wrap_flags(self, torus4):
        top = torus4.node((3, 0))
        wrap_link = torus4.out_link(top, 0, 1)
        assert wrap_link.wraps
        assert wrap_link.dst == torus4.node((0, 0))
        inner = torus4.out_link(0, 0, 1)
        assert not inner.wraps

    def test_backward_wrap_at_zero(self, torus4):
        wrap_link = torus4.out_link(0, 0, -1)
        assert wrap_link.wraps
        assert wrap_link.dst == torus4.node((3, 0))

    def test_link_indices_are_dense(self, torus4):
        indices = [link.index for link in torus4.links]
        assert indices == list(range(torus4.num_links))

    def test_unidirectional_pairs(self, torus4):
        """Adjacent nodes are connected by two opposite unidirectional links."""
        forward = torus4.out_link(0, 1, 1)
        backward = torus4.out_link(forward.dst, 1, -1)
        assert backward.dst == 0


class TestDistances:
    def test_diameter(self, torus16):
        assert torus16.diameter == 16

    def test_diameter_small(self, torus4):
        assert torus4.diameter == 4

    def test_average_distance_matches_paper(self, torus16):
        """The paper: 16^2 has an average diameter of 8.03."""
        assert torus16.average_distance() == pytest.approx(8.031, abs=0.001)

    def test_distance_wraps(self, torus4):
        assert torus4.distance(torus4.node((0, 0)), torus4.node((3, 3))) == 2

    def test_max_negative_hops(self, torus16):
        """9 virtual-channel classes for nhop on 16^2 => 8 negative hops."""
        assert torus16.max_negative_hops() == 8

    def test_coords_out_of_range(self, torus4):
        with pytest.raises(TopologyError):
            torus4.coords(torus4.num_nodes)


class TestMinimalDirections:
    def test_tie_allows_both(self, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((2, 0))
        assert torus4.minimal_directions(src, dst, 0) == (1, -1)

    def test_unique_direction(self, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((3, 0))
        assert torus4.minimal_directions(src, dst, 0) == (-1,)

    def test_aligned_dimension_empty(self, torus4):
        src = torus4.node((1, 2))
        dst = torus4.node((1, 3))
        assert torus4.minimal_directions(src, dst, 0) == ()


class TestParity:
    def test_origin_even(self, torus4):
        assert torus4.parity(0) == 0

    def test_neighbours_alternate(self, torus6):
        for node in range(torus6.num_nodes):
            for link in torus6.out_links(node):
                assert torus6.parity(link.src) != torus6.parity(link.dst)
