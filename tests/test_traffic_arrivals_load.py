"""Unit and property tests for arrivals and offered-load accounting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.arrivals import GeometricArrivals
from repro.traffic.load import (
    channels_per_node,
    offered_load_to_rate,
    rate_to_offered_load,
)
from repro.traffic.uniform import UniformTraffic
from repro.util.errors import ConfigurationError


class TestGeometricArrivals:
    def test_requires_start(self):
        arrivals = GeometricArrivals(4, 0.5)
        with pytest.raises(AssertionError):
            arrivals.pop_due(0, random.Random(0))

    def test_zero_rate_never_fires(self):
        arrivals = GeometricArrivals(4, 0.0)
        rng = random.Random(0)
        arrivals.start(0, rng)
        for cycle in range(100):
            assert arrivals.pop_due(cycle, rng) == []

    def test_rate_one_fires_every_cycle(self):
        arrivals = GeometricArrivals(3, 1.0)
        rng = random.Random(0)
        arrivals.start(0, rng)
        for cycle in range(5):
            assert sorted(arrivals.pop_due(cycle, rng)) == [0, 1, 2]

    def test_long_run_rate_matches(self):
        rate = 0.13
        arrivals = GeometricArrivals(8, rate)
        rng = random.Random(42)
        arrivals.start(0, rng)
        cycles = 8000
        count = sum(
            len(arrivals.pop_due(cycle, rng)) for cycle in range(cycles)
        )
        assert count / (8 * cycles) == pytest.approx(rate, rel=0.05)

    def test_reseed_preserves_rate(self):
        arrivals = GeometricArrivals(4, 0.2)
        rng = random.Random(7)
        arrivals.start(0, rng)
        for cycle in range(100):
            arrivals.pop_due(cycle, rng)
        arrivals.reseed(100, random.Random(8))
        count = sum(
            len(arrivals.pop_due(cycle, rng)) for cycle in range(100, 3100)
        )
        assert count / (4 * 3000) == pytest.approx(0.2, rel=0.15)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            GeometricArrivals(4, 1.5)

    @given(rate=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=20, deadline=None)
    def test_gaps_are_at_least_one(self, rate):
        arrivals = GeometricArrivals(1, rate)
        rng = random.Random(1)
        arrivals.start(0, rng)
        fired = []
        for cycle in range(300):
            if arrivals.pop_due(cycle, rng):
                fired.append(cycle)
        assert all(b > a for a, b in zip(fired, fired[1:]))


class TestOfferedLoad:
    def test_torus_channels_per_node_is_2n(self, torus16):
        assert channels_per_node(torus16) == 4.0

    def test_paper_full_load_rate(self, torus16):
        """rho=1 on 16^2 with 16-flit msgs: lambda = 4/(16*8.03) ~ 0.031."""
        mean = UniformTraffic(torus16).mean_distance()
        rate = offered_load_to_rate(1.0, torus16, 16, mean)
        assert rate == pytest.approx(0.0311, abs=0.0005)

    def test_roundtrip(self, torus8):
        mean = 4.0
        rate = offered_load_to_rate(0.45, torus8, 16, mean)
        assert rate_to_offered_load(
            rate, torus8, 16, mean
        ) == pytest.approx(0.45)

    def test_rate_capped_at_one(self, torus4):
        assert offered_load_to_rate(100.0, torus4, 1, 0.1) == 1.0

    def test_negative_load_rejected(self, torus4):
        with pytest.raises(ValueError):
            offered_load_to_rate(-0.1, torus4, 16, 2.0)

    @given(load=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_rate_monotone_in_load(self, load):
        from repro.topology.torus import Torus

        torus = Torus(8, 2)
        low = offered_load_to_rate(load / 2, torus, 16, 4.0)
        high = offered_load_to_rate(load, torus, 16, 4.0)
        assert low <= high
