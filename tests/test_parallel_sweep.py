"""Tests for the parallel sweep scheduler and checkpoint resume.

The contract of :mod:`repro.experiments.parallel`:

* a parallel sweep (``jobs > 1``, real worker processes) returns
  **bit-identical** :class:`SimulationResult`s to the serial path for the
  same seeds — all six algorithms on a small torus;
* a checkpoint file makes re-running a campaign skip completed points,
  while a checkpoint from a *different* campaign is rejected;
* checkpoints are append-only store records: recording a point costs
  O(that record) bytes, corrupt/stale files are quarantined with a
  warning instead of silently overwritten, legacy whole-file
  checkpoints migrate in place, an interrupted batch-backend seed group
  resumes per member, and a failed worker never discards its finished
  siblings;
* results survive the JSON roundtrip used by the checkpoint file.
"""

import dataclasses
import json
import os

import pytest

from repro.campaigns.store import STORE_VERSION, ResultStore, StoreWarning
from repro.experiments import parallel
from repro.experiments.parallel import (
    CHECKPOINT_VERSION,
    SweepCheckpoint,
    campaign_signature,
    point_key,
    run_points,
    run_sweep_points,
)
from repro.experiments.runner import run_point
from repro.experiments.sweep import run_sweep, sweep_algorithms
from repro.routing.registry import ALGORITHM_NAMES
from repro.stats.summary import SimulationResult
from repro.util.errors import ConfigurationError
from tests.conftest import tiny_config


class TestSerialParallelIdentity:
    def test_all_algorithms_bit_identical(self):
        """jobs=2 with real worker processes == the serial path, exactly."""
        base = tiny_config(seed=5)
        configs = run_sweep_points(base, ALGORITHM_NAMES, (0.3,))
        assert len(configs) == 6
        serial = run_points(configs, jobs=1)
        parallel = run_points(configs, jobs=2)
        assert serial == parallel  # full dataclass equality, every field

    def test_matches_single_point_runs(self):
        configs = run_sweep_points(tiny_config(seed=9), ["nbc"], (0.2, 0.5))
        pooled = run_points(configs, jobs=2)
        direct = [run_point(config) for config in configs]
        assert pooled == direct

    def test_results_in_submission_order(self):
        configs = run_sweep_points(
            tiny_config(seed=2), ["ecube", "phop"], (0.2, 0.4)
        )
        results = run_points(configs, jobs=2)
        assert [(r.algorithm, r.offered_load) for r in results] == [
            ("ecube", 0.2),
            ("ecube", 0.4),
            ("phop", 0.2),
            ("phop", 0.4),
        ]

    def test_sweep_helpers_expose_jobs(self):
        base = tiny_config(seed=3)
        assert run_sweep(base, (0.2, 0.4), jobs=2) == run_sweep(
            base, (0.2, 0.4)
        )
        series = sweep_algorithms(base, ["ecube", "nbc"], (0.3,), jobs=2)
        assert series == sweep_algorithms(base, ["ecube", "nbc"], (0.3,))

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_points([tiny_config()], jobs=0)


class TestCheckpointResume:
    def _configs(self):
        return run_sweep_points(tiny_config(seed=6), ["ecube"], (0.2, 0.4))

    def test_resume_skips_completed_points(self, tmp_path, monkeypatch):
        path = str(tmp_path / "sweep.ckpt.json")
        configs = self._configs()
        first = run_points(configs, checkpoint_path=path)

        def boom(config):
            raise AssertionError(f"re-ran checkpointed point {config.label()}")

        monkeypatch.setattr(
            "repro.experiments.parallel._run_point_worker", boom
        )
        lines = []
        resumed = run_points(
            configs, checkpoint_path=path, progress=lines.append
        )
        assert resumed == first
        assert len(lines) == len(configs)
        assert all("[skip]" in line for line in lines)

    def test_partial_checkpoint_runs_only_missing_points(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "sweep.ckpt.json")
        configs = self._configs()
        run_points(configs[:1], checkpoint_path=path)

        ran = []
        real_worker = run_point

        def counting(config):
            ran.append(point_key(config))
            return real_worker(config)

        monkeypatch.setattr(
            "repro.experiments.parallel._run_point_worker", counting
        )
        results = run_points(configs, checkpoint_path=path)
        assert ran == [point_key(configs[1])]
        assert len(results) == 2

    def test_foreign_campaign_checkpoint_is_rejected(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "sweep.ckpt.json")
        configs = self._configs()
        run_points(configs, checkpoint_path=path)

        # Same point identities, different campaign (sampling schedule).
        other = [
            dataclasses.replace(c, sample_cycles=c.sample_cycles + 100)
            for c in configs
        ]
        ran = []

        def counting(config):
            ran.append(point_key(config))
            return run_point(config)

        monkeypatch.setattr(
            "repro.experiments.parallel._run_point_worker", counting
        )
        run_points(other, checkpoint_path=path)
        assert len(ran) == len(other)  # nothing was trusted from the file

    def test_corrupt_checkpoint_warns_and_quarantines(self, tmp_path):
        path = tmp_path / "sweep.ckpt.json"
        path.write_text("{not json")
        configs = self._configs()[:1]
        with pytest.warns(StoreWarning, match="corrupt"):
            results = run_points(configs, checkpoint_path=str(path))
        assert len(results) == 1
        # The untrusted bytes were preserved, not silently overwritten...
        sidecar = tmp_path / "sweep.ckpt.json.corrupt"
        assert sidecar.read_text() == "{not json"
        # ... and the file was rebuilt as a valid record store.
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 1
        assert records[0]["point"] == point_key(configs[0])

    def test_checkpoint_file_layout(self, tmp_path):
        path = tmp_path / "sweep.ckpt.json"
        configs = self._configs()
        run_points(configs, checkpoint_path=str(path))
        # One self-contained JSON record line per finished point.
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == len(configs)
        signature = campaign_signature(configs[0])
        assert all(record["kind"] == "point" for record in records)
        assert all(record["v"] == STORE_VERSION for record in records)
        assert all(record["signature"] == signature for record in records)
        assert {record["point"] for record in records} == {
            point_key(config) for config in configs
        }

    def test_progress_reports_completion_counts(self, tmp_path):
        lines = []
        run_points(self._configs(), progress=lines.append)
        assert "[1/2]" in lines[0] and "[2/2]" in lines[1]


class TestLegacyCheckpointMigration:
    def _configs(self):
        return run_sweep_points(tiny_config(seed=6), ["ecube"], (0.2, 0.4))

    def _legacy_payload(self, configs, results, signature=None, version=None):
        return json.dumps(
            {
                "version": (
                    CHECKPOINT_VERSION if version is None else version
                ),
                "signature": (
                    campaign_signature(configs[0])
                    if signature is None
                    else signature
                ),
                "points": {
                    point_key(config): result.to_json_dict()
                    for config, result in zip(configs, results)
                },
            }
        )

    def test_legacy_checkpoint_resumes_and_migrates(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "sweep.ckpt.json"
        configs = self._configs()
        first = run_points(configs)
        path.write_text(self._legacy_payload(configs, first))

        def boom(config):
            raise AssertionError(f"re-ran migrated point {config.label()}")

        monkeypatch.setattr(
            "repro.experiments.parallel._run_point_worker", boom
        )
        resumed = run_points(configs, checkpoint_path=str(path))
        assert resumed == first
        # The file was migrated in place to one record line per point.
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == len(configs)
        assert all(record["v"] == STORE_VERSION for record in records)

    def test_unknown_version_goes_stale_with_warning(self, tmp_path):
        path = tmp_path / "sweep.ckpt.json"
        configs = self._configs()[:1]
        first = run_points(configs)
        original = self._legacy_payload(configs, first, version=99)
        path.write_text(original)
        with pytest.warns(StoreWarning, match="unknown schema version"):
            results = run_points(configs, checkpoint_path=str(path))
        assert len(results) == 1
        assert (tmp_path / "sweep.ckpt.json.stale").read_text() == original

    def test_foreign_legacy_checkpoint_goes_stale(self, tmp_path):
        path = tmp_path / "sweep.ckpt.json"
        configs = self._configs()
        first = run_points(configs)
        original = self._legacy_payload(
            configs, first, signature="0123456789abcdef"
        )
        path.write_text(original)
        with pytest.warns(StoreWarning, match="different campaign"):
            resumed = run_points(configs, checkpoint_path=str(path))
        assert resumed == first  # re-simulated, not trusted from the file
        assert (tmp_path / "sweep.ckpt.json.stale").read_text() == original


class TestAppendOnlyCheckpoint:
    def test_record_bytes_bounded_per_point(self, tmp_path):
        """Recording point N must not rewrite the N-1 points before it."""
        path = str(tmp_path / "store.jsonl")
        base = tiny_config(seed=6)
        result = run_point(base)
        checkpoint = SweepCheckpoint(path, campaign_signature(base))
        sizes = []
        for seed in range(10, 30):
            config = dataclasses.replace(base, seed=seed)
            checkpoint.record(point_key(config), result, config)
            sizes.append(os.path.getsize(path))
        deltas = [after - before for before, after in zip(sizes, sizes[1:])]
        # O(record) bytes per append: every delta is one record's size
        # (identical up to the seed digits), never proportional to the
        # number of points already stored.
        assert max(deltas) <= 1.5 * min(deltas)

    def test_repeated_record_is_a_noop(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        config = tiny_config(seed=6)
        result = run_point(config)
        checkpoint = SweepCheckpoint(path, campaign_signature(config))
        checkpoint.record(point_key(config), result, config)
        size = os.path.getsize(path)
        checkpoint.record(point_key(config), result, config)
        assert os.path.getsize(path) == size


class TestBatchGroupResume:
    def _configs(self):
        base = tiny_config(
            flow_control="conservative", backend="batch", seed=1
        )
        return run_sweep_points(base, ["ecube"], (0.3,), seeds=(1, 2, 3))

    def test_interrupted_group_resumes_per_member(
        self, tmp_path, monkeypatch
    ):
        """A kill between sibling completions re-runs only missing seeds."""
        path = str(tmp_path / "batch.ckpt.json")
        configs = self._configs()
        full = run_points(configs, batch_size=4)

        # Simulate dying mid-group: the process goes down right after
        # persisting the second of the group's three members.
        real_record = SweepCheckpoint.record
        recorded = []

        def dying_record(self, key, result, config=None):
            real_record(self, key, result, config)
            recorded.append(key)
            if len(recorded) == 2:
                raise KeyboardInterrupt

        monkeypatch.setattr(SweepCheckpoint, "record", dying_record)
        with pytest.raises(KeyboardInterrupt):
            run_points(configs, checkpoint_path=path, batch_size=4)
        monkeypatch.undo()

        seen = []
        real_worker = parallel._run_batch_worker

        def counting(batch):
            seen.extend(config.seed for config in batch)
            return real_worker(batch)

        monkeypatch.setattr(
            "repro.experiments.parallel._run_batch_worker", counting
        )
        resumed = run_points(configs, checkpoint_path=path, batch_size=4)
        assert seen == [3]  # only the unrecorded sibling re-ran
        assert resumed == full


class TestWorkerFailureSalvage:
    def test_finished_siblings_survive_a_failing_worker(
        self, tmp_path, monkeypatch
    ):
        """A worker failure must not discard completed, uncheckpointed
        siblings: everything finished is persisted before the error
        propagates, and a resume skips it."""
        path = str(tmp_path / "salvage.ckpt.json")
        good = tiny_config(seed=6, offered_load=0.2)
        # Fails deterministically inside the worker: obs options are
        # validated lazily, at engine-build time.
        bad = dataclasses.replace(
            good, offered_load=0.4, obs=True, obs_options={"stride": -1}
        )
        configs = [bad, good]
        with pytest.raises(ConfigurationError, match="stride"):
            run_points(configs, jobs=2, checkpoint_path=path)

        # The good point completed in its worker and was checkpointed
        # (the run's checkpoint is scoped to configs[0]'s signature).
        store = ResultStore(path)
        assert (
            store.get_record(campaign_signature(bad), point_key(good))
            is not None
        )

        ran = []

        def counting(config):
            ran.append(point_key(config))
            return run_point(config)

        monkeypatch.setattr(
            "repro.experiments.parallel._run_point_worker", counting
        )
        with pytest.raises(ConfigurationError, match="stride"):
            run_points(configs, checkpoint_path=path)
        assert ran == [point_key(bad)]  # the salvaged point was skipped


class TestPointIdentity:
    def test_point_keys_distinct_across_grid(self):
        configs = run_sweep_points(
            tiny_config(), ["ecube", "nbc"], (0.2, 0.4), seeds=(1, 2)
        )
        keys = {point_key(c) for c in configs}
        assert len(keys) == len(configs) == 8

    def test_signature_ignores_point_fields(self):
        a = tiny_config(algorithm="ecube", offered_load=0.2, seed=1)
        b = tiny_config(algorithm="nbc", offered_load=0.8, seed=99)
        assert campaign_signature(a) == campaign_signature(b)

    def test_signature_sees_shared_fields(self):
        a = tiny_config()
        b = tiny_config(switching="vct", vc_buffer_depth=4)
        assert campaign_signature(a) != campaign_signature(b)


class TestResultJsonRoundtrip:
    @pytest.fixture(scope="class")
    def result(self):
        return run_point(tiny_config(offered_load=0.3, seed=4))

    def test_roundtrip_is_identity(self, result):
        payload = result.to_json_dict()
        json.dumps(payload)  # must be JSON-serializable as-is
        assert SimulationResult.from_json_dict(payload) == result

    def test_int_keyed_maps_survive_json(self, result):
        # JSON stringifies dict keys; from_json_dict must restore ints.
        wire = json.loads(json.dumps(result.to_json_dict()))
        back = SimulationResult.from_json_dict(wire)
        assert back.latency_percentiles == result.latency_percentiles
        assert back.hop_class_latency == result.hop_class_latency

    def test_unknown_fields_are_ignored(self, result):
        payload = result.to_json_dict()
        payload["added_in_some_future_version"] = 123
        assert SimulationResult.from_json_dict(payload) == result
