"""Tests for the parallel sweep scheduler and checkpoint resume.

The contract of :mod:`repro.experiments.parallel`:

* a parallel sweep (``jobs > 1``, real worker processes) returns
  **bit-identical** :class:`SimulationResult`s to the serial path for the
  same seeds — all six algorithms on a small torus;
* a checkpoint file makes re-running a campaign skip completed points,
  while a checkpoint from a *different* campaign is rejected;
* results survive the JSON roundtrip used by the checkpoint file.
"""

import dataclasses
import json

import pytest

from repro.experiments.parallel import (
    CHECKPOINT_VERSION,
    campaign_signature,
    point_key,
    run_points,
    run_sweep_points,
)
from repro.experiments.runner import run_point
from repro.experiments.sweep import run_sweep, sweep_algorithms
from repro.routing.registry import ALGORITHM_NAMES
from repro.stats.summary import SimulationResult
from tests.conftest import tiny_config


class TestSerialParallelIdentity:
    def test_all_algorithms_bit_identical(self):
        """jobs=2 with real worker processes == the serial path, exactly."""
        base = tiny_config(seed=5)
        configs = run_sweep_points(base, ALGORITHM_NAMES, (0.3,))
        assert len(configs) == 6
        serial = run_points(configs, jobs=1)
        parallel = run_points(configs, jobs=2)
        assert serial == parallel  # full dataclass equality, every field

    def test_matches_single_point_runs(self):
        configs = run_sweep_points(tiny_config(seed=9), ["nbc"], (0.2, 0.5))
        pooled = run_points(configs, jobs=2)
        direct = [run_point(config) for config in configs]
        assert pooled == direct

    def test_results_in_submission_order(self):
        configs = run_sweep_points(
            tiny_config(seed=2), ["ecube", "phop"], (0.2, 0.4)
        )
        results = run_points(configs, jobs=2)
        assert [(r.algorithm, r.offered_load) for r in results] == [
            ("ecube", 0.2),
            ("ecube", 0.4),
            ("phop", 0.2),
            ("phop", 0.4),
        ]

    def test_sweep_helpers_expose_jobs(self):
        base = tiny_config(seed=3)
        assert run_sweep(base, (0.2, 0.4), jobs=2) == run_sweep(
            base, (0.2, 0.4)
        )
        series = sweep_algorithms(base, ["ecube", "nbc"], (0.3,), jobs=2)
        assert series == sweep_algorithms(base, ["ecube", "nbc"], (0.3,))

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_points([tiny_config()], jobs=0)


class TestCheckpointResume:
    def _configs(self):
        return run_sweep_points(tiny_config(seed=6), ["ecube"], (0.2, 0.4))

    def test_resume_skips_completed_points(self, tmp_path, monkeypatch):
        path = str(tmp_path / "sweep.ckpt.json")
        configs = self._configs()
        first = run_points(configs, checkpoint_path=path)

        def boom(config):
            raise AssertionError(f"re-ran checkpointed point {config.label()}")

        monkeypatch.setattr(
            "repro.experiments.parallel._run_point_worker", boom
        )
        lines = []
        resumed = run_points(
            configs, checkpoint_path=path, progress=lines.append
        )
        assert resumed == first
        assert len(lines) == len(configs)
        assert all("[skip]" in line for line in lines)

    def test_partial_checkpoint_runs_only_missing_points(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "sweep.ckpt.json")
        configs = self._configs()
        run_points(configs[:1], checkpoint_path=path)

        ran = []
        real_worker = run_point

        def counting(config):
            ran.append(point_key(config))
            return real_worker(config)

        monkeypatch.setattr(
            "repro.experiments.parallel._run_point_worker", counting
        )
        results = run_points(configs, checkpoint_path=path)
        assert ran == [point_key(configs[1])]
        assert len(results) == 2

    def test_foreign_campaign_checkpoint_is_rejected(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "sweep.ckpt.json")
        configs = self._configs()
        run_points(configs, checkpoint_path=path)

        # Same point identities, different campaign (sampling schedule).
        other = [
            dataclasses.replace(c, sample_cycles=c.sample_cycles + 100)
            for c in configs
        ]
        ran = []

        def counting(config):
            ran.append(point_key(config))
            return run_point(config)

        monkeypatch.setattr(
            "repro.experiments.parallel._run_point_worker", counting
        )
        run_points(other, checkpoint_path=path)
        assert len(ran) == len(other)  # nothing was trusted from the file

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.ckpt.json"
        path.write_text("{not json")
        configs = self._configs()[:1]
        results = run_points(configs, checkpoint_path=str(path))
        assert len(results) == 1
        # ... and the corrupt file was replaced by a valid one.
        data = json.loads(path.read_text())
        assert data["version"] == CHECKPOINT_VERSION
        assert len(data["points"]) == 1

    def test_checkpoint_file_layout(self, tmp_path):
        path = tmp_path / "sweep.ckpt.json"
        configs = self._configs()
        run_points(configs, checkpoint_path=str(path))
        data = json.loads(path.read_text())
        assert data["signature"] == campaign_signature(configs[0])
        assert set(data["points"]) == {point_key(c) for c in configs}

    def test_progress_reports_completion_counts(self, tmp_path):
        lines = []
        run_points(self._configs(), progress=lines.append)
        assert "[1/2]" in lines[0] and "[2/2]" in lines[1]


class TestPointIdentity:
    def test_point_keys_distinct_across_grid(self):
        configs = run_sweep_points(
            tiny_config(), ["ecube", "nbc"], (0.2, 0.4), seeds=(1, 2)
        )
        keys = {point_key(c) for c in configs}
        assert len(keys) == len(configs) == 8

    def test_signature_ignores_point_fields(self):
        a = tiny_config(algorithm="ecube", offered_load=0.2, seed=1)
        b = tiny_config(algorithm="nbc", offered_load=0.8, seed=99)
        assert campaign_signature(a) == campaign_signature(b)

    def test_signature_sees_shared_fields(self):
        a = tiny_config()
        b = tiny_config(switching="vct", vc_buffer_depth=4)
        assert campaign_signature(a) != campaign_signature(b)


class TestResultJsonRoundtrip:
    @pytest.fixture(scope="class")
    def result(self):
        return run_point(tiny_config(offered_load=0.3, seed=4))

    def test_roundtrip_is_identity(self, result):
        payload = result.to_json_dict()
        json.dumps(payload)  # must be JSON-serializable as-is
        assert SimulationResult.from_json_dict(payload) == result

    def test_int_keyed_maps_survive_json(self, result):
        # JSON stringifies dict keys; from_json_dict must restore ints.
        wire = json.loads(json.dumps(result.to_json_dict()))
        back = SimulationResult.from_json_dict(wire)
        assert back.latency_percentiles == result.latency_percentiles
        assert back.hop_class_latency == result.hop_class_latency

    def test_unknown_fields_are_ignored(self, result):
        payload = result.to_json_dict()
        payload["added_in_some_future_version"] = 123
        assert SimulationResult.from_json_dict(payload) == result
