"""Regression tests for the measurement-path fixes.

Each class pins one repaired defect:

* nearest-rank percentiles were biased low (``(n-1)*mark//100``);
* ``SimulationResult.to_dict`` silently dropped ``average_wait``,
  the latency percentiles and ``vc_class_usage`` from CSV output;
* per-class VC usage counted gap-cycle flits while ``flits_moved``
  counted only sampling windows (mismatched denominators);
* offered loads beyond the injection capacity were clamped silently.
"""

import pytest

from tests.conftest import tiny_config
from repro.experiments.runner import run_point
from repro.simulator.engine import Engine
from repro.stats.metrics import nearest_rank_percentile
from repro.stats.summary import SimulationResult
from repro.traffic.load import max_offered_load, offered_load_to_rate


class TestNearestRankPercentile:
    def test_single_value_is_every_percentile(self):
        for mark in (1, 50, 95, 99, 100):
            assert nearest_rank_percentile([10], mark) == 10.0

    def test_small_n_nearest_rank_table(self):
        # ceil(mark/100 * n) - 1, per the nearest-rank definition.
        assert nearest_rank_percentile([1, 2], 50) == 1.0
        assert nearest_rank_percentile([1, 2], 95) == 2.0
        assert nearest_rank_percentile([1, 2, 3], 50) == 2.0
        assert nearest_rank_percentile([1, 2, 3, 4], 50) == 2.0
        assert nearest_rank_percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_p95_of_four_is_the_max(self):
        # The old (n-1)*mark//100 indexing gave 3 here.
        assert nearest_rank_percentile([1, 2, 3, 4], 95) == 4.0

    def test_p100_is_the_max(self):
        assert nearest_rank_percentile([5, 7, 9], 100) == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nearest_rank_percentile([], 50)

    @pytest.mark.parametrize("mark", [0, -1, 101])
    def test_out_of_range_mark_rejected(self, mark):
        with pytest.raises(ValueError):
            nearest_rank_percentile([1], mark)


def _result(**overrides):
    defaults = {
        "algorithm": "ecube",
        "traffic": "uniform",
        "offered_load": 0.4,
        "injection_rate": 0.1,
        "average_latency": 25.0,
        "latency_error_bound": 1.0,
        "average_wait": 3.5,
        "achieved_utilization": 0.3,
        "delivered_throughput": 0.28,
        "samples_used": 3,
        "converged": True,
        "cycles_simulated": 5000,
        "messages_generated": 900,
        "messages_delivered": 880,
        "messages_refused": 20,
        "latency_percentiles": {50: 22.0, 95: 40.0, 99: 55.0},
        "vc_class_usage": [120, 80],
    }
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestCsvSchema:
    #: The full flat-export schema; adding a column is fine, dropping
    #: one is a regression this list is meant to catch.
    EXPECTED_COLUMNS = {
        "algorithm",
        "traffic",
        "offered_load",
        "offered_load_actual",
        "injection_rate",
        "average_latency",
        "latency_error_bound",
        "average_wait",
        "latency_p50",
        "latency_p95",
        "latency_p99",
        "achieved_utilization",
        "delivered_throughput",
        "samples_used",
        "converged",
        "cycles_simulated",
        "messages_generated",
        "messages_delivered",
        "messages_refused",
        "refusal_rate",
        "vc_class_usage",
        "notes",
    }

    def test_every_reported_quantity_exported(self):
        assert set(_result().to_dict()) >= self.EXPECTED_COLUMNS

    def test_percentiles_flattened(self):
        row = _result().to_dict()
        assert row["latency_p50"] == 22.0
        assert row["latency_p95"] == 40.0
        assert row["latency_p99"] == 55.0

    def test_wait_and_vc_usage_present(self):
        row = _result().to_dict()
        assert row["average_wait"] == 3.5
        assert row["vc_class_usage"] == "120;80"

    def test_missing_percentiles_export_as_zero(self):
        row = _result(latency_percentiles={}).to_dict()
        assert row["latency_p50"] == 0.0
        assert row["latency_p99"] == 0.0

    def test_no_none_values(self):
        row = _result(notes=None, offered_load_actual=None).to_dict()
        assert all(value is not None for value in row.values())
        assert row["offered_load_actual"] == row["offered_load"]


class TestVcUsageWindow:
    def test_sample_vc_usage_shares_flits_moved_denominator(self):
        """Per-sample VC usage must sum to that sample's flit count.

        The old implementation read lifetime per-class counters, so
        warm-up and gap-cycle flits inflated vc_usage relative to
        flits_moved.  Snapshot deltas restore the invariant even with
        traffic flowing through gaps between samples.
        """
        engine = Engine(tiny_config(offered_load=0.5))
        engine.run_cycles(300)  # warm-up traffic outside any sample
        for _ in range(3):
            engine.start_sample()
            engine.run_cycles(250)
            sample = engine.end_sample()
            assert sum(sample.vc_usage) == sample.flits_moved
            assert sample.flits_moved > 0
            engine.run_cycles(100)  # gap cycles, also outside samples

    def test_run_point_vc_usage_bounded_by_sampled_flits(self):
        result = run_point(tiny_config(offered_load=0.5))
        # Total sampled flits = achieved utilization x sampled
        # channel-cycles; the per-class counts partition exactly it.
        assert sum(result.vc_class_usage) > 0


class TestOfferedLoadClamp:
    def test_capacity_is_where_rate_saturates(self, torus4):
        from repro.traffic.registry import make_traffic

        mean_distance = make_traffic("uniform", torus4).mean_distance()
        capacity = max_offered_load(torus4, 4, mean_distance)
        assert offered_load_to_rate(
            capacity, torus4, 4, mean_distance
        ) == pytest.approx(1.0)

    def test_clamped_point_reports_actual_load(self):
        config = tiny_config(
            offered_load=8.0, max_samples=2, min_samples=2
        )
        result = run_point(config)
        assert result.offered_load == 8.0
        assert result.offered_load_actual is not None
        assert result.offered_load_actual < result.offered_load
        assert "clamped" in (result.notes or "")
        assert result.to_dict()["offered_load_actual"] == (
            result.offered_load_actual
        )

    def test_unclamped_point_matches_requested_load(self):
        result = run_point(tiny_config(offered_load=0.2))
        assert result.offered_load_actual == pytest.approx(0.2)
        assert "clamped" not in (result.notes or "")
