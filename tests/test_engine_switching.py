"""Switching-technique semantics: wormhole vs virtual cut-through vs SAF."""

import statistics

import pytest

from repro.simulator.engine import Engine
from tests.conftest import tiny_config


def run_sample(config, warmup=400, cycles=2000):
    engine = Engine(config)
    engine.run_cycles(warmup)
    engine.start_sample()
    engine.run_cycles(cycles)
    return engine, engine.end_sample()


class TestStoreAndForward:
    def test_saf_latency_is_per_hop_store(self):
        """SAF: each hop stores the whole packet -> latency ~ d * m_l."""
        config = tiny_config(
            radix=8,
            switching="saf",
            offered_load=0.02,
            message_length=8,
            seed=3,
        )
        _, sample = run_sample(config)
        assert sample.delivered > 30
        excess_ratio = [
            latency / (hops * 8) for latency, hops in sample.deliveries
        ]
        # At least a store per hop (ratio >= ~1), and little queueing.
        assert min(excess_ratio) >= 1.0
        assert statistics.mean(excess_ratio) < 1.8

    def test_saf_slower_than_wormhole_at_low_load(self):
        common = {"radix": 8, "offered_load": 0.05, "message_length": 8, "seed": 4}
        _, wormhole = run_sample(tiny_config(switching="wormhole", **common))
        _, saf = run_sample(tiny_config(switching="saf", **common))
        assert saf.mean_latency() > 1.5 * wormhole.mean_latency()


class TestVirtualCutThrough:
    def test_vct_matches_wormhole_latency_at_low_load(self):
        """With no blocking, VCT pipelines exactly like wormhole."""
        common = {"radix": 8, "offered_load": 0.03, "message_length": 16, "seed": 5}
        _, wormhole = run_sample(tiny_config(switching="wormhole", **common))
        _, vct = run_sample(tiny_config(switching="vct", **common))
        assert vct.mean_latency() == pytest.approx(
            wormhole.mean_latency(), rel=0.1
        )

    def test_vct_throughput_at_least_wormhole_under_load(self):
        """Buffering blocked packets releases channels: VCT >= wormhole."""
        common = {"radix": 8, "offered_load": 0.8, "seed": 6}
        engine_wh, wormhole = run_sample(
            tiny_config(switching="wormhole", **common)
        )
        engine_vct, vct = run_sample(tiny_config(switching="vct", **common))
        num_links = engine_wh.topology.num_links
        util_wh = wormhole.flits_moved / (wormhole.cycles * num_links)
        util_vct = vct.flits_moved / (vct.cycles * num_links)
        assert util_vct >= 0.95 * util_wh

    def test_conservation_under_vct_and_saf(self):
        for switching in ("vct", "saf"):
            engine, _ = run_sample(
                tiny_config(switching=switching, offered_load=0.7, seed=7)
            )
            assert engine.conservation_check()


class TestSection34:
    def test_2pn_catches_up_to_nbc_under_vct(self):
        """Paper Section 3.4: under VCT, 2pn performs as well as nbc
        (per-flit priority information stops mattering when blocked
        packets leave the network)."""
        loads = {"radix": 8, "offered_load": 0.75, "seed": 8, "message_length": 16}
        utils = {}
        for algorithm in ("2pn", "nbc", "ecube"):
            engine, sample = run_sample(
                tiny_config(switching="vct", algorithm=algorithm, **loads),
                warmup=800,
                cycles=2500,
            )
            utils[algorithm] = sample.flits_moved / (
                sample.cycles * engine.topology.num_links
            )
        assert utils["2pn"] > utils["ecube"]
        assert utils["2pn"] >= 0.75 * utils["nbc"]
