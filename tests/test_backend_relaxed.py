"""The batch backend's relaxed identity mode and its kernel helpers.

Strict mode's contract (bit-identity) is pinned by
``tests/test_backend_batch.py``; relaxed mode's contract is weaker —
statistical equivalence, checked by ``repro-equivalence`` — but it is
still **deterministic**: the same config and seeds must reproduce the
same results, run to run and regardless of how seeds are grouped into
lockstep engines.  These tests pin that, plus flit conservation across
the algorithm grid, the config-validation fences, the interned
:class:`~repro.routing.tables.RouteTable`, and the batched draw helpers
(geometric gaps, destination sampling, numpy rng streams).
"""

import math

import numpy as np
import pytest

from repro.experiments.runner import run_batch
from repro.routing.registry import make_algorithm
from repro.routing.tables import RouteTable
from repro.simulator.batch import BatchEngine
from repro.topology.torus import Torus
from repro.traffic.arrivals import BatchedGeometricArrivals, geometric_gaps
from repro.traffic.base import sample_destinations
from repro.traffic.uniform import UniformTraffic
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStreams
from tests.conftest import tiny_config

ALGORITHMS = ("ecube", "2pn", "nbc", "nhop", "nlast", "phop")


def relaxed_config(**overrides):
    defaults = dict(
        flow_control="conservative",
        backend="batch",
        identity="relaxed",
    )
    defaults.update(overrides)
    return tiny_config(**defaults)


class TestConfigValidation:
    def test_default_identity_is_strict(self):
        assert tiny_config().identity == "strict"

    def test_relaxed_requires_batch_backend(self):
        with pytest.raises(ConfigurationError, match="strict oracle"):
            tiny_config(
                identity="relaxed", flow_control="conservative"
            )

    def test_unknown_identity_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_config(
                identity="loose",
                backend="batch",
                flow_control="conservative",
            )


class TestRelaxedDeterminism:
    def test_repeat_runs_are_identical(self):
        config = relaxed_config(algorithm="nbc", offered_load=0.3)
        seeds = [5, 6, 7]
        first = run_batch(config, seeds)
        second = run_batch(config, seeds)
        assert first == second

    def test_results_independent_of_lane_grouping(self):
        # One 4-lane engine vs two 2-lane engines vs four singles: the
        # per-seed results must not depend on which seeds share an
        # engine (each lane draws from its own generators).
        config = relaxed_config(algorithm="phop", offered_load=0.3)
        seeds = [11, 12, 13, 14]
        together = run_batch(config, seeds)
        paired = run_batch(config, seeds[:2]) + run_batch(
            config, seeds[2:]
        )
        singles = [
            run_batch(config, [seed])[0] for seed in seeds
        ]
        assert together == paired == singles

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_conservation_across_algorithms(self, algorithm):
        config = relaxed_config(algorithm=algorithm, offered_load=0.35)
        engine = BatchEngine(config, [3, 4])
        engine.run_cycles(600)
        for index in range(2):
            assert engine.conservation_check(index)

    def test_mesh_conservation_and_determinism(self):
        config = relaxed_config(
            algorithm="nhop", topology="mesh", offered_load=0.3
        )
        assert run_batch(config, [9, 10]) == run_batch(config, [9, 10])


class TestRouteTable:
    @pytest.fixture
    def table(self):
        topology = Torus(4, 2)
        return RouteTable(make_algorithm("nbc", topology))

    def test_interning_is_idempotent(self, table):
        algorithm = table.algorithm
        state = algorithm.new_state(0, 5)
        row = table.row_for(0, 5, state)
        again = table.row_for(0, 5, algorithm.new_state(0, 5))
        assert row == again
        assert table.size == 1

    def test_row_matches_algorithm_candidates(self, table):
        algorithm = table.algorithm
        state = algorithm.new_state(0, 5)
        row = table.row_for(0, 5, state)
        choices = algorithm.candidates_cached(state, 0, 5)
        v = algorithm.num_virtual_channels
        n = int(table.count[row])
        assert n == len(choices)
        for k, (link, vc_class) in enumerate(choices):
            assert table.cand_flat[row, k] == link.index * v + vc_class
            assert table.cand_ch[row, k] == link.index
            assert table.cand_dst[row, k] == link.dst
            assert bool(table.term[row, k]) == (link.dst == 5)
        # Padding stays -1 past the candidate count.
        assert (table.cand_flat[row, n:] == -1).all()

    def test_term_marks_destination_hops(self, table):
        # A node adjacent to the destination must offer at least one
        # terminal candidate; the table must agree with link.dst.
        algorithm = table.algorithm
        state = algorithm.new_state(1, 0)  # nodes 1 and 0 adjacent
        row = table.row_for(1, 0, state)
        n = int(table.count[row])
        terms = [bool(table.term[row, k]) for k in range(n)]
        dsts = [int(table.cand_dst[row, k]) for k in range(n)]
        assert any(terms)
        assert all(
            term == (dst == 0) for term, dst in zip(terms, dsts)
        )

    def test_successor_rows_are_interned_lazily(self, table):
        algorithm = table.algorithm
        state = algorithm.new_state(0, 5)
        row = table.row_for(0, 5, state)
        nonterm = [
            k
            for k in range(int(table.count[row]))
            if not table.term[row, k]
        ]
        assert nonterm, "0 -> 5 on a 4x4 torus is a multi-hop route"
        k = nonterm[0]
        assert table.succ[row, k] == -1  # not interned yet
        succ = table.successor(row, k)
        assert succ >= 0
        assert table.succ[row, k] == succ
        # The successor row describes the landing node's candidates.
        assert table.node[succ] == int(table.cand_dst[row, k])
        assert table.dst[succ] == 5

    def test_growth_preserves_rows(self):
        topology = Torus(4, 2)
        table = RouteTable(make_algorithm("ecube", topology))
        algorithm = table.algorithm
        rows = {}
        # Intern well past _INITIAL_ROWS=256 to force row growth.
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                state = algorithm.new_state(src, dst)
                rows[(src, dst)] = table.row_for(src, dst, state)
        for (src, dst), row in rows.items():
            state = algorithm.new_state(src, dst)
            assert table.row_for(src, dst, state) == row
            choices = algorithm.candidates_cached(state, src, dst)
            assert int(table.count[row]) == len(choices)


class TestGeometricGaps:
    def test_support_starts_at_one(self):
        gen = np.random.Generator(np.random.PCG64(1))
        gaps = geometric_gaps(20_000, 0.7, gen)
        assert gaps.min() == 1

    def test_mean_matches_geometric(self):
        rate = 0.25
        gen = np.random.Generator(np.random.PCG64(2))
        gaps = geometric_gaps(200_000, rate, gen)
        # Geometric(p) on support {1,2,...} has mean 1/p and variance
        # (1-p)/p^2; 200k draws put the sample mean within ~5 sigma.
        expected = 1.0 / rate
        sigma = math.sqrt((1 - rate) / rate**2 / len(gaps))
        assert abs(gaps.mean() - expected) < 5 * sigma

    def test_rate_one_is_every_cycle(self):
        gen = np.random.Generator(np.random.PCG64(3))
        assert (geometric_gaps(100, 1.0, gen) == 1).all()

    def test_rate_zero_is_never(self):
        gen = np.random.Generator(np.random.PCG64(4))
        gaps = geometric_gaps(10, 0.0, gen)
        assert (gaps > 1 << 50).all()

    def test_batched_arrivals_match_scalar_distribution(self):
        # Same process, different draw order: compare arrival *counts*
        # over a long window between the heap-based and batched
        # implementations (they share the inverse-CDF math).
        from repro.traffic.arrivals import GeometricArrivals
        import random as pyrandom

        cycles, nodes, rate = 4000, 16, 0.2
        rng = pyrandom.Random(7)
        scalar = GeometricArrivals(nodes, rate)
        scalar.start(0, rng)
        scalar_count = 0
        for cycle in range(cycles):
            scalar_count += len(scalar.pop_due(cycle, rng))
        batched = BatchedGeometricArrivals(nodes, rate)
        gen = np.random.Generator(np.random.PCG64(7))
        batched.start(0, gen)
        batched_count = 0
        for cycle in range(cycles):
            batched_count += len(batched.pop_due(cycle, gen))
        expected = cycles * nodes * rate
        sigma = math.sqrt(cycles * nodes * rate * (1 - rate))
        assert abs(scalar_count - expected) < 6 * sigma
        assert abs(batched_count - expected) < 6 * sigma


class TestSampleDestinations:
    @pytest.fixture
    def pattern(self):
        return UniformTraffic(Torus(4, 2))

    def test_table_rows_are_cumulative_to_one(self, pattern):
        table = pattern.destination_table()
        assert table.shape == (16, 16)
        assert np.allclose(table[:, -1], 1.0)
        assert (np.diff(table, axis=1) >= -1e-12).all()

    def test_draws_follow_the_scalar_distribution(self, pattern):
        table = pattern.destination_table()
        gen = np.random.Generator(np.random.PCG64(11))
        srcs = np.zeros(60_000, dtype=np.intp)
        dsts = sample_destinations(table, srcs, gen)
        assert (dsts >= 0).all()
        support = pattern.destination_distribution(0)
        counts = np.bincount(dsts, minlength=16)
        # Every destination the scalar sampler can produce appears with
        # ~its probability; impossible ones (e.g. self) never do.
        for dst in range(16):
            prob = support.get(dst, 0.0)
            if prob == 0.0:
                assert counts[dst] == 0
            else:
                assert counts[dst] / len(dsts) == pytest.approx(
                    prob, rel=0.15
                )

    def test_inactive_source_row_yields_sentinel(self, pattern):
        table = pattern.destination_table().copy()
        table[3, :] = 0.0  # a source that never generates
        gen = np.random.Generator(np.random.PCG64(12))
        dsts = sample_destinations(
            table, np.array([3, 3, 3], dtype=np.intp), gen
        )
        assert (dsts == -1).all()


class TestNumpyStreams:
    def test_same_root_and_name_reproduce(self):
        a = RngStreams(42).numpy_stream("routing")
        b = RngStreams(42).numpy_stream("routing")
        assert (a.random(8) == b.random(8)).all()

    def test_streams_differ_by_name_and_root(self):
        streams = RngStreams(42)
        a = streams.numpy_stream("routing").random(4)
        b = streams.numpy_stream("traffic").random(4)
        c = RngStreams(43).numpy_stream("routing").random(4)
        assert not (a == b).all()
        assert not (a == c).all()

    def test_epoch_advance_renews_the_stream(self):
        streams = RngStreams(42)
        before = streams.numpy_stream("routing").random(4)
        streams.advance_epoch()
        after = streams.numpy_stream("routing").random(4)
        assert not (before == after).all()
