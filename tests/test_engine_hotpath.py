"""Hot-path optimizations must not change simulated behaviour.

The engine's performance work (idle-cycle fast-forward, precomputed
multiplexer scan orders, retry-hint pruning of the ideal-flow-control
fixpoint, inlined flit moves, rng-stream hoisting, scratch lists in
``_select``) is only admissible if the flit schedule is *bit-identical*
to the straightforward seed engine.  These tests pin that down:

* golden traces recorded from the seed engine (commit ``0d46897``) for
  all six algorithms and for every switching / flow-control / mux mode;
* step-by-step driving vs ``run_cycles`` (which fast-forwards idle
  stretches) must land in exactly the same state, rng streams included.
"""

import pytest

from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine
from repro.traffic.arrivals import GeometricArrivals
from repro.util.rng import STREAM_ARRIVALS, STREAM_ROUTING, RngStreams

# (flits_moved_total, delivered_total, generated_total) after 3000 cycles
# on a 6x6 torus at offered load 0.5, seed 7 — recorded from the seed
# engine before any hot-path optimization.
SEED_GOLDEN_TRACES = {
    "ecube": (129222, 2844, 2950),
    "nlast": (142518, 3002, 3089),
    "2pn": (187721, 3856, 3914),
    "phop": (166584, 3399, 3437),
    "nhop": (166165, 3398, 3442),
    "nbc": (194562, 3949, 4002),
}

# (flits_moved_total, delivered_total) after 2000 cycles, nbc on a 4x4
# torus at offered load 0.4, seed 3 — seed-engine values per mode.
SEED_GOLDEN_MODES = {
    ("saf", "ideal", "round_robin"): (46980, 1356),
    ("vct", "ideal", "round_robin"): (47654, 1380),
    ("wormhole", "conservative", "round_robin"): (46220, 1345),
    ("wormhole", "ideal", "highest_class"): (46193, 1346),
}


class TestGoldenTraces:
    @pytest.mark.parametrize("scheduler", ["scan", "active"])
    @pytest.mark.parametrize("algorithm", sorted(SEED_GOLDEN_TRACES))
    def test_algorithm_trace_matches_seed_engine(self, algorithm, scheduler):
        config = SimulationConfig(
            radix=6,
            n_dims=2,
            algorithm=algorithm,
            offered_load=0.5,
            seed=7,
            scheduler=scheduler,
        )
        engine = Engine(config)
        engine.run_cycles(3000)
        trace = (
            engine.flits_moved_total,
            engine.delivered_total,
            engine.generated_total,
        )
        assert trace == SEED_GOLDEN_TRACES[algorithm]
        assert engine.conservation_check()

    @pytest.mark.parametrize("scheduler", ["scan", "active"])
    @pytest.mark.parametrize(
        "switching,flow_control,mux_policy", sorted(SEED_GOLDEN_MODES)
    )
    def test_mode_trace_matches_seed_engine(
        self, switching, flow_control, mux_policy, scheduler
    ):
        config = SimulationConfig(
            radix=4,
            n_dims=2,
            algorithm="nbc",
            offered_load=0.4,
            seed=3,
            switching=switching,
            flow_control=flow_control,
            mux_policy=mux_policy,
            scheduler=scheduler,
        )
        engine = Engine(config)
        engine.run_cycles(2000)
        key = (switching, flow_control, mux_policy)
        assert (
            engine.flits_moved_total,
            engine.delivered_total,
        ) == SEED_GOLDEN_MODES[key]
        assert engine.conservation_check()


class TestObservedGoldenTraces:
    """Full observability on must not perturb the flit schedule.

    Same golden counters as above, with a repro.obs observer attached
    (probes, event trace incl. per-flit moves, heatmap, profiler all
    enabled): observation reads engine state but never feeds back into
    it, so the schedule stays bit-identical to the seed engine.
    """

    @pytest.mark.parametrize("scheduler", ["scan", "active"])
    @pytest.mark.parametrize("algorithm", sorted(SEED_GOLDEN_TRACES))
    def test_observed_trace_matches_seed_engine(self, algorithm, scheduler):
        config = SimulationConfig(
            radix=6,
            n_dims=2,
            algorithm=algorithm,
            offered_load=0.5,
            seed=7,
            scheduler=scheduler,
            obs=True,
            obs_options={
                "stride": 16,
                "trace_flits": True,
                "trace_limit": 1000,
            },
        )
        engine = Engine(config)
        engine.run_cycles(3000)
        trace = (
            engine.flits_moved_total,
            engine.delivered_total,
            engine.generated_total,
        )
        assert trace == SEED_GOLDEN_TRACES[algorithm]
        assert engine.conservation_check()
        # The observer's own books agree with the engine's counters.
        counts = engine.observer.event_counts
        assert counts["flit_moved"] == engine.flits_moved_total
        assert counts["msg_delivered"] == engine.delivered_total
        assert counts["msg_created"] == engine.generated_total


class TestIdleFastForward:
    def _config(self, **overrides):
        base = {
            "radix": 4,
            "n_dims": 2,
            "algorithm": "ecube",
            "offered_load": 0.03,
            "seed": 11,
        }
        base.update(overrides)
        return SimulationConfig(**base)

    def test_run_cycles_matches_stepping(self):
        """run_cycles (which fast-forwards) == step-by-step driving."""
        stepped = Engine(self._config())
        jumped = Engine(self._config())
        for _ in range(6000):
            stepped.step()
        jumped.run_cycles(6000)
        assert jumped.cycle == stepped.cycle == 6000
        assert jumped.flits_moved_total == stepped.flits_moved_total
        assert jumped.generated_total == stepped.generated_total
        assert jumped.delivered_total == stepped.delivered_total
        assert jumped.in_flight == stepped.in_flight
        # The skipped cycles must not have touched any rng stream.
        for name in (STREAM_ARRIVALS, STREAM_ROUTING):
            assert (
                jumped.rng.stream(name).getstate()
                == stepped.rng.stream(name).getstate()
            )
        assert jumped.conservation_check()

    def test_matches_stepping_across_sample_epochs(self):
        stepped = Engine(self._config(offered_load=0.1, seed=3))
        jumped = Engine(self._config(offered_load=0.1, seed=3))
        for chunk in (500, 700, 300):
            for _ in range(chunk):
                stepped.step()
            stepped.advance_streams()
            jumped.run_cycles(chunk)
            jumped.advance_streams()
        assert jumped.flits_moved_total == stepped.flits_moved_total
        assert jumped.delivered_total == stepped.delivered_total

    def test_zero_load_jumps_straight_to_the_end(self):
        engine = Engine(self._config(offered_load=0.0))
        engine.run_cycles(10_000_000)  # instantaneous with fast-forward
        assert engine.cycle == 10_000_000
        assert engine.generated_total == 0

    def test_partial_jump_stops_at_next_arrival(self):
        engine = Engine(self._config(offered_load=0.03))
        first_due = engine.arrivals.next_due
        assert first_due > 0  # idle lead-in at this load/seed
        engine.run_cycles(first_due)
        assert engine.cycle == first_due
        assert engine.generated_total == 0  # arrival cycle not yet run


class TestArrivalsNextDue:
    def test_tracks_heap_minimum(self):
        rng = RngStreams(9).stream(STREAM_ARRIVALS)
        arrivals = GeometricArrivals(num_nodes=8, rate=0.05)
        arrivals.start(0, rng)
        for now in range(200):
            expected = arrivals._heap[0][0]
            assert arrivals.next_due == expected
            due = arrivals.pop_due(now, rng)
            if now < expected:
                assert due == []
            else:
                assert due

    def test_reseed_refreshes_peek(self):
        rng = RngStreams(4).stream(STREAM_ARRIVALS)
        arrivals = GeometricArrivals(num_nodes=4, rate=0.2)
        arrivals.start(0, rng)
        arrivals.reseed(50, rng)
        assert arrivals.next_due == arrivals._heap[0][0]
        assert arrivals.next_due > 50
