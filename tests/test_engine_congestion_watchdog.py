"""Congestion control effects and the deadlock watchdog."""

import pytest

from repro.routing.base import RoutingAlgorithm
from repro.simulator.engine import Engine
from repro.util.errors import DeadlockError
from tests.conftest import tiny_config


class TestCongestionControl:
    def test_refusals_appear_past_saturation(self):
        engine = Engine(tiny_config(offered_load=1.0, seed=3))
        engine.run_cycles(600)
        engine.start_sample()
        engine.run_cycles(600)
        sample = engine.end_sample()
        assert sample.refused > 0

    def test_no_refusals_at_light_load(self):
        engine = Engine(tiny_config(offered_load=0.05, seed=3))
        engine.start_sample()
        engine.run_cycles(1500)
        sample = engine.end_sample()
        assert sample.refused == 0

    def test_limit_bounds_saturation_latency(self):
        """The paper's rationale: input-buffer limits keep latencies
        bounded past saturation."""
        def mean_latency(limit):
            engine = Engine(
                tiny_config(offered_load=1.0, injection_limit=limit, seed=4)
            )
            engine.run_cycles(2500)
            engine.start_sample()
            engine.run_cycles(1500)
            return engine.end_sample().mean_latency()

        assert mean_latency(1) < mean_latency(8)

    def test_disabled_control_admits_everything(self):
        engine = Engine(
            tiny_config(offered_load=1.0, injection_limit=None, seed=5)
        )
        engine.run_cycles(800)
        assert engine.controller.refused == 0


class _NeverRoutes(RoutingAlgorithm):
    """Deliberately broken: requests a channel that is never granted."""

    name = "never-routes"

    def __init__(self, topology):
        super().__init__(topology)
        # Park a permanent fake owner on every class-0 virtual channel by
        # simply offering an out-of-reach candidate list: an empty one.

    @property
    def num_virtual_channels(self):
        return 1

    def candidates(self, state, current, dst):
        self._check_not_delivered(current, dst)
        return []  # nothing to wait on: the message is stuck forever

    def message_class(self, src, dst, state):
        return 0


class TestWatchdog:
    def test_stuck_network_raises_deadlock_error(self, torus4):
        config = tiny_config(offered_load=0.5, deadlock_threshold=300)
        engine = Engine(config, algorithm=_NeverRoutes(torus4))
        with pytest.raises(DeadlockError, match="no progress"):
            engine.run_cycles(5000)

    def test_idle_network_never_raises(self):
        config = tiny_config(offered_load=0.0, deadlock_threshold=100)
        engine = Engine(config)
        engine.run_cycles(2000)  # nothing in flight: no watchdog firing

    @pytest.mark.parametrize(
        "algorithm", ["ecube", "nlast", "2pn", "phop", "nhop", "nbc"]
    )
    def test_paper_algorithms_never_trip_watchdog(self, algorithm):
        """Deadlock freedom, empirically: sustained overload with a tight
        watchdog threshold."""
        config = tiny_config(
            radix=6,
            algorithm=algorithm,
            offered_load=1.0,
            deadlock_threshold=2000,
            seed=6,
        )
        engine = Engine(config)
        engine.run_cycles(8000)
        assert engine.delivered_total > 0
