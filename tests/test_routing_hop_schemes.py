"""Unit tests for the positive-hop, negative-hop, and bonus-card schemes."""

import pytest

from repro.routing.bonus_cards import NegativeHopBonusCards
from repro.routing.negative_hop import NegativeHop
from repro.routing.positive_hop import PositiveHop
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus
from repro.util.errors import RoutingError


class TestVirtualChannelBudgets:
    """The VC counts the paper quotes for a 16x16 torus."""

    def test_phop_needs_17(self, torus16):
        assert PositiveHop(torus16).num_virtual_channels == 17

    def test_nhop_needs_9(self, torus16):
        assert NegativeHop(torus16).num_virtual_channels == 9

    def test_nbc_needs_9(self, torus16):
        assert NegativeHopBonusCards(torus16).num_virtual_channels == 9

    def test_phop_small(self, torus4):
        assert PositiveHop(torus4).num_virtual_channels == 5

    def test_nhop_small(self, torus4):
        assert NegativeHop(torus4).num_virtual_channels == 3


class TestOddRadix:
    def test_nhop_rejects_odd_torus(self):
        with pytest.raises(RoutingError):
            NegativeHop(Torus(5, 2))

    def test_nbc_rejects_odd_torus(self):
        with pytest.raises(RoutingError):
            NegativeHopBonusCards(Torus(5, 2))

    def test_phop_accepts_odd_torus(self):
        assert PositiveHop(Torus(5, 2)).num_virtual_channels == 5

    def test_nhop_accepts_odd_mesh(self):
        """Meshes are bipartite at any radix."""
        assert NegativeHop(Mesh(5, 2)).num_virtual_channels == 5


class TestPositiveHop:
    def test_class_equals_hops_taken(self, torus4):
        scheme = PositiveHop(torus4)
        src, dst = 0, torus4.node((2, 1))
        state = scheme.new_state(src, dst)
        node = src
        expected = 0
        while node != dst:
            choices = scheme.candidates(state, node, dst)
            for _, vc_class in choices:
                assert vc_class == expected
            link, vc_class = choices[0]
            state = scheme.advance(state, node, link, vc_class)
            node = link.dst
            expected += 1

    def test_fully_adaptive_paths(self, torus4):
        from repro.analysis.invariants import (
            count_minimal_paths,
            enumerate_paths,
        )

        scheme = PositiveHop(torus4)
        src = torus4.node((0, 0))
        dst = torus4.node((1, 1))
        assert len(enumerate_paths(scheme, src, dst)) == count_minimal_paths(
            scheme, src, dst
        )


class TestNegativeHopPaperExample:
    """The paper's Figure 2: routing (4,4)->(2,2) on a 6x6 torus."""

    def test_channel_classes_along_the_path(self, torus6):
        scheme = NegativeHop(torus6)
        # The paper writes (x1, x0): (4,4)->(3,4)->(3,3)->(2,3)->(2,2).
        def node(paper_coords):
            return torus6.node((paper_coords[1], paper_coords[0]))

        hops = [(4, 4), (3, 4), (3, 3), (2, 3), (2, 2)]
        expected_classes = [0, 0, 1, 1]
        src, dst = node(hops[0]), node(hops[-1])
        state = scheme.new_state(src, dst)
        for here, there, expected in zip(hops, hops[1:], expected_classes):
            current, nxt = node(here), node(there)
            choices = scheme.candidates(state, current, dst)
            chosen = [
                (link, c) for link, c in choices if link.dst == nxt
            ]
            assert chosen, f"path hop {here}->{there} must be permitted"
            link, vc_class = chosen[0]
            assert vc_class == expected
            state = scheme.advance(state, current, link, vc_class)

    def test_negative_hop_is_from_odd_node(self, torus6):
        scheme = NegativeHop(torus6)
        odd_node = torus6.node((1, 0))
        even_node = torus6.node((0, 0))
        assert scheme.class_after_hop(3, odd_node) == 4
        assert scheme.class_after_hop(3, even_node) == 3


class TestNegativeHopsRequired:
    def test_even_source(self, torus6):
        scheme = NegativeHop(torus6)
        src = torus6.node((0, 0))
        dst = torus6.node((2, 1))  # distance 3, even source
        assert scheme.negative_hops_required(src, dst) == 1

    def test_odd_source(self, torus6):
        scheme = NegativeHop(torus6)
        src = torus6.node((1, 0))
        dst = torus6.node((0, 2))  # distance 3, odd source
        assert scheme.negative_hops_required(src, dst) == 2

    def test_path_independent(self, torus6):
        """Every minimal path takes the same number of negative hops."""
        from repro.analysis.invariants import enumerate_paths

        scheme = NegativeHop(torus6)
        src = torus6.node((4, 4))
        dst = torus6.node((2, 2))
        expected = scheme.negative_hops_required(src, dst)
        for path in enumerate_paths(scheme, src, dst):
            negatives = sum(
                1 for node in path[:-1] if scheme.topology.parity(node)
            )
            assert negatives == expected


class TestBonusCards:
    def test_paper_formula(self, torus16):
        """bonus = max possible negative hops - negative hops needed."""
        scheme = NegativeHopBonusCards(torus16)
        src = torus16.node((0, 0))
        far = torus16.node((8, 8))  # diametrically opposite
        near = torus16.node((1, 0))
        assert scheme.bonus_cards(src, far) == 0
        assert scheme.bonus_cards(src, near) == 8

    def test_first_hop_offers_class_range(self, torus4):
        scheme = NegativeHopBonusCards(torus4)
        src = torus4.node((0, 0))
        dst = torus4.node((1, 0))
        bonus = scheme.bonus_cards(src, dst)
        assert bonus == 2
        state = scheme.new_state(src, dst)
        classes = {c for _, c in scheme.candidates(state, src, dst)}
        assert classes == {0, 1, 2}

    def test_after_first_hop_single_class(self, torus4):
        scheme = NegativeHopBonusCards(torus4)
        src = torus4.node((0, 0))
        dst = torus4.node((1, 1))
        state = scheme.new_state(src, dst)
        link, vc_class = scheme.candidates(state, src, dst)[-1]
        state = scheme.advance(state, src, link, vc_class)
        node = link.dst
        follow_up = {c for _, c in scheme.candidates(state, node, dst)}
        assert len(follow_up) == 1

    def test_top_class_never_exceeds_budget(self, torus6):
        """bonus + negative hops <= max negative hops for every pair."""
        scheme = NegativeHopBonusCards(torus6)
        top = scheme.num_virtual_channels - 1
        for src in range(scheme.topology.num_nodes):
            for dst in range(scheme.topology.num_nodes):
                if src == dst:
                    continue
                ceiling = (
                    scheme.bonus_cards(src, dst)
                    + scheme.negative_hops_required(src, dst)
                )
                assert ceiling <= top

    def test_zero_bonus_matches_nhop(self, torus4):
        nbc = NegativeHopBonusCards(torus4)
        nhop = NegativeHop(torus4)
        src = torus4.node((0, 0))
        dst = torus4.node((2, 2))  # diametrically opposite: zero bonus
        assert nbc.bonus_cards(src, dst) == 0
        nbc_choices = nbc.candidates(nbc.new_state(src, dst), src, dst)
        nhop_choices = nhop.candidates(nhop.new_state(src, dst), src, dst)
        assert {
            (link.index, c) for link, c in nbc_choices
        } == {(link.index, c) for link, c in nhop_choices}


class TestMessageClasses:
    def test_phop_single_class(self, torus4):
        scheme = PositiveHop(torus4)
        assert scheme.message_class(0, 5, scheme.new_state(0, 5)) == 0

    def test_nbc_class_is_bonus(self, torus4):
        scheme = NegativeHopBonusCards(torus4)
        src = torus4.node((0, 0))
        dst = torus4.node((1, 0))
        state = scheme.new_state(src, dst)
        assert scheme.message_class(src, dst, state) == 2
