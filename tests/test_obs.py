"""The repro.obs observability layer.

Two properties anchor everything here:

* attaching an observer never changes simulated behaviour (the
  golden-parity test drives the same config with and without one and
  compares every counter);
* what the observer reports is consistent with the engine's own
  lifetime counters (events vs totals, heatmap vs flits moved).
"""

import io
import json
import os

import pytest

from tests.conftest import tiny_config
from repro.obs import (
    EVENT_TYPES,
    CongestionHeatmap,
    ObsConfig,
    Observer,
    PhaseProfiler,
    ProbeRegistry,
    RingBuffer,
    TraceWriter,
    validate_trace_lines,
)
from repro.simulator.engine import Engine
from repro.util.errors import ConfigurationError


class TestRingBuffer:
    def test_keeps_everything_under_capacity(self):
        ring = RingBuffer(4)
        for value in range(3):
            ring.append(value)
        assert ring.to_list() == [0, 1, 2]
        assert ring.dropped == 0
        assert ring.last() == 2

    def test_overwrites_oldest_when_full(self):
        ring = RingBuffer(3)
        for value in range(10):
            ring.append(value)
        assert ring.to_list() == [7, 8, 9]
        assert ring.dropped == 7
        assert len(ring) == 3

    def test_iterates_oldest_first(self):
        ring = RingBuffer(2)
        ring.append("a")
        ring.append("b")
        ring.append("c")
        assert list(ring) == ["b", "c"]

    def test_empty_last_raises(self):
        with pytest.raises(IndexError):
            RingBuffer(2).last()


class TestTraceWriter:
    def test_limit_counts_dropped(self):
        trace = TraceWriter(limit=2)
        for cycle in range(5):
            trace.emit(cycle, "msg_created", msg=cycle)
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_written_trace_validates(self):
        trace = TraceWriter(meta={"label": "t"})
        trace.emit(1, "msg_created", msg=0, src=0, dst=5)
        trace.emit(2, "vc_acquired", msg=0, link=3, vc=0)
        trace.emit(9, "msg_delivered", msg=0)
        stream = io.StringIO()
        trace.write(stream)
        counts = validate_trace_lines(stream.getvalue().splitlines())
        assert counts == {
            "msg_created": 1,
            "vc_acquired": 1,
            "msg_delivered": 1,
        }

    def test_header_carries_schema_and_meta(self):
        trace = TraceWriter(meta={"seed": 7})
        stream = io.StringIO()
        trace.write(stream)
        header = json.loads(stream.getvalue().splitlines()[0])
        assert header["schema"] == "repro.obs.trace"
        assert header["version"] == 1
        assert header["meta"] == {"seed": 7}

    @pytest.mark.parametrize(
        "lines",
        [
            [],  # nothing at all
            ['{"record": "event"}', '{"record": "footer", "events": 0}'],
            [
                '{"record": "header", "schema": "wrong", "version": 1}',
                '{"record": "footer", "events": 0, "dropped": 0}',
            ],
            [
                '{"record": "header", "schema": "repro.obs.trace",'
                ' "version": 1}',
                '{"record": "event", "cycle": 1, "event": "not_a_type"}',
                '{"record": "footer", "events": 1, "dropped": 0}',
            ],
            [
                '{"record": "header", "schema": "repro.obs.trace",'
                ' "version": 1}',
                '{"record": "event", "cycle": 1, "event": "msg_created"}',
                '{"record": "footer", "events": 7, "dropped": 0}',
            ],
        ],
    )
    def test_validate_rejects_malformed(self, lines):
        with pytest.raises(ValueError):
            validate_trace_lines(lines)

    def test_event_types_are_distinct(self):
        assert len(set(EVENT_TYPES)) == len(EVENT_TYPES)


class TestObsConfig:
    def test_rejects_unknown_options(self):
        with pytest.raises(ConfigurationError):
            ObsConfig.from_options({"strides": 8})

    def test_accepts_known_options(self):
        config = ObsConfig.from_options(
            {"stride": 8, "trace": False, "export_dir": "/tmp/x"}
        )
        assert config.stride == 8
        assert not config.trace
        assert config.export_dir == "/tmp/x"

    def test_rejects_nonpositive_stride(self):
        with pytest.raises(Exception):
            ObsConfig(stride=0)


class TestProbeRegistry:
    def test_duplicate_name_rejected(self):
        registry = ProbeRegistry()
        registry.register("x", lambda e: 0)
        with pytest.raises(ConfigurationError):
            registry.register("x", lambda e: 1)

    def test_default_excludes_vectors_on_request(self):
        with_vectors = ProbeRegistry.default()
        without = ProbeRegistry.default(vectors=False)
        assert len(without) < len(with_vectors)
        assert without.scalar_names() == without.names


def _observed_engine(cycles=1500, **obs_options):
    config = tiny_config(offered_load=0.5)
    engine = Engine(config)
    observer = Observer(ObsConfig(**obs_options))
    engine.attach_observer(observer)
    engine.run_cycles(cycles)
    return engine, observer


class TestObserverParity:
    def test_observed_run_is_bit_identical(self):
        config = tiny_config(offered_load=0.5)
        plain = Engine(config)
        plain.run_cycles(1500)

        observed, _ = _observed_engine(1500, stride=8, trace_flits=True)
        assert (
            observed.flits_moved_total,
            observed.generated_total,
            observed.delivered_total,
            observed.controller.refused,
        ) == (
            plain.flits_moved_total,
            plain.generated_total,
            plain.delivered_total,
            plain.controller.refused,
        )
        assert observed.conservation_check()


class TestObserverAccounting:
    def test_event_counts_match_engine_totals(self):
        engine, observer = _observed_engine(trace_flits=True)
        counts = observer.event_counts
        assert counts["msg_created"] == engine.generated_total
        assert counts["msg_delivered"] == engine.delivered_total
        assert counts["flit_moved"] == engine.flits_moved_total
        assert counts.get("msg_refused", 0) == engine.controller.refused

    def test_heatmap_carried_matches_flits_moved(self):
        engine, observer = _observed_engine()
        totals = observer.metrics_summary()["heatmap"]
        assert totals["flits_carried"] == engine.flits_moved_total

    def test_metrics_summary_schema(self):
        engine, observer = _observed_engine()
        metrics = observer.metrics_summary()
        assert metrics["schema"] == "repro.obs.metrics"
        assert metrics["version"] == 1
        assert metrics["last_cycle"] == engine.cycle
        assert "in_flight_messages" in metrics["probes"]
        assert metrics["profile"]  # timed phases present
        json.dumps(metrics)  # JSON-ready throughout

    def test_probe_samples_follow_stride(self):
        _, observer = _observed_engine(stride=50)
        cycles = [cycle for cycle, _ in observer.probes.series(
            "in_flight_messages"
        )]
        assert cycles, "no samples recorded"
        assert all(cycle % 50 == 0 for cycle in cycles)

    def test_trace_validates_end_to_end(self):
        _, observer = _observed_engine(trace_limit=500)
        stream = io.StringIO()
        observer.trace.write(stream)
        counts = validate_trace_lines(stream.getvalue().splitlines())
        assert sum(counts.values()) == 500  # limit enforced
        assert observer.trace.dropped > 0

    def test_attach_twice_rejected(self):
        engine, observer = _observed_engine(cycles=10)
        with pytest.raises(ConfigurationError):
            engine.attach_observer(Observer())
        with pytest.raises(ConfigurationError):
            Engine(tiny_config()).attach_observer(observer)

    def test_detach_restores_class_method(self):
        engine, observer = _observed_engine(
            cycles=10, trace_flits=True
        )
        assert "_handle_flit_arrival" in engine.__dict__
        assert engine.detach_observer() is observer
        assert "_handle_flit_arrival" not in engine.__dict__
        assert engine.observer is None


class TestExport:
    def test_export_writes_full_artifact_set(self, tmp_path):
        _, observer = _observed_engine()
        written = observer.export(str(tmp_path), prefix="point")
        names = sorted(os.path.basename(path) for path in written)
        assert names == [
            "point.heatmap.csv",
            "point.heatmap.txt",
            "point.metrics.json",
            "point.probes.csv",
            "point.probes.ndjson",
            "point.trace.ndjson",
        ]
        with open(tmp_path / "point.trace.ndjson") as stream:
            validate_trace_lines(stream.readlines())
        with open(tmp_path / "point.metrics.json") as stream:
            assert json.load(stream)["schema"] == "repro.obs.metrics"
        with open(tmp_path / "point.probes.csv") as stream:
            header = stream.readline().strip().split(",")
        assert header[0] == "cycle"
        assert "network_flits" in header

    def test_export_without_directory_rejected(self):
        _, observer = _observed_engine(cycles=10)
        with pytest.raises(ConfigurationError):
            observer.export()


class TestHeatmap:
    def test_node_grid_requires_2d(self, torus4_3d):
        heatmap = CongestionHeatmap(torus4_3d)
        with pytest.raises(ValueError):
            heatmap.node_grid()
        # the ASCII rendering falls back to a top-list for non-2D
        assert "top links" in heatmap.ascii("blocked")

    def test_carried_survives_counter_reset(self):
        config = tiny_config(offered_load=0.5)
        engine = Engine(config)
        heatmap = CongestionHeatmap(engine.topology)
        engine.run_cycles(400)
        heatmap.observe_channels(engine.fabric.channels)
        first = engine.flits_moved_total
        engine.fabric.reset_flit_counters()
        # An observation lands between the reset and much new traffic
        # (stride-sampling guarantees this in practice); the negative
        # deltas re-baseline the accumulators.
        heatmap.observe_channels(engine.fabric.channels)
        engine.run_cycles(400)
        heatmap.observe_channels(engine.fabric.channels)
        assert heatmap.totals()["flits_carried"] == (
            engine.flits_moved_total
        )
        assert engine.flits_moved_total > first  # second leg counted

    def test_unknown_metric_rejected(self, torus4):
        with pytest.raises(ValueError):
            CongestionHeatmap(torus4).ascii("latency")


class TestProfiler:
    def test_table_lists_recorded_phases(self):
        profiler = PhaseProfiler()
        profiler.add("routing", 0.25)
        profiler.add("routing", 0.25)
        profiler.add("transmission", 0.5)
        table = profiler.format_table()
        assert "routing" in table and "transmission" in table
        assert "generation" not in table  # unrecorded phases omitted
        assert profiler.total_seconds() == pytest.approx(1.0)


class TestRunPointIntegration:
    def test_obs_metrics_in_result_and_checkpoint(self, tmp_path):
        from repro.experiments.parallel import run_points
        from repro.experiments.runner import run_point

        config = tiny_config(
            obs=True, obs_options={"stride": 16, "profile": False}
        )
        result = run_point(config)
        assert result.obs_metrics is not None
        assert result.obs_metrics["events"]["msg_created"] > 0

        checkpoint = str(tmp_path / "ckpt.json")
        first = run_points([config], checkpoint_path=checkpoint)
        again = run_points([config], checkpoint_path=checkpoint)
        assert again[0].obs_metrics == first[0].obs_metrics

    def test_export_dir_writes_artifacts(self, tmp_path):
        from repro.experiments.runner import obs_export_prefix, run_point

        out = tmp_path / "artifacts"
        config = tiny_config(
            obs=True, obs_options={"export_dir": str(out)}
        )
        run_point(config)
        prefix = obs_export_prefix(config)
        assert (out / f"{prefix}.trace.ndjson").exists()
        assert (out / f"{prefix}.heatmap.csv").exists()

    def test_bad_obs_options_fail_at_engine_build(self):
        config = tiny_config(obs=True, obs_options={"nope": 1})
        with pytest.raises(ConfigurationError):
            Engine(config)
