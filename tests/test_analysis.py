"""Tests for the deadlock-analysis and VC-usage modules."""

import pytest

from repro.analysis.dependency_graph import (
    build_dependency_graph,
    find_cycle,
    is_acyclic,
)
from repro.analysis.invariants import (
    InvariantViolation,
    check_rank_monotonicity,
    count_minimal_paths,
    enumerate_paths,
)
from repro.analysis.vc_usage import (
    coefficient_of_variation,
    top_class_share,
    usage_fractions,
)
from repro.routing.registry import make_algorithm


class TestDependencyGraphs:
    @pytest.mark.parametrize(
        "name", ["ecube", "nlast", "phop", "nhop", "nbc"]
    )
    def test_acyclic_on_small_torus(self, name, torus4):
        """Deadlock freedom via Dally-Seitz acyclicity for five of the
        six algorithms (2pn needs the reachability argument instead)."""
        graph = build_dependency_graph(make_algorithm(name, torus4))
        assert is_acyclic(graph), f"{name} dependency graph has a cycle"

    @pytest.mark.parametrize("name", ["ecube", "nhop", "nbc"])
    def test_acyclic_on_6_torus(self, name, torus6):
        graph = build_dependency_graph(make_algorithm(name, torus6))
        assert is_acyclic(graph)

    @pytest.mark.parametrize("name", ["ecube", "nlast", "2pn", "phop"])
    def test_acyclic_on_mesh(self, name, mesh4):
        graph = build_dependency_graph(make_algorithm(name, mesh4))
        assert is_acyclic(graph)

    def test_2pn_torus_may_wait_graph_has_cycles(self, torus4):
        """Documented nuance: 2pn's *may-wait* graph is cyclic on tori;
        deadlock freedom rests on the unreachability of those cycles
        (paper's companion report) — see the watchdog stress tests."""
        graph = build_dependency_graph(make_algorithm("2pn", torus4))
        assert find_cycle(graph) is not None

    def test_cycle_detection_on_known_graph(self):
        acyclic = {(0, 0): {(1, 0)}, (1, 0): {(2, 0)}}
        assert is_acyclic(acyclic)
        cyclic = {(0, 0): {(1, 0)}, (1, 0): {(2, 0)}, (2, 0): {(0, 0)}}
        cycle = find_cycle(cyclic)
        assert cycle is not None
        assert set(cycle) == {(0, 0), (1, 0), (2, 0)}

    def test_self_loop_detected(self):
        cycle = find_cycle({(0, 0): {(0, 0)}})
        assert cycle == [(0, 0)]

    def test_disjoint_components(self):
        """The cycle is found even when it lives in a later component."""
        graph = {
            # component 1: an acyclic chain
            (0, 0): {(1, 0)},
            (1, 0): {(2, 0)},
            # component 2: a 2-cycle, unreachable from component 1
            (10, 1): {(11, 1)},
            (11, 1): {(10, 1)},
        }
        cycle = find_cycle(graph)
        assert cycle is not None
        assert set(cycle) == {(10, 1), (11, 1)}
        all_acyclic = {
            (0, 0): {(1, 0)},
            (5, 0): {(6, 0)},
            (8, 0): set(),
        }
        assert is_acyclic(all_acyclic)

    def test_multiple_back_edges_deterministic_witness(self):
        """With several cycles present, the witness is deterministic and
        is a genuine cycle of the graph."""
        graph = {
            (0, 0): {(1, 0), (3, 0)},
            (1, 0): {(2, 0)},
            (2, 0): {(0, 0)},  # back edge 1
            (3, 0): {(4, 0)},
            (4, 0): {(3, 0), (0, 0)},  # back edges 2 and 3
        }
        witness = find_cycle(graph)
        assert witness is not None
        # A genuine cycle: every consecutive hop (and the wrap-around
        # closing hop) is an edge of the graph.
        for position, resource in enumerate(witness):
            nxt = witness[(position + 1) % len(witness)]
            assert nxt in graph[resource]
        # Deterministic: repeated runs over the same graph agree.
        for _ in range(5):
            assert find_cycle(graph) == witness

    def test_witness_excludes_tail_before_cycle(self):
        """A lead-in path to the cycle must not appear in the witness."""
        graph = {
            (9, 0): {(0, 0)},  # tail node, not part of the cycle
            (0, 0): {(1, 0)},
            (1, 0): {(0, 0)},
        }
        witness = find_cycle(graph)
        assert witness is not None
        assert (9, 0) not in witness
        assert set(witness) == {(0, 0), (1, 0)}


class TestRankMonotonicity:
    @pytest.mark.parametrize("name", ["phop", "nhop", "nbc"])
    def test_hop_schemes_satisfy_lemma1(self, name, torus6):
        """Lemma 1: strictly increasing ranks along every reachable hop."""
        scheme = make_algorithm(name, torus6)
        assert check_rank_monotonicity(scheme) > 1000

    def test_violation_detected_for_broken_scheme(self, torus4):
        from repro.routing.positive_hop import PositiveHop

        class Broken(PositiveHop):
            def rank(self, vc_class, node):
                return 0  # constant rank: never increases

        with pytest.raises(InvariantViolation, match="rank did not"):
            check_rank_monotonicity(Broken(torus4))

    def test_class_overflow_detected(self, torus4):
        from repro.routing.positive_hop import PositiveHop

        class Overflowing(PositiveHop):
            @property
            def num_virtual_channels(self):
                return 2  # too few for the diameter

        with pytest.raises(InvariantViolation, match="exceeds"):
            check_rank_monotonicity(Overflowing(torus4))


class TestPathEnumeration:
    def test_count_matches_binomial(self, torus8):
        """(3 right, 2 up) -> C(5,2) = 10 minimal paths."""
        algorithm = make_algorithm("phop", torus8)
        src = torus8.node((0, 0))
        dst = torus8.node((3, 2))
        assert count_minimal_paths(algorithm, src, dst) == 10
        assert len(enumerate_paths(algorithm, src, dst)) == 10

    def test_tie_doubles_paths(self, torus4):
        algorithm = make_algorithm("phop", torus4)
        src = torus4.node((0, 0))
        dst = torus4.node((2, 0))  # half-ring tie: both ways around
        assert len(enumerate_paths(algorithm, src, dst)) == 2


class TestVcUsage:
    def test_fractions_sum_to_one(self):
        fractions = usage_fractions([10, 30, 60])
        assert sum(fractions) == pytest.approx(1.0)
        assert fractions == [0.1, 0.3, 0.6]

    def test_empty_usage(self):
        assert usage_fractions([0, 0]) == [0.0, 0.0]
        assert coefficient_of_variation([0, 0]) == 0.0

    def test_balanced_has_zero_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_imbalanced_has_positive_cv(self):
        assert coefficient_of_variation([100, 0, 0]) > 1.0

    def test_top_class_share(self):
        assert top_class_share([1, 3]) == pytest.approx(0.75)
        assert top_class_share([]) == 0.0
