"""Unit tests for the permutation traffic extensions."""

import random

import pytest

from repro.traffic.permutations import (
    BitComplementTraffic,
    BitReversalTraffic,
    TransposeTraffic,
)
from repro.util.errors import ConfigurationError


class TestTranspose:
    def test_maps_coordinates_swapped(self, torus4):
        pattern = TransposeTraffic(torus4)
        src = torus4.node((1, 3))
        assert pattern.permute(src) == torus4.node((3, 1))

    def test_diagonal_generates_nothing(self, torus4):
        pattern = TransposeTraffic(torus4)
        diagonal = torus4.node((2, 2))
        rng = random.Random(0)
        assert pattern.sample_destination(diagonal, rng) is None
        assert pattern.destination_distribution(diagonal) == {}

    def test_off_diagonal_is_deterministic(self, torus4):
        pattern = TransposeTraffic(torus4)
        src = torus4.node((0, 1))
        rng = random.Random(0)
        expected = torus4.node((1, 0))
        assert pattern.sample_destination(src, rng) == expected
        assert pattern.destination_distribution(src) == {expected: 1.0}

    def test_requires_2d(self, torus4_3d):
        with pytest.raises(ConfigurationError):
            TransposeTraffic(torus4_3d)

    def test_mean_distance_positive(self, torus4):
        assert TransposeTraffic(torus4).mean_distance() > 0


class TestBitComplement:
    def test_complements_coordinates(self, torus4):
        pattern = BitComplementTraffic(torus4)
        src = torus4.node((0, 1))
        assert pattern.permute(src) == torus4.node((3, 2))

    def test_every_source_generates(self, torus4):
        pattern = BitComplementTraffic(torus4)
        for src in range(torus4.num_nodes):
            assert pattern.destination_distribution(src)

    def test_is_an_involution(self, torus4):
        pattern = BitComplementTraffic(torus4)
        for src in range(torus4.num_nodes):
            assert pattern.permute(pattern.permute(src)) == src


class TestBitReversal:
    def test_reverses_id_bits(self, torus4):
        pattern = BitReversalTraffic(torus4)
        # 16 nodes -> 4-bit ids; 0b0001 -> 0b1000
        assert pattern.permute(1) == 8

    def test_requires_power_of_two_nodes(self, torus6):
        with pytest.raises(ConfigurationError):
            BitReversalTraffic(torus6)

    def test_is_an_involution(self, torus4):
        pattern = BitReversalTraffic(torus4)
        for src in range(torus4.num_nodes):
            assert pattern.permute(pattern.permute(src)) == src

    def test_palindromic_ids_generate_nothing(self, torus4):
        pattern = BitReversalTraffic(torus4)
        rng = random.Random(0)
        assert pattern.sample_destination(0b1001, rng) is None
