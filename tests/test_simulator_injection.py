"""Unit tests for the input-buffer-limit congestion control."""

import pytest

from repro.simulator.injection import InjectionController


class TestAdmission:
    def test_admits_up_to_limit(self):
        controller = InjectionController(limit=2)
        assert controller.try_admit(0, "a")
        assert controller.try_admit(0, "a")
        assert not controller.try_admit(0, "a")

    def test_classes_are_independent(self):
        controller = InjectionController(limit=1)
        assert controller.try_admit(0, "a")
        assert controller.try_admit(0, "b")

    def test_nodes_are_independent(self):
        controller = InjectionController(limit=1)
        assert controller.try_admit(0, "a")
        assert controller.try_admit(1, "a")

    def test_completion_frees_slot(self):
        controller = InjectionController(limit=1)
        assert controller.try_admit(0, "a")
        controller.injection_complete(0, "a")
        assert controller.try_admit(0, "a")

    def test_unlimited_when_disabled(self):
        controller = InjectionController(limit=None)
        for _ in range(100):
            assert controller.try_admit(0, "a")

    def test_completion_without_admission_asserts(self):
        controller = InjectionController(limit=1)
        with pytest.raises(AssertionError):
            controller.injection_complete(0, "a")


class TestCounters:
    def test_counts_admissions_and_refusals(self):
        controller = InjectionController(limit=1)
        controller.try_admit(0, "a")
        controller.try_admit(0, "a")
        controller.try_admit(0, "a")
        assert controller.admitted == 1
        assert controller.refused == 2

    def test_outstanding(self):
        controller = InjectionController(limit=3)
        controller.try_admit(5, "x")
        controller.try_admit(5, "x")
        assert controller.outstanding(5, "x") == 2
        controller.injection_complete(5, "x")
        assert controller.outstanding(5, "x") == 1

    def test_reset_counters_keeps_occupancy(self):
        controller = InjectionController(limit=1)
        controller.try_admit(0, "a")
        controller.reset_counters()
        assert controller.admitted == 0
        assert not controller.try_admit(0, "a")  # slot still held
