"""The runtime wait-for-graph sanitizer and its deadlock reports."""

import pytest

from repro.routing.base import RoutingAlgorithm
from repro.simulator.engine import Engine
from repro.simulator.sanitizer import DeadlockReport, WaitForGraph
from repro.topology.torus import Torus
from repro.util.errors import DeadlockError
from tests.conftest import tiny_config
from tests.test_engine_congestion_watchdog import _NeverRoutes


class _Clockwise(RoutingAlgorithm):
    """Deliberately deadlock-prone: always the + link, one VC class.

    On a 1-D torus every message chases the next one clockwise, so under
    sustained load the ring fills head-to-tail and a genuine hold/wait
    cycle forms — the textbook wormhole deadlock the dateline scheme
    exists to prevent.
    """

    name = "clockwise"

    @property
    def num_virtual_channels(self):
        return 1

    def candidates(self, state, current, dst):
        self._check_not_delivered(current, dst)
        return [(self.topology.out_link(current, 0, 1), 0)]


def _deadlock_report(config, algorithm) -> DeadlockError:
    engine = Engine(config, algorithm=algorithm)
    with pytest.raises(DeadlockError, match="no progress") as excinfo:
        engine.run_cycles(30000)
    return excinfo.value


class TestSanitizedDeadlockReport:
    def test_cycle_named_with_resources_and_messages(self):
        config = tiny_config(
            radix=8,
            n_dims=1,
            offered_load=1.0,
            message_length=8,
            deadlock_threshold=500,
            sanitize=True,
            seed=2,
        )
        error = _deadlock_report(config, _Clockwise(Torus(8, 1)))
        report = error.report
        assert report is not None
        # A genuine resource cycle, every resource held by a named message.
        assert report.cycle is not None and len(report.cycle) >= 2
        for resource in report.cycle:
            assert report.holders[resource] in report.cycle_messages()
        # All clockwise traffic uses vc class 0.
        assert all(vc_class == 0 for _, vc_class in report.cycle)
        # The exception text carries the diagnostic.
        text = str(error)
        assert "wait-for cycle" in text
        assert "blocked messages" in text
        assert "holds" in text and "waits on" in text

    def test_broken_algorithm_reports_blockage_without_cycle(self, torus4):
        """The watchdog's regression algorithm (_NeverRoutes) starves
        messages on an empty candidate set: blocked messages are named,
        but there is no hold/wait cycle to report."""
        config = tiny_config(
            offered_load=0.5, deadlock_threshold=300, sanitize=True
        )
        error = _deadlock_report(config, _NeverRoutes(torus4))
        report = error.report
        assert report is not None
        assert report.cycle is None
        assert report.cycle_messages() == []
        assert len(report.blocked) > 0
        assert all(entry.requested == [] for entry in report.blocked)
        assert "no wait-for cycle" in str(error)
        assert "empty candidate set" in str(error)

    def test_unsanitized_deadlock_has_no_report_but_hints(self, torus4):
        config = tiny_config(offered_load=0.5, deadlock_threshold=300)
        error = _deadlock_report(config, _NeverRoutes(torus4))
        assert error.report is None
        assert "sanitize=True" in str(error)

    def test_sanitizer_off_by_default(self):
        engine = Engine(tiny_config())
        assert engine.sanitizer is None

    def test_sanitized_run_matches_unsanitized_results(self):
        """The sanitizer observes; it must not perturb the simulation."""
        plain = Engine(tiny_config(seed=11))
        sanitized = Engine(tiny_config(seed=11, sanitize=True))
        plain.run_cycles(1500)
        sanitized.run_cycles(1500)
        assert sanitized.delivered_total == plain.delivered_total
        assert sanitized.flits_moved_total == plain.flits_moved_total
        assert sanitized.conservation_check()


class TestWaitForGraph:
    class _FakeVc:
        def __init__(self, link_index, vc_class):
            self.link = type("L", (), {"index": link_index})()
            self.vc_class = vc_class

    class _FakeMessage:
        def __init__(self, msg_id, src, dst, head_node, path):
            self.msg_id = msg_id
            self.src = src
            self.dst = dst
            self.head_node = head_node
            self.path = path

    def _blocked(self, graph, msg_id, held, requested):
        path = [self._FakeVc(link, vc) for link, vc in held]
        message = self._FakeMessage(msg_id, 0, 1, 2, path)
        graph.record_blocked(message, requested)

    def test_edges_union_over_held_resources(self):
        graph = WaitForGraph()
        self._blocked(graph, 1, [(0, 0), (1, 0)], [(2, 0)])
        assert graph.edges() == {(0, 0): {(2, 0)}, (1, 0): {(2, 0)}}

    def test_reblocking_replaces_stale_edges(self):
        graph = WaitForGraph()
        self._blocked(graph, 1, [(0, 0)], [(1, 0)])
        self._blocked(graph, 1, [(0, 0)], [(3, 0)])  # tail drained, re-blocked
        assert graph.edges() == {(0, 0): {(3, 0)}}
        assert len(graph) == 1

    def test_clear_removes_message(self):
        graph = WaitForGraph()
        self._blocked(graph, 1, [(0, 0)], [(1, 0)])
        graph.clear(1)
        assert graph.edges() == {}
        graph.clear(99)  # unknown ids are fine

    def test_report_finds_two_message_cycle(self):
        graph = WaitForGraph()
        self._blocked(graph, 1, [(0, 0)], [(1, 0)])
        self._blocked(graph, 2, [(1, 0)], [(0, 0)])
        report = graph.build_report()
        assert report.cycle is not None
        assert set(report.cycle) == {(0, 0), (1, 0)}
        assert sorted(report.cycle_messages()) == [1, 2]
        assert "wait-for cycle of 2 resources" in report.format()

    def test_report_truncates_long_blockage_lists(self):
        graph = WaitForGraph()
        for msg_id in range(20):
            self._blocked(graph, msg_id, [], [(0, 0)])
        text = graph.build_report().format(max_blocked=4)
        assert "... and 16 more" in text
