"""Unit tests for virtual and physical channel state machines."""

import pytest

from repro.network.message import Message
from repro.network.physical_channel import PhysicalChannel
from repro.network.virtual_channel import VirtualChannel
from repro.topology.torus import Torus


def make_message(src=0, dst=1, length=4, msg_id=0):
    return Message(
        msg_id=msg_id,
        src=src,
        dst=dst,
        length=length,
        distance=1,
        route_state=None,
        msg_class=0,
        created_at=0,
    )


@pytest.fixture
def link(torus4):
    return torus4.out_link(0, 0, 1)


class TestVirtualChannel:
    def test_starts_free(self, link):
        vc = VirtualChannel(link, 0, 1)
        assert vc.free
        assert vc.occupancy == 0

    def test_reserve_sets_owner_and_upstream(self, link):
        vc = VirtualChannel(link, 0, 1)
        message = make_message()
        vc.reserve(message)
        assert vc.owner is message
        assert vc.upstream is None  # first hop feeds from the source

    def test_reserve_chains_upstream(self, link, torus4):
        first = VirtualChannel(link, 0, 1)
        message = make_message(dst=2)
        first.reserve(message)
        message.path.append(first)
        second_link = torus4.out_link(link.dst, 0, 1)
        second = VirtualChannel(second_link, 0, 1)
        second.reserve(message)
        assert second.upstream is first

    def test_double_reserve_asserts(self, link):
        vc = VirtualChannel(link, 0, 1)
        vc.reserve(make_message())
        with pytest.raises(AssertionError):
            vc.reserve(make_message(msg_id=1))

    def test_receive_from_source_decrements_injection(self, link):
        vc = VirtualChannel(link, 0, 2)
        message = make_message(length=4)
        vc.reserve(message)
        vc.receive_flit(cycle=5)
        assert message.flits_to_inject == 3
        assert vc.occupancy == 1
        assert vc.flits_in == 1
        assert vc.last_arrival_cycle == 5

    def test_settled_flits_excludes_same_cycle_arrival(self, link):
        vc = VirtualChannel(link, 0, 2)
        vc.reserve(make_message())
        vc.receive_flit(cycle=5)
        assert vc.settled_flits(5) == 0
        assert vc.settled_flits(6) == 1

    def test_had_space_reports_start_of_cycle_state(self, link):
        vc = VirtualChannel(link, 0, 1)
        vc.reserve(make_message())
        vc.receive_flit(cycle=5)
        # The slot was free at the START of cycle 5 (the arrival this
        # cycle is discounted), but is genuinely full from cycle 6 on.
        assert vc.had_space(5)
        assert not vc.had_space(6)

    def test_drained_requires_all_flits_out(self, link, torus4):
        vc = VirtualChannel(link, 0, 4)
        message = make_message(length=2)
        vc.reserve(message)
        message.path.append(vc)
        vc.receive_flit(1)
        vc.receive_flit(2)
        assert not vc.drained
        next_link = torus4.out_link(link.dst, 0, 1)
        downstream = VirtualChannel(next_link, 0, 4)
        downstream.reserve(message)
        downstream.receive_flit(3)
        downstream.receive_flit(4)
        assert vc.drained

    def test_release_resets(self, link):
        vc = VirtualChannel(link, 0, 1)
        vc.reserve(make_message())
        vc.release()
        assert vc.free
        assert vc.upstream is None

    def test_release_nonempty_asserts(self, link):
        vc = VirtualChannel(link, 0, 1)
        vc.reserve(make_message())
        vc.receive_flit(1)
        with pytest.raises(AssertionError):
            vc.release()


class TestPhysicalChannel:
    def test_builds_requested_vcs(self, link):
        channel = PhysicalChannel(link, 5, 1)
        assert len(channel.vcs) == 5
        assert [vc.vc_class for vc in channel.vcs] == list(range(5))

    def test_transmit_nothing_when_idle(self, link):
        channel = PhysicalChannel(link, 2, 1)
        assert channel.transmit(0, False, True) is None

    def test_transmit_moves_one_flit(self, link):
        channel = PhysicalChannel(link, 2, 1)
        message = make_message(length=4)
        channel.vcs[0].reserve(message)
        moved = channel.transmit(0, False, True)
        assert moved is channel.vcs[0]
        assert message.flits_to_inject == 3
        assert channel.flits_moved == 1

    def test_one_flit_per_cycle_even_across_retries(self, link):
        channel = PhysicalChannel(link, 2, 4)
        message_a = make_message(length=4)
        message_b = make_message(msg_id=1, length=4)
        channel.vcs[0].reserve(message_a)
        channel.vcs[1].reserve(message_b)
        assert channel.transmit(0, False, True) is not None
        assert channel.transmit(0, False, True) is None  # bandwidth spent
        assert channel.transmit(1, False, True) is not None

    def test_round_robin_alternates_vcs(self, link):
        channel = PhysicalChannel(link, 2, 8)
        message_a = make_message(length=8)
        message_b = make_message(msg_id=1, length=8)
        channel.vcs[0].reserve(message_a)
        channel.vcs[1].reserve(message_b)
        winners = []
        for cycle in range(4):
            winners.append(channel.transmit(cycle, False, True).vc_class)
        assert winners == [0, 1, 0, 1]

    def test_saf_requires_full_packet_upstream(self, link, torus4):
        channel_one = PhysicalChannel(link, 1, 4)
        next_link = torus4.out_link(link.dst, 0, 1)
        channel_two = PhysicalChannel(next_link, 1, 4)
        message = make_message(length=3, dst=torus4.node((2, 0)))
        channel_one.vcs[0].reserve(message)
        message.path.append(channel_one.vcs[0])
        # Move two of three flits into the first buffer.
        assert channel_one.transmit(0, True, True)
        assert channel_one.transmit(1, True, True)
        channel_two.vcs[0].reserve(message)
        message.path.append(channel_two.vcs[0])
        # SAF: cannot forward until the whole packet is upstream.
        assert channel_two.transmit(2, True, True) is None
        assert channel_one.transmit(2, True, True)  # third flit arrives
        assert channel_two.transmit(3, True, True) is not None

    def test_full_buffer_blocks_in_conservative_mode(self, link):
        channel = PhysicalChannel(link, 1, 1)
        message = make_message(length=4)
        channel.vcs[0].reserve(message)
        assert channel.transmit(0, False, False) is not None
        assert channel.transmit(1, False, False) is None  # buffer full

    def test_tail_guard_blocks_after_whole_worm_passed(self, link):
        channel = PhysicalChannel(link, 1, 4)
        message = make_message(length=2)
        channel.vcs[0].reserve(message)
        assert channel.transmit(0, False, True)
        assert channel.transmit(1, False, True)
        # All flits are in; the VC must never pull again even though the
        # (stale) upstream pointer may later belong to another worm.
        assert channel.transmit(2, False, True) is None
