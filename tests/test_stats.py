"""Unit and property tests for the statistics machinery."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.convergence import (
    ConvergenceChecker,
    sample_means_bound,
    stratified_latency,
)
from repro.stats.counters import SampleRecord
from repro.stats.metrics import (
    achieved_utilization,
    ideal_latency,
    normalized_throughput,
)


def sample_with(deliveries, start=0, cycles=100):
    record = SampleRecord(start)
    record.cycles = cycles
    record.deliveries = list(deliveries)
    return record


class TestSampleRecord:
    def test_mean_latency_empty(self):
        assert sample_with([]).mean_latency() == 0.0

    def test_mean_latency(self):
        record = sample_with([(10, 1), (20, 2)])
        assert record.mean_latency() == 15.0

    def test_strata_grouping(self):
        record = sample_with([(10, 1), (20, 2), (30, 1)])
        strata = record.latencies_by_hops()
        assert strata == {1: [10, 30], 2: [20]}


class TestStratifiedLatency:
    def test_single_stratum(self):
        estimate = stratified_latency([(10, 1), (12, 1)], {1: 1.0})
        assert estimate.mean == pytest.approx(11.0)

    def test_weighting(self):
        # Stratum 1 latency 10, stratum 2 latency 100, weights 0.9/0.1.
        deliveries = [(10, 1)] * 5 + [(100, 2)] * 5
        estimate = stratified_latency(deliveries, {1: 0.9, 2: 0.1})
        assert estimate.mean == pytest.approx(0.9 * 10 + 0.1 * 100)

    def test_unobserved_stratum_renormalized(self):
        deliveries = [(10, 1)] * 4
        estimate = stratified_latency(deliveries, {1: 0.5, 16: 0.5})
        assert estimate.mean == pytest.approx(10.0)

    def test_no_data_gives_infinite_error(self):
        estimate = stratified_latency([], {1: 1.0})
        assert estimate.error_bound == math.inf

    def test_zero_variance_gives_zero_bound(self):
        estimate = stratified_latency([(10, 1)] * 10, {1: 1.0})
        assert estimate.error_bound == 0.0

    def test_error_bound_shrinks_with_samples(self):
        small = stratified_latency(
            [(10, 1), (20, 1), (30, 1)], {1: 1.0}
        )
        big = stratified_latency(
            [(10, 1), (20, 1), (30, 1)] * 20, {1: 1.0}
        )
        assert big.error_bound < small.error_bound

    @given(
        latencies=st.lists(
            st.integers(min_value=1, max_value=1000), min_size=2, max_size=60
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_single_stratum_matches_plain_mean(self, latencies):
        deliveries = [(latency, 3) for latency in latencies]
        estimate = stratified_latency(deliveries, {3: 1.0})
        assert estimate.mean == pytest.approx(
            sum(latencies) / len(latencies)
        )

    @given(
        latencies=st.lists(
            st.integers(min_value=1, max_value=100), min_size=4, max_size=40
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_mean_within_stratum_bounds(self, latencies):
        half = len(latencies) // 2
        deliveries = [(lat, 1) for lat in latencies[:half]] + [
            (lat, 2) for lat in latencies[half:]
        ]
        weights = {1: 0.5, 2: 0.5}
        estimate = stratified_latency(deliveries, weights)
        assert min(latencies) <= estimate.mean <= max(latencies)


class TestSampleMeansBound:
    def test_identical_samples_converge(self):
        samples = [sample_with([(10, 1)] * 5) for _ in range(3)]
        mean, bound = sample_means_bound(samples)
        assert mean == 10.0
        assert bound == 0.0

    def test_single_sample_is_inconclusive(self):
        mean, bound = sample_means_bound([sample_with([(10, 1)])])
        assert bound == math.inf

    def test_dispersed_samples_have_positive_bound(self):
        samples = [
            sample_with([(10, 1)]),
            sample_with([(30, 1)]),
            sample_with([(50, 1)]),
        ]
        _, bound = sample_means_bound(samples)
        assert bound > 0


class TestConvergenceChecker:
    def test_needs_min_samples(self):
        checker = ConvergenceChecker({1: 1.0}, min_samples=3)
        samples = [sample_with([(10, 1)] * 10)] * 2
        assert not checker.converged(samples)

    def test_converges_on_stable_data(self):
        checker = ConvergenceChecker({1: 1.0})
        samples = [sample_with([(10, 1)] * 20) for _ in range(3)]
        assert checker.converged(samples)

    def test_rejects_noisy_data(self):
        checker = ConvergenceChecker({1: 1.0})
        samples = [
            sample_with([(10, 1)] * 5),
            sample_with([(200, 1)] * 5),
            sample_with([(10, 1)] * 5),
        ]
        assert not checker.converged(samples)

    def test_estimate_pools_samples(self):
        checker = ConvergenceChecker({1: 1.0})
        samples = [sample_with([(10, 1)]), sample_with([(30, 1)])]
        assert checker.estimate(samples).mean == pytest.approx(20.0)


class TestMetrics:
    def test_ideal_latency_paper_formula(self):
        """16-flit message over 8 hops: 16 + 8 - 1 = 23 cycles."""
        assert ideal_latency(16, 8) == 23

    def test_ideal_latency_scales_with_flit_time(self):
        assert ideal_latency(16, 8, flit_time=2) == 46

    def test_achieved_utilization(self):
        assert achieved_utilization(512, 100, 1024) == pytest.approx(0.005)

    def test_normalized_throughput_matches_flit_count(self):
        # 10 messages x 4 hops x 16 flits over 1000 cycles, 64 channels.
        value = normalized_throughput(10, 40, 16, 1000, 64)
        assert value == pytest.approx(40 * 16 / (1000 * 64))

    def test_no_deliveries_is_zero(self):
        assert normalized_throughput(0, 0, 16, 1000, 64) == 0.0
