"""The cycle reported by find_cycle must be a real cycle of the graph."""

from repro.analysis.dependency_graph import (
    build_dependency_graph,
    find_cycle,
)
from repro.routing.registry import make_algorithm
from repro.topology.torus import Torus


def assert_is_cycle(cycle, edges):
    assert len(cycle) >= 1
    for here, there in zip(cycle, cycle[1:]):
        assert there in edges.get(here, ()), (here, there)
    assert cycle[0] in edges.get(cycle[-1], ()), (cycle[-1], cycle[0])


class TestCycleReconstruction:
    def test_simple_triangle(self):
        edges = {1: {2}, 2: {3}, 3: {1}}
        assert_is_cycle(find_cycle(edges), edges)

    def test_cycle_behind_a_tail(self):
        edges = {0: {1}, 1: {2}, 2: {3}, 3: {1}}
        cycle = find_cycle(edges)
        assert_is_cycle(cycle, edges)
        assert 0 not in cycle  # the tail is not part of the cycle

    def test_two_components_one_cyclic(self):
        edges = {10: {11}, 11: set(), 20: {21}, 21: {20}}
        assert_is_cycle(find_cycle(edges), edges)

    def test_2pn_torus_cycle_is_valid(self):
        """The documented 2pn may-wait cycles are genuine graph cycles."""
        algorithm = make_algorithm("2pn", Torus(4, 2))
        edges = build_dependency_graph(algorithm)
        cycle = find_cycle(edges)
        assert cycle is not None
        assert_is_cycle(cycle, edges)
        # Resources are (link index, vc class) pairs within budget.
        for link_index, vc_class in cycle:
            assert 0 <= link_index < algorithm.topology.num_links
            assert 0 <= vc_class < algorithm.num_virtual_channels
