"""Unit tests for the algorithm registry."""

import pytest

from repro.routing.registry import (
    ALGORITHM_NAMES,
    available_algorithms,
    make_algorithm,
    register_algorithm,
)
from repro.util.errors import ConfigurationError


class TestRegistry:
    def test_paper_order(self):
        assert ALGORITHM_NAMES == (
            "ecube", "nlast", "2pn", "phop", "nhop", "nbc",
        )

    def test_all_names_constructible(self, torus4):
        for name in ALGORITHM_NAMES:
            algorithm = make_algorithm(name, torus4)
            assert algorithm.name == name

    def test_available_is_sorted(self):
        names = available_algorithms()
        assert names == sorted(names)
        assert set(ALGORITHM_NAMES) <= set(names)

    def test_unknown_name_raises(self, torus4):
        with pytest.raises(ConfigurationError, match="unknown routing"):
            make_algorithm("bogus", torus4)

    def test_register_custom(self, torus4):
        from repro.routing.ecube import ECube

        class Custom(ECube):
            name = "custom-test-algo"

        register_algorithm("custom-test-algo", Custom)
        try:
            assert make_algorithm(
                "custom-test-algo", torus4
            ).name == "custom-test-algo"
        finally:
            from repro.routing import registry

            del registry._FACTORIES["custom-test-algo"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_algorithm("ecube", lambda t: None)


class TestDescribe:
    def test_description_mentions_vcs(self, torus16):
        description = make_algorithm("phop", torus16).describe()
        assert "17 virtual channels" in description
        assert "fully adaptive" in description

    def test_ecube_nonadaptive(self, torus16):
        assert "non-adaptive" in make_algorithm("ecube", torus16).describe()
