"""Tests for the physical-channel multiplexer policies."""

import pytest

from repro.network.physical_channel import PhysicalChannel
from repro.network.message import Message
from repro.experiments.runner import run_point
from tests.conftest import tiny_config


def make_message(msg_id, length=8):
    return Message(
        msg_id=msg_id,
        src=0,
        dst=1,
        length=length,
        distance=1,
        route_state=None,
        msg_class=0,
        created_at=0,
    )


class TestHighestClassFirst:
    @pytest.fixture
    def contended_channel(self, torus4):
        link = torus4.out_link(0, 0, 1)
        channel = PhysicalChannel(link, 3, 8)
        for vc_class in range(3):
            channel.vcs[vc_class].reserve(make_message(vc_class))
        return channel

    def test_priority_scan_always_picks_top_class(self, contended_channel):
        winners = [
            contended_channel.transmit(cycle, False, True, True).vc_class
            for cycle in range(4)
        ]
        assert winners == [2, 2, 2, 2]

    def test_priority_falls_through_when_top_blocked(
        self, contended_channel
    ):
        top = contended_channel.vcs[2]
        top.owner.flits_to_inject = 0  # nothing left to send upstream
        winner = contended_channel.transmit(0, False, True, True)
        assert winner.vc_class == 1

    def test_round_robin_shares_fairly(self, contended_channel):
        winners = [
            contended_channel.transmit(cycle, False, True, False).vc_class
            for cycle in range(6)
        ]
        assert sorted(winners[:3]) == [0, 1, 2]
        assert winners[:3] == winners[3:]


class TestEndToEnd:
    def test_mux_policy_config_validated(self):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            tiny_config(mux_policy="loudest")

    @pytest.mark.parametrize("policy", ["round_robin", "highest_class"])
    def test_simulation_completes_under_both(self, policy):
        config = tiny_config(
            algorithm="phop", mux_policy=policy, offered_load=0.7, seed=9
        )
        result = run_point(config)
        assert result.messages_delivered > 0

    def test_policies_change_behaviour(self):
        results = {}
        for policy in ("round_robin", "highest_class"):
            config = tiny_config(
                algorithm="phop",
                mux_policy=policy,
                offered_load=0.8,
                seed=10,
            )
            results[policy] = run_point(config)
        assert (
            results["round_robin"].average_latency
            != results["highest_class"].average_latency
        )
