"""Engine edge cases: tiny messages, rings, extreme loads, VCT buffers."""

import dataclasses

import pytest

from repro.experiments.runner import run_point
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine
from tests.conftest import tiny_config


class TestSingleFlitMessages:
    def test_single_flit_latency_equals_distance(self):
        config = tiny_config(
            radix=8, message_length=1, offered_load=0.02, seed=3
        )
        engine = Engine(config)
        engine.start_sample()
        engine.run_cycles(1500)
        sample = engine.end_sample()
        assert sample.delivered > 10
        assert any(
            latency == hops for latency, hops in sample.deliveries
        )
        assert all(
            latency >= hops for latency, hops in sample.deliveries
        )

    def test_single_flit_under_load(self):
        config = tiny_config(message_length=1, offered_load=0.9, seed=4)
        engine = Engine(config)
        engine.run_cycles(2000)
        assert engine.conservation_check()
        assert engine.delivered_total > 100


class TestOneDimensionalRing:
    def test_ecube_on_ring(self):
        config = tiny_config(radix=8, n_dims=1, seed=5)
        result = run_point(config)
        assert result.messages_delivered > 0

    def test_hop_schemes_on_ring(self):
        for algorithm in ("phop", "nhop", "nbc"):
            config = tiny_config(
                radix=6, n_dims=1, algorithm=algorithm, seed=6
            )
            result = run_point(config)
            assert result.messages_delivered > 0, algorithm


class TestRadixTwo:
    def test_smallest_torus(self):
        """A 2-ary 2-cube: every hop crosses a wrap edge."""
        config = tiny_config(radix=2, offered_load=0.3, seed=7)
        result = run_point(config)
        assert result.messages_delivered > 0


class TestExtremeLoads:
    def test_zero_load_runs_quietly(self):
        engine = Engine(tiny_config(offered_load=0.0))
        engine.run_cycles(1000)
        assert engine.generated_total == 0
        assert engine.cycle == 1000

    def test_full_overload_stays_stable(self):
        config = tiny_config(offered_load=1.0, seed=8)
        engine = Engine(config)
        engine.run_cycles(3000)
        assert engine.conservation_check()
        # Congestion control keeps in-flight bounded.
        assert engine.in_flight < 400


class TestBufferDepths:
    def test_deep_buffers_never_hurt_throughput(self):
        common = {"offered_load": 0.8, "seed": 9}
        shallow = Engine(tiny_config(vc_buffer_depth=1, **common))
        deep = Engine(tiny_config(vc_buffer_depth=8, **common))
        for engine in (shallow, deep):
            engine.run_cycles(500)
            engine.start_sample()
            engine.run_cycles(1200)
        shallow_sample = shallow.end_sample()
        deep_sample = deep.end_sample()
        assert deep_sample.flits_moved >= 0.9 * shallow_sample.flits_moved

    def test_vct_buffer_larger_than_packet_allowed(self):
        config = tiny_config(
            switching="vct", message_length=4, vc_buffer_depth=16, seed=10
        )
        result = run_point(config)
        assert result.messages_delivered > 0


class TestPermutationTrafficEndToEnd:
    def test_transpose_on_torus(self):
        config = tiny_config(traffic="transpose", seed=11)
        result = run_point(config)
        assert result.messages_delivered > 0

    def test_bit_complement(self):
        config = tiny_config(traffic="bit-complement", seed=12)
        result = run_point(config)
        assert result.messages_delivered > 0
        # Bit-complement on a 4x4 torus: wrap-around makes every
        # coordinate one hop from its complement, so all messages are in
        # the 2-hop class.
        assert set(result.hop_class_latency) == {2}


class TestSelectionPolicies:
    @pytest.mark.parametrize("policy", ["least_multiplexed", "random", "first"])
    def test_all_policies_work(self, policy):
        config = tiny_config(
            algorithm="nbc", selection_policy=policy, seed=13
        )
        result = run_point(config)
        assert result.messages_delivered > 0
