"""Scan vs. activity-tracked scheduler equivalence.

``SimulationConfig.scheduler`` selects between the seed engine's full
per-cycle rescan ("scan") and the event-driven activity-tracked
scheduler ("active").  The two must be *bit-identical*: same flit
schedule, same counters, same rng stream positions, same per-channel
state.  ``Engine.state_fingerprint()`` digests exactly that state
(scheduler bookkeeping like armed stamps and parked-waiter lists is
excluded — it is allowed to differ), so fingerprint equality after the
same number of cycles is the equivalence oracle used throughout.

Covered here:

* the full matrix of 6 algorithms x {mesh, torus} x {wormhole, vct},
  observer enabled and disabled;
* a 50-configuration fuzz sweep over random short configs (switching,
  flow control, mux policy, selection policy, load, message length,
  buffer depth, seeds);
* the routing-decision memo: cached candidate sets must resolve to the
  same objects a fresh computation produces, and disabling the memo
  must not change the schedule;
* config validation and the scheduler-dependent engine wiring.
"""

import random

import pytest

from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine
from repro.util.errors import ConfigurationError

ALGORITHMS = ("ecube", "nlast", "2pn", "phop", "nhop", "nbc")


def _run_pair(cycles, **options):
    """Run one scan engine and one active engine on the same config."""
    engines = []
    for scheduler in ("scan", "active"):
        engine = Engine(SimulationConfig(scheduler=scheduler, **options))
        engine.run_cycles(cycles)
        engines.append(engine)
    return engines


class TestSchedulerIdentity:
    @pytest.mark.parametrize("obs", [False, True])
    @pytest.mark.parametrize("switching", ["wormhole", "vct"])
    @pytest.mark.parametrize("topology", ["mesh", "torus"])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_matrix_fingerprint_identity(
        self, algorithm, topology, switching, obs
    ):
        scan, active = _run_pair(
            600,
            radix=4,
            n_dims=2,
            topology=topology,
            algorithm=algorithm,
            switching=switching,
            offered_load=0.45,
            seed=23,
            obs=obs,
            obs_options={"stride": 32} if obs else {},
        )
        assert scan.state_fingerprint() == active.state_fingerprint()
        assert scan.flits_moved_total > 0  # the run exercised the fabric
        assert active.conservation_check()

    def test_fingerprint_detects_divergence(self):
        """The oracle itself must not be vacuous."""
        a = Engine(SimulationConfig(radix=4, n_dims=2, seed=1,
                                    offered_load=0.3))
        b = Engine(SimulationConfig(radix=4, n_dims=2, seed=1,
                                    offered_load=0.3))
        a.run_cycles(400)
        b.run_cycles(401)
        assert a.state_fingerprint() != b.state_fingerprint()


class TestSchedulerFuzz:
    def test_fifty_random_configs_agree(self):
        """50 random short configs: fingerprints identical throughout."""
        rng = random.Random(0xC0FFEE)
        for trial in range(50):
            switching = rng.choice(["wormhole", "wormhole", "vct", "saf"])
            options = {
                "radix": rng.choice([4, 4, 6]),
                "n_dims": 2,
                "topology": rng.choice(["mesh", "torus"]),
                "algorithm": rng.choice(ALGORITHMS),
                "switching": switching,
                "flow_control": rng.choice(["ideal", "conservative"]),
                "mux_policy": rng.choice(["round_robin", "highest_class"]),
                "selection_policy": rng.choice(
                    ["least_multiplexed", "random", "first"]
                ),
                "offered_load": rng.choice([0.15, 0.3, 0.5, 0.7]),
                "message_length": rng.choice([4, 8, 16]),
                "injection_limit": rng.choice([1, 2, None]),
                # VCT and SAF require buffers holding a whole packet; let
                # the config default handle those modes.
                "vc_buffer_depth": (
                    rng.choice([None, 1, 2, 4])
                    if switching == "wormhole" else None
                ),
                "seed": rng.randrange(10_000),
            }
            cycles = rng.randrange(200, 500)
            scan, active = _run_pair(cycles, **options)
            assert (
                scan.state_fingerprint() == active.state_fingerprint()
            ), f"trial {trial} diverged: {options}, cycles={cycles}"


class TestRoutingMemo:
    def _congested(self, algorithm, scheduler="active"):
        return Engine(SimulationConfig(
            radix=4,
            n_dims=2,
            algorithm=algorithm,
            offered_load=0.6,
            seed=5,
            scheduler=scheduler,
        ))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_memo_entries_resolve_into_live_fabric(self, algorithm):
        """Memo entries alias the fabric's channel/VC objects exactly.

        The memo stores resolved (VirtualChannel, PhysicalChannel) pairs,
        not copies: every cached pair must be the very objects the fabric
        owns at the memo key's head node, so allocation through a cached
        entry mutates real network state.
        """
        engine = self._congested(algorithm)
        engine.run_cycles(800)
        assert engine._resolved_cache, "memo never engaged"
        channels = engine._channels
        for (node, dst, key), resolved in engine._resolved_cache.items():
            assert node != dst
            for vc, channel in resolved:
                assert channels[vc.link.index] is channel
                assert channel.vcs[vc.vc_class] is vc
                assert vc.link.src == node

    def test_memo_disabled_is_schedule_invisible(self):
        """state_key -> None (memo off) must not change the schedule."""
        plain = self._congested("phop")
        plain.run_cycles(600)
        unmemoized = self._congested("phop")
        unmemoized.algorithm.state_key = lambda state: None  # type: ignore
        unmemoized.run_cycles(600)
        assert not unmemoized._resolved_cache
        assert (
            plain.state_fingerprint() == unmemoized.state_fingerprint()
        )

    def test_memo_only_engages_for_active_scheduler(self):
        engine = self._congested("phop", scheduler="scan")
        engine.run_cycles(400)
        assert not engine._resolved_cache


class TestSchedulerConfig:
    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(scheduler="bogus")

    def test_scan_engine_uses_fifo_queue(self):
        engine = Engine(SimulationConfig(radix=4, scheduler="scan"))
        assert engine._route_pending is engine._route_queue
        assert not engine._parking

    def test_active_engine_uses_heap_and_parking(self):
        engine = Engine(SimulationConfig(radix=4, scheduler="active"))
        assert engine._route_pending is engine._route_heap
        assert engine._parking

    def test_sanitizer_disables_parking(self):
        engine = Engine(
            SimulationConfig(radix=4, scheduler="active", sanitize=True)
        )
        assert not engine._parking

    def test_observer_attach_detach_toggles_parking(self):
        from repro.obs.observer import ObsConfig, Observer

        engine = Engine(SimulationConfig(radix=4, scheduler="active"))
        engine.attach_observer(Observer(ObsConfig(stride=64)))
        assert not engine._parking
        engine.detach_observer()
        assert engine._parking
