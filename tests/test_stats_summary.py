"""Unit tests for the SimulationResult container."""

import dataclasses

import pytest

from repro.stats.summary import SimulationResult


def make_result(**overrides):
    defaults = {
        "algorithm": "ecube",
        "traffic": "uniform",
        "offered_load": 0.4,
        "injection_rate": 0.01,
        "average_latency": 50.0,
        "latency_error_bound": 2.0,
        "average_wait": 10.0,
        "achieved_utilization": 0.3,
        "delivered_throughput": 0.29,
        "samples_used": 3,
        "converged": True,
        "cycles_simulated": 9000,
        "messages_generated": 900,
        "messages_delivered": 880,
        "messages_refused": 100,
    }
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestRefusalRate:
    def test_fraction_of_offered(self):
        result = make_result(messages_generated=900, messages_refused=100)
        assert result.refusal_rate == pytest.approx(0.1)

    def test_zero_when_nothing_offered(self):
        result = make_result(messages_generated=0, messages_refused=0)
        assert result.refusal_rate == 0.0

    def test_full_refusal(self):
        result = make_result(messages_generated=0, messages_refused=50)
        assert result.refusal_rate == 1.0


class TestSerialization:
    def test_to_dict_has_core_metrics(self):
        row = make_result().to_dict()
        for key in (
            "algorithm",
            "traffic",
            "offered_load",
            "average_latency",
            "achieved_utilization",
            "converged",
            "refusal_rate",
        ):
            assert key in row

    def test_to_dict_values_are_plain(self):
        for value in make_result().to_dict().values():
            assert isinstance(value, (str, int, float, bool))

    def test_str_mentions_convergence_state(self):
        assert "NOT converged" in str(make_result(converged=False))
        assert "NOT" not in str(make_result(converged=True))


class TestOptionalFields:
    def test_defaults_empty(self):
        result = make_result()
        assert result.latency_percentiles == {}
        assert result.hop_class_latency == {}
        assert result.vc_class_usage == []
        assert result.notes is None


class TestSerializerCoverage:
    """Reflective guard: serializers must track the dataclass.

    Adding a field to SimulationResult without exporting it silently
    drops data from CSV tables and checkpoints.  These tests enumerate
    the fields with dataclasses.fields() so they fail the moment a new
    field is neither exported nor added to SERIALIZE_EXCLUDE — the same
    contract the SER001 lint rule enforces statically.
    """

    #: Fields that to_dict() flattens into differently-named columns.
    FLATTENED = {
        "latency_percentiles": {"latency_p50", "latency_p95", "latency_p99"},
    }

    def test_to_dict_covers_every_field_modulo_exclusions(self):
        row = make_result().to_dict()
        for spec in dataclasses.fields(SimulationResult):
            if spec.name in SimulationResult.SERIALIZE_EXCLUDE:
                assert spec.name not in row, (
                    f"{spec.name} is excluded but still exported"
                )
                continue
            expected = self.FLATTENED.get(spec.name, {spec.name})
            missing = expected - set(row)
            assert not missing, (
                f"field {spec.name!r} missing from to_dict(): {missing}; "
                "export it or add it to SERIALIZE_EXCLUDE"
            )

    def test_to_json_dict_covers_every_field(self):
        data = make_result().to_json_dict()
        names = {spec.name for spec in dataclasses.fields(SimulationResult)}
        assert set(data) == names

    def test_exclusions_name_real_fields(self):
        names = {spec.name for spec in dataclasses.fields(SimulationResult)}
        stale = SimulationResult.SERIALIZE_EXCLUDE - names
        assert not stale, f"SERIALIZE_EXCLUDE names unknown fields: {stale}"
