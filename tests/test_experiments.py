"""Tests for the experiment harness: runner, sweeps, tables, profiles."""

import dataclasses
import io

import pytest

from repro.experiments.profiles import (
    PROFILES,
    apply_profile,
    current_profile,
)
from repro.experiments.runner import run_point
from repro.experiments.sweep import (
    peak_throughput,
    run_sweep,
    saturation_load,
    sweep_algorithms,
)
from repro.experiments.tables import (
    format_figure,
    format_table,
    peak_summary,
    write_csv,
)
from repro.simulator.config import SimulationConfig
from repro.util.errors import ConfigurationError
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def tiny_result():
    return run_point(tiny_config(offered_load=0.3, seed=2))


class TestRunPoint:
    def test_result_has_paper_metrics(self, tiny_result):
        assert tiny_result.average_latency > 0
        assert 0 < tiny_result.achieved_utilization < 1
        assert tiny_result.samples_used >= 3
        assert tiny_result.messages_delivered > 0

    def test_low_load_utilization_tracks_offered(self, tiny_result):
        assert tiny_result.achieved_utilization == pytest.approx(
            0.3, rel=0.2
        )

    def test_hop_class_latencies_increase_with_distance(self, tiny_result):
        strata = tiny_result.hop_class_latency
        assert len(strata) >= 3
        assert strata[max(strata)] > strata[min(strata)]

    def test_vc_usage_collected(self, tiny_result):
        assert len(tiny_result.vc_class_usage) == 2  # e-cube on a torus
        assert sum(tiny_result.vc_class_usage) > 0

    def test_reproducible(self):
        config = tiny_config(offered_load=0.3, seed=2)
        again = run_point(config)
        first = run_point(config)
        assert first.average_latency == again.average_latency
        assert first.achieved_utilization == again.achieved_utilization

    def test_to_dict_roundtrip(self, tiny_result):
        row = tiny_result.to_dict()
        assert row["algorithm"] == "ecube"
        assert row["converged"] in (True, False)

    def test_str_is_informative(self, tiny_result):
        text = str(tiny_result)
        assert "ecube" in text and "latency" in text

    def test_latency_percentiles_ordered(self, tiny_result):
        percentiles = tiny_result.latency_percentiles
        assert set(percentiles) == {50, 95, 99}
        assert percentiles[50] <= percentiles[95] <= percentiles[99]
        # The median sits near the stratified mean at this light load.
        assert percentiles[50] <= tiny_result.average_latency * 2


class TestSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        return run_sweep(tiny_config(seed=3), offered_loads=(0.1, 0.5, 0.9))

    def test_one_result_per_load(self, small_sweep):
        assert [r.offered_load for r in small_sweep] == [0.1, 0.5, 0.9]

    def test_latency_nondecreasing_overall(self, small_sweep):
        assert small_sweep[-1].average_latency > small_sweep[0].average_latency

    def test_peak_throughput(self, small_sweep):
        assert peak_throughput(small_sweep) == max(
            r.achieved_utilization for r in small_sweep
        )

    def test_saturation_load_detected(self, small_sweep):
        load = saturation_load(small_sweep, latency_factor=2.0)
        assert load in (0.5, 0.9)

    def test_saturation_none_when_flat(self, small_sweep):
        assert saturation_load(small_sweep[:1], latency_factor=100) is None

    def test_sweep_algorithms_keys(self):
        series = sweep_algorithms(
            tiny_config(seed=3), ["ecube", "phop"], offered_loads=(0.2,)
        )
        assert set(series) == {"ecube", "phop"}


class TestTables:
    @pytest.fixture(scope="class")
    def series(self):
        return sweep_algorithms(
            tiny_config(seed=4), ["ecube", "nbc"], offered_loads=(0.2, 0.6)
        )

    def test_format_table_layout(self, series):
        table = format_table(series)
        lines = table.splitlines()
        assert "offered" in lines[0]
        assert "ecube" in lines[0] and "nbc" in lines[0]
        assert len(lines) == 2 + 2  # header + rule + two loads

    def test_format_figure_has_both_panels(self, series):
        text = format_figure(series, "Test figure")
        assert "Average latency" in text
        assert "normalized throughput" in text

    def test_peak_summary_mentions_each_algorithm(self, series):
        summary = peak_summary(series)
        assert "ecube" in summary and "nbc" in summary

    def test_write_csv(self, series):
        stream = io.StringIO()
        write_csv(series, stream)
        lines = stream.getvalue().strip().splitlines()
        assert lines[0].startswith("algorithm,")
        assert len(lines) == 1 + 4  # header + 2 algorithms x 2 loads

    def test_empty_series(self):
        assert format_table({}) == "(no data)"


class TestProfiles:
    def test_all_profiles_valid(self):
        for name in PROFILES:
            config = apply_profile(SimulationConfig(), name)
            assert config.radix in (4, 8, 16)

    def test_paper_profile_is_16x16(self):
        config = apply_profile(SimulationConfig(), "paper")
        assert config.radix == 16
        assert config.max_samples == 10

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigurationError):
            apply_profile(SimulationConfig(), "warp-speed")

    def test_current_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "tiny")
        assert current_profile() == "tiny"

    def test_current_profile_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert current_profile() == "scaled"

    def test_bad_env_profile_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "nope")
        with pytest.raises(ConfigurationError):
            current_profile()
