"""The deadlock-freedom verification framework (repro-verify)."""

import json

import pytest

from repro.analysis.verify import (
    CHECKS,
    evaluate,
    find_waiver,
    format_summary,
    format_table,
    parse_topology,
    run_verification,
    verification_code_hash,
)
from repro.analysis.verify.result import CheckResult, summarize
from repro.analysis.verify.runner import INSTANTIATE_CHECK, ResultCache
from repro.experiments.cli_verify import main as verify_main
from repro.routing.positive_hop import PositiveHop
from repro.routing.registry import make_algorithm
from repro.util.errors import ConfigurationError


class TestTopologyParsing:
    def test_torus_spec(self):
        label, topology = parse_topology("torus:4x4")
        assert label == "torus:4x4"
        assert topology.radix == 4 and topology.n_dims == 2
        assert any(link.wraps for link in topology.links)

    def test_mesh_3d_spec(self):
        label, topology = parse_topology("mesh:3x3x3")
        assert label == "mesh:3x3x3"
        assert topology.n_dims == 3
        assert not any(link.wraps for link in topology.links)

    @pytest.mark.parametrize(
        "bad", ["grid:4x4", "torus", "torus:4x8", "torus:axb", ":4x4"]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_topology(bad)


class TestChecks:
    def test_registry_has_the_battery(self):
        assert set(CHECKS) == {
            "rank_monotonicity",
            "candidate_minimality",
            "acyclicity",
            "vc_provisioning",
            "adaptivity",
            "escape_reachability",
        }

    @pytest.mark.parametrize("name", ["ecube", "nlast", "phop", "nhop", "nbc"])
    def test_paper_algorithms_pass_acyclicity(self, name, torus4):
        algorithm = make_algorithm(name, torus4)
        result = evaluate(CHECKS["acyclicity"], algorithm, "torus:4x4")
        assert result.status == "pass", result.detail

    def test_2pn_acyclicity_waived_with_witness_on_torus(self, torus4):
        algorithm = make_algorithm("2pn", torus4)
        result = evaluate(CHECKS["acyclicity"], algorithm, "torus:4x4")
        assert result.status == "waived"
        assert result.waiver is not None and "may-wait" in result.waiver
        # The witness is a genuine cycle of (link, vc_class) resources.
        assert len(result.witness) >= 2

    def test_2pn_acyclicity_passes_on_mesh(self, mesh4):
        algorithm = make_algorithm("2pn", mesh4)
        result = evaluate(CHECKS["acyclicity"], algorithm, "mesh:4x4")
        assert result.status == "pass"
        assert find_waiver("acyclicity", algorithm) is None

    def test_rank_check_skipped_for_non_hop_schemes(self, torus4):
        algorithm = make_algorithm("ecube", torus4)
        result = evaluate(
            CHECKS["rank_monotonicity"], algorithm, "torus:4x4"
        )
        assert result.status == "skipped"

    def test_vc_provisioning_catches_wrong_budget(self, torus4):
        class Overprovisioned(PositiveHop):
            @property
            def num_virtual_channels(self):
                return 99

        result = evaluate(
            CHECKS["vc_provisioning"], Overprovisioned(torus4), "torus:4x4"
        )
        assert result.status == "fail"
        assert result.counts == {"expected": 5, "actual": 99}

    def test_vc_provisioning_understands_lanes(self, torus4):
        algorithm = make_algorithm("ecubex2", torus4)
        result = evaluate(
            CHECKS["vc_provisioning"], algorithm, "torus:4x4"
        )
        assert result.status == "pass"
        assert result.counts["expected"] == 4

    def test_adaptivity_catches_false_full_adaptivity(self, torus4):
        class NotReallyFull(PositiveHop):
            def candidates(self, state, current, dst):
                return super().candidates(state, current, dst)[:1]

        result = evaluate(
            CHECKS["adaptivity"], NotReallyFull(torus4), "torus:4x4"
        )
        assert result.status == "fail"
        assert "claims full adaptivity" in result.detail

    def test_escape_check_catches_dead_ends(self, torus4):
        class DeadEnd(PositiveHop):
            def candidates(self, state, current, dst):
                if current == 5:
                    return []
                return super().candidates(state, current, dst)

        result = evaluate(
            CHECKS["escape_reachability"], DeadEnd(torus4), "torus:4x4"
        )
        assert result.status == "fail"
        assert "dead end" in result.detail


class TestRunner:
    def test_full_battery_on_torus(self):
        run = run_verification(["torus:4x4"])
        summary = run.summary()
        assert summary["fail"] == 0 and summary["error"] == 0
        assert summary["waived"] == 1  # 2pn acyclicity
        assert run.ok() and run.ok(fail_on_error=True)
        # Every registered algorithm appears.
        assert {r.algorithm for r in run.results} >= {
            "ecube", "nlast", "2pn", "phop", "nhop", "nbc"
        }

    def test_inapplicable_algorithms_are_skipped(self):
        # nlast is 2-D only, so it refuses a 3-D torus; nhop is fine there.
        run = run_verification(
            ["torus:4x4x4"],
            algorithms=["nlast", "nhop"],
            checks=["vc_provisioning"],
        )
        instantiate = [
            r for r in run.results if r.check == INSTANTIATE_CHECK
        ]
        assert {r.algorithm for r in instantiate} == {"nlast"}
        assert all(r.status == "skipped" for r in instantiate)
        assert run.ok()

    def test_unknown_check_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown checks"):
            run_verification(["torus:4x4"], checks=["nonsense"])

    def test_cache_replays_results(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        first = run_verification(
            ["torus:4x4"], algorithms=["ecube"], cache_path=cache
        )
        assert not any(r.cached for r in first.results)
        second = run_verification(
            ["torus:4x4"], algorithms=["ecube"], cache_path=cache
        )
        assert all(r.cached for r in second.results)
        assert [r.to_dict()["status"] for r in second.results] == [
            r.to_dict()["status"] for r in first.results
        ]

    def test_cache_invalidated_by_code_hash(self, tmp_path):
        cache_path = str(tmp_path / "cache.json")
        run_verification(
            ["torus:4x4"], algorithms=["ecube"], cache_path=cache_path
        )
        stale = ResultCache(cache_path, code_hash="something-else")
        assert (
            stale.get("torus:4x4", "ecube", "candidate_minimality") is None
        )

    def test_code_hash_is_stable(self):
        assert verification_code_hash() == verification_code_hash()

    def test_reports_render(self):
        run = run_verification(["mesh:4x4"], algorithms=["ecube"])
        table = format_table(run)
        assert "ecube" in table and "mesh:4x4" in table
        summary = format_summary(run)
        assert "verdicts" in summary


class TestResultSerialization:
    def test_round_trip(self):
        result = CheckResult(
            check="acyclicity",
            algorithm="2pn",
            topology="torus:4x4",
            status="waived",
            detail="cycle found",
            waiver="documented",
            witness=[(3, 1), (5, 0)],
            counts={"resources": 7},
            wall_time=0.5,
        )
        clone = CheckResult.from_dict(result.to_dict())
        assert clone.witness == [(3, 1), (5, 0)]
        assert clone.status == "waived" and clone.ok

    def test_summarize_counts_all_statuses(self):
        results = [
            CheckResult("c", "a", "t", status)
            for status in ("pass", "pass", "fail", "waived")
        ]
        assert summarize(results) == {
            "pass": 2,
            "fail": 1,
            "waived": 1,
            "skipped": 0,
            "error": 0,
        }


class TestCli:
    def test_acceptance_invocation(self, tmp_path, capsys):
        """repro-verify --all --topology torus:4x4 --json out.json"""
        out = tmp_path / "out.json"
        code = verify_main(
            [
                "--all",
                "--topology",
                "torus:4x4",
                "--json",
                str(out),
                "--cache",
                str(tmp_path / "cache.json"),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["summary"]["fail"] == 0
        waived = [
            r
            for r in data["results"]
            if r["status"] == "waived" and r["algorithm"] == "2pn"
        ]
        assert len(waived) == 1
        assert waived[0]["check"] == "acyclicity"
        assert len(waived[0]["witness"]) >= 2  # the may-wait cycle
        assert waived[0]["waiver"]  # ... and its documented waiver
        captured = capsys.readouterr()
        assert "WAIVED" in captured.out

    def test_algorithm_subset_and_quiet(self, tmp_path, capsys):
        code = verify_main(
            [
                "--algorithms",
                "ecube,phop",
                "--topology",
                "mesh:4x4",
                "--quiet",
                "--no-cache",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "verdicts" in captured.out

    def test_bad_topology_is_usage_error(self, capsys):
        assert verify_main(["--topology", "klein-bottle:4x4"]) == 2
        assert "repro-verify" in capsys.readouterr().err
