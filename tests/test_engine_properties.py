"""Property-based fuzzing of whole-engine invariants.

Hypothesis drives random (algorithm, switching, load, message length)
configurations through short simulations and asserts the global
invariants: flit conservation, no watchdog deadlock, non-negative waits,
and latency never below the switching technique's floor.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.engine import Engine
from tests.conftest import tiny_config

_configs = st.fixed_dictionaries(
    {
        "algorithm": st.sampled_from(
            ["ecube", "nlast", "2pn", "phop", "nhop", "nbc"]
        ),
        "switching": st.sampled_from(["wormhole", "vct", "saf"]),
        "offered_load": st.sampled_from([0.1, 0.45, 0.9]),
        "message_length": st.sampled_from([1, 4, 16]),
        "flow_control": st.sampled_from(["ideal", "conservative"]),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


@given(params=_configs)
@settings(max_examples=12, deadline=None)
def test_random_configurations_hold_invariants(params):
    config = tiny_config(radix=4, deadlock_threshold=3000, **params)
    engine = Engine(config)
    engine.start_sample()
    engine.run_cycles(900)  # watchdog would raise on any deadlock
    sample = engine.end_sample()
    assert engine.conservation_check()
    length = params["message_length"]
    for latency, hops in sample.deliveries:
        assert hops >= 1
        if params["switching"] == "saf":
            # A full store per hop is the SAF floor.
            assert latency >= hops * length
        else:
            assert latency >= length + hops - 1


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_sampling_window_is_a_pure_observer(seed):
    """Recording a sample must not change the simulation trajectory."""
    def run(record):
        engine = Engine(tiny_config(offered_load=0.5, seed=seed))
        if record:
            engine.start_sample()
        engine.run_cycles(500)
        if record:
            engine.end_sample()
        return (
            engine.delivered_total,
            engine.flits_moved_total,
            engine.generated_total,
        )

    assert run(True) == run(False)
