"""Unit tests for node addressing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.coords import coords_to_node, node_to_coords, parity
from repro.util.errors import TopologyError


class TestNodeToCoords:
    def test_origin(self):
        assert node_to_coords(0, 4, 2) == (0, 0)

    def test_dimension_zero_is_least_significant(self):
        assert node_to_coords(3, 4, 2) == (3, 0)

    def test_dimension_one_is_next_digit(self):
        assert node_to_coords(4, 4, 2) == (0, 1)

    def test_max_node(self):
        assert node_to_coords(15, 4, 2) == (3, 3)

    def test_three_dimensions(self):
        # 27 = 1*16 + 2*4 + 3
        assert node_to_coords(27, 4, 3) == (3, 2, 1)

    def test_rejects_negative(self):
        with pytest.raises(TopologyError):
            node_to_coords(-1, 4, 2)

    def test_rejects_too_large(self):
        with pytest.raises(TopologyError):
            node_to_coords(16, 4, 2)


class TestCoordsToNode:
    def test_origin(self):
        assert coords_to_node((0, 0), 4) == 0

    def test_mixed(self):
        assert coords_to_node((3, 1), 4) == 7

    def test_rejects_out_of_range_coordinate(self):
        with pytest.raises(TopologyError):
            coords_to_node((4, 0), 4)

    def test_rejects_negative_coordinate(self):
        with pytest.raises(TopologyError):
            coords_to_node((-1, 0), 4)


class TestParity:
    def test_even_node(self):
        assert parity((0, 0)) == 0
        assert parity((1, 1)) == 0
        assert parity((2, 4)) == 0

    def test_odd_node(self):
        assert parity((1, 0)) == 1
        assert parity((3, 4)) == 1

    def test_three_dims(self):
        assert parity((1, 1, 1)) == 1


@given(
    radix=st.integers(min_value=2, max_value=9),
    n_dims=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
def test_roundtrip_property(radix, n_dims, data):
    """coords_to_node inverts node_to_coords for every valid node."""
    node = data.draw(
        st.integers(min_value=0, max_value=radix**n_dims - 1)
    )
    coords = node_to_coords(node, radix, n_dims)
    assert len(coords) == n_dims
    assert all(0 <= c < radix for c in coords)
    assert coords_to_node(coords, radix) == node


@given(
    radix=st.integers(min_value=2, max_value=8),
    data=st.data(),
)
def test_adjacent_nodes_differ_in_parity_when_even_radix(radix, data):
    """For even radix the parity coloring is a proper 2-coloring."""
    if radix % 2 != 0:
        radix += 1
    node = data.draw(st.integers(min_value=0, max_value=radix**2 - 1))
    coords = node_to_coords(node, radix, 2)
    for dim in range(2):
        for delta in (1, -1):
            neighbour = list(coords)
            neighbour[dim] = (neighbour[dim] + delta) % radix
            assert parity(coords) != parity(tuple(neighbour))
