"""Tests for ``repro.analysis.lint``: rules, waivers, caching, CLI.

Rule behaviour is proven against the fixture tree in
``tests/lint_fixtures``: every ``bad/`` module must trigger exactly its
rule, every ``good/`` counterpart must stay silent under the full
battery.  The fixture layout mirrors the package layout because several
rules are path-scoped (DET002 only fires inside the deterministic core,
DET001 exempts ``util/rng.py``, ...).
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULES,
    STATUS_OPEN,
    STATUS_WAIVED,
    analyze_source,
    lint_code_hash,
    run_lint,
)
from repro.analysis.lint.cli import main as lint_main
from repro.util.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "lint_fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"

#: (fixture path, the one rule it must trigger).
BAD_CASES = [
    ("simulator/det001_random.py", "DET001"),
    ("simulator/det002_clock.py", "DET002"),
    ("simulator/det003_sets.py", "DET003"),
    ("det004_id.py", "DET004"),
    ("simulator/det005_state.py", "DET005"),
    ("ser001_dropped.py", "SER001"),
    ("hot001_alloc.py", "HOT001"),
]

#: Compliant counterparts that must produce zero findings.
GOOD_CASES = [
    "simulator/det001_ok.py",
    "util/rng.py",
    "simulator/engine.py",
    "simulator/det003_ok.py",
    "det004_ok.py",
    "simulator/det005_ok.py",
    "ser001_ok.py",
    "hot001_ok.py",
]


def analyze_fixture(root, relpath, rules=None):
    source = (root / relpath).read_text(encoding="utf-8")
    return analyze_source(source, relpath, rules)


class TestFixtureTreeIsComplete:
    def test_every_real_rule_has_a_bad_fixture(self):
        covered = {rule for _, rule in BAD_CASES}
        real = {
            name
            for name in RULES
            if not name.startswith("WVR")  # exercised by TestWaivers
        }
        assert covered == real

    def test_case_lists_match_the_tree(self):
        on_disk = {
            path.relative_to(BAD).as_posix() for path in BAD.rglob("*.py")
        }
        assert on_disk == {relpath for relpath, _ in BAD_CASES}
        on_disk = {
            path.relative_to(GOOD).as_posix() for path in GOOD.rglob("*.py")
        }
        assert on_disk == set(GOOD_CASES)


class TestRulesFire:
    @pytest.mark.parametrize("relpath,rule", BAD_CASES)
    def test_bad_fixture_triggers_exactly_its_rule(self, relpath, rule):
        findings = analyze_fixture(BAD, relpath)
        assert findings, f"{relpath} produced no findings"
        assert {finding.rule for finding in findings} == {rule}
        for finding in findings:
            assert finding.status == STATUS_OPEN
            assert not finding.ok
            assert finding.path == relpath
            assert finding.line >= 1
            assert finding.message and finding.witness and finding.hint

    @pytest.mark.parametrize("relpath,rule", BAD_CASES)
    def test_rule_subset_selection(self, relpath, rule):
        findings = analyze_fixture(BAD, relpath, rules=[rule])
        assert findings
        assert all(finding.rule == rule for finding in findings)

    def test_det003_catches_every_ordering_shape(self):
        messages = " ".join(
            finding.message
            for finding in analyze_fixture(BAD, "simulator/det003_sets.py")
        )
        assert "iteration over a set" in messages
        assert "materialises a set" in messages
        assert "set.pop()" in messages

    def test_hot001_catches_every_allocation_shape(self):
        messages = " ".join(
            finding.message
            for finding in analyze_fixture(BAD, "hot001_alloc.py")
        )
        assert "deepcopy" in messages
        assert "f-string" in messages
        assert ".format()" in messages
        assert "%-formatting" in messages
        assert "loop-invariant" in messages
        # The numpy sub-check: direct iteration, range(len(...)), and
        # enumerate() forwarding must all read as per-element loops.
        numpy_loops = [
            finding
            for finding in analyze_fixture(BAD, "hot001_alloc.py")
            if "numpy array" in finding.message
        ]
        assert len(numpy_loops) == 3
        assert all(
            "defeats vectorization" in finding.message
            for finding in numpy_loops
        )

    def test_path_scoping_disarms_core_rules(self):
        """The same wall-clock source is fine outside the core."""
        source = (BAD / "simulator/det002_clock.py").read_text(
            encoding="utf-8"
        )
        assert analyze_source(source, "experiments/det002_clock.py") == []

    def test_unknown_rule_is_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_source("x = 1\n", "mod.py", rules=["NOPE999"])


class TestRulesSilent:
    @pytest.mark.parametrize("relpath", GOOD_CASES)
    def test_good_fixture_is_clean(self, relpath):
        assert analyze_fixture(GOOD, relpath) == []


WAIVED_SOURCE = (
    "def order(items):\n"
    "    key = lambda item: id(item)"
    "  # repro-lint: ignore[DET004] documented tie-break\n"
    "    return sorted(items, key=key)\n"
)

REASONLESS_SOURCE = (
    "def order(items):\n"
    "    key = lambda item: id(item)  # repro-lint: ignore[DET004]\n"
    "    return sorted(items, key=key)\n"
)

STANDALONE_SOURCE = (
    "def order(items):\n"
    "    # repro-lint: ignore[DET004] documented tie-break\n"
    "    key = lambda item: id(item)\n"
    "    return sorted(items, key=key)\n"
)

UNUSED_SOURCE = (
    "# repro-lint: ignore[DET004] nothing here to waive\n"
    "def order(items):\n"
    "    return sorted(items)\n"
)


class TestWaivers:
    def test_trailing_waiver_with_reason_waives(self):
        findings = analyze_source(WAIVED_SOURCE, "mod.py")
        assert [finding.rule for finding in findings] == ["DET004"]
        finding = findings[0]
        assert finding.status == STATUS_WAIVED
        assert finding.waiver == "documented tie-break"
        assert finding.ok

    def test_standalone_waiver_covers_the_next_line(self):
        findings = analyze_source(STANDALONE_SOURCE, "mod.py")
        assert [finding.status for finding in findings] == [STATUS_WAIVED]

    def test_waiver_without_reason_does_not_waive(self):
        findings = analyze_source(REASONLESS_SOURCE, "mod.py")
        by_rule = {finding.rule: finding for finding in findings}
        assert set(by_rule) == {"DET004", "WVR001"}
        assert by_rule["DET004"].status == STATUS_OPEN
        assert not by_rule["WVR001"].ok

    def test_unused_waiver_is_reported(self):
        findings = analyze_source(UNUSED_SOURCE, "mod.py")
        assert [finding.rule for finding in findings] == ["WVR002"]
        assert "unused waiver" in findings[0].message

    def test_waiver_for_the_wrong_rule_does_not_waive(self):
        source = WAIVED_SOURCE.replace("DET004", "DET001")
        findings = analyze_source(source, "mod.py")
        by_rule = {finding.rule for finding in findings}
        assert "DET004" in by_rule  # still open
        assert "WVR002" in by_rule  # and the DET001 waiver is unused

    def test_subset_runs_skip_waiver_hygiene(self):
        """A partial battery cannot tell stale from deselected."""
        findings = analyze_source(UNUSED_SOURCE, "mod.py", rules=["DET004"])
        assert findings == []

    def test_docstring_mentions_are_not_waivers(self):
        source = (
            '"""Docs quoting repro-lint: ignore[DET004] syntax."""\n'
            "def order(items):\n"
            "    return sorted(items, key=lambda item: id(item))\n"
        )
        findings = analyze_source(source, "mod.py")
        assert [finding.rule for finding in findings] == ["DET004"]
        assert findings[0].status == STATUS_OPEN


CLEAN_MODULE = '"""A module with nothing to report."""\n\nVALUE = 1\n'


class TestCache:
    def _write(self, root, relpath, source):
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")

    def test_replay_and_edit_invalidation(self, tmp_path):
        root = tmp_path / "pkg"
        self._write(root, "simulator/mod.py", CLEAN_MODULE)
        cache = str(tmp_path / "cache.json")

        first = run_lint(root=root, cache_path=cache)
        assert (first.files_analyzed, first.files_cached) == (1, 0)

        second = run_lint(root=root, cache_path=cache)
        assert (second.files_analyzed, second.files_cached) == (0, 1)

        self._write(
            root,
            "simulator/mod.py",
            "VALUE = sorted([], key=lambda item: id(item))\n",
        )
        third = run_lint(root=root, cache_path=cache)
        assert third.files_analyzed == 1
        assert [finding.rule for finding in third.findings] == ["DET004"]

    def test_replayed_findings_are_marked_cached(self, tmp_path):
        root = tmp_path / "pkg"
        self._write(
            root, "mod.py", "VALUE = sorted([], key=lambda item: id(item))\n"
        )
        cache = str(tmp_path / "cache.json")
        fresh = run_lint(root=root, cache_path=cache)
        assert all(not finding.cached for finding in fresh.findings)
        replay = run_lint(root=root, cache_path=cache)
        assert replay.findings and all(
            finding.cached for finding in replay.findings
        )

    def test_subset_runs_bypass_the_cache(self, tmp_path):
        root = tmp_path / "pkg"
        self._write(root, "mod.py", CLEAN_MODULE)
        cache = str(tmp_path / "cache.json")
        run_lint(root=root, rules=["DET004"], cache_path=cache)
        assert not (tmp_path / "cache.json").exists()

    def test_corrupt_cache_is_ignored(self, tmp_path):
        root = tmp_path / "pkg"
        self._write(root, "mod.py", CLEAN_MODULE)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        run = run_lint(root=root, cache_path=str(cache))
        assert run.files_analyzed == 1

    def test_syntax_error_becomes_a_parse_finding(self, tmp_path):
        root = tmp_path / "pkg"
        self._write(root, "broken.py", "def f(:\n")
        run = run_lint(root=root, cache_path=None)
        assert [finding.rule for finding in run.findings] == ["PARSE"]
        assert not run.ok()

    def test_rules_hash_is_stable(self):
        assert lint_code_hash() == lint_code_hash()


class TestRealTree:
    def test_installed_package_has_zero_open_findings(self):
        """The acceptance gate: repro-lint runs clean on src/repro."""
        run = run_lint(cache_path=None)
        open_findings = [
            finding
            for finding in run.findings
            if finding.status == STATUS_OPEN
        ]
        assert run.ok(), [str(finding) for finding in open_findings]
        assert open_findings == []

    def test_every_shipped_waiver_carries_a_reason(self):
        run = run_lint(cache_path=None)
        waived = [
            finding
            for finding in run.findings
            if finding.status == STATUS_WAIVED
        ]
        for finding in waived:
            assert finding.waiver, f"reasonless waiver: {finding.location}"


class TestCli:
    def test_clean_root_exits_zero(self, capsys):
        assert lint_main([str(GOOD), "--no-cache", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_bad_root_exits_one(self, capsys):
        assert lint_main([str(BAD), "--no-cache", "--fail-on-error"]) == 1
        out = capsys.readouterr().out
        for _, rule in BAD_CASES:
            assert rule in out

    def test_json_report(self, tmp_path):
        report = tmp_path / "lint.json"
        code = lint_main(
            [str(BAD), "--no-cache", "--quiet", "--json", str(report)]
        )
        assert code == 1
        data = json.loads(report.read_text(encoding="utf-8"))
        assert data["summary"]["open"] == len(data["findings"])
        reported = {item["rule"] for item in data["findings"]}
        assert reported == {rule for _, rule in BAD_CASES}

    def test_rule_subset(self, capsys):
        assert (
            lint_main(
                [str(GOOD), "--no-cache", "--quiet", "--rules", "DET001"]
            )
            == 0
        )

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main([str(GOOD), "--no-cache", "--rules", "NOPE"]) == 2
        assert "unknown rules" in capsys.readouterr().err

    def test_root_and_all_conflict(self, capsys):
        assert lint_main([str(GOOD), "--all"]) == 2

    def test_cli_cache_roundtrip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.json")
        assert lint_main([str(GOOD), "--cache", cache, "--quiet"]) == 0
        assert lint_main([str(GOOD), "--cache", cache, "--quiet"]) == 0
        assert "cached" in capsys.readouterr().out
