"""The relaxed backend's structure-of-arrays message state.

The SoA rebuild's contract, pinned here:

* the per-cycle relaxed loop constructs **zero** ``_BatchMessage``
  objects (strict mode still does — it is the bit-identity oracle);
* results are invariant to slab sizing: a tiny slab that grows and
  recycles slots through the free list reproduces the default slab's
  fingerprints exactly;
* conservation and lane-composition independence hold across a fuzzed
  config grid (grouped lanes == singles, fingerprint-for-fingerprint);
* a lane failing mid-run under SoA raises a per-lane
  :class:`DeadlockError` carrying live-message context from the slab,
  while surviving lanes keep generating and stay conserved;
* the :class:`MessageSlab` / :class:`RequestPool` primitives handle
  their growth, recycle, and tombstone edge cases.
"""

import random

import numpy as np
import pytest

from repro.routing.base import RoutingAlgorithm
from repro.simulator import batch as batch_module
from repro.simulator.batch import BatchEngine
from repro.simulator.soa import (
    DEAD_STAMP,
    MessageSlab,
    RequestPool,
)
from repro.topology.torus import Torus
from repro.traffic.arrivals import (
    GapBuffer,
    UniformBuffer,
    geometric_gaps,
)
from repro.util.errors import DeadlockError
from tests.conftest import tiny_config

ALGORITHMS = ("ecube", "2pn", "nbc", "nhop", "nlast", "phop")


def relaxed_config(**overrides):
    defaults = dict(
        flow_control="conservative",
        backend="batch",
        identity="relaxed",
    )
    defaults.update(overrides)
    return tiny_config(**defaults)


class _NeverRoutes(RoutingAlgorithm):
    """Deliberately broken: offers no candidates, so worms stall until
    the watchdog fires (shipped algorithms are deadlock-free)."""

    name = "never-routes"

    @property
    def num_virtual_channels(self):
        return 1

    def candidates(self, state, current, dst):
        self._check_not_delivered(current, dst)
        return []

    def message_class(self, src, dst, state):
        return 0


class _Boobytrapped:
    """Replacement ``_BatchMessage`` that fails the test on construction."""

    def __init__(self, *args, **kwargs):
        raise AssertionError(
            "_BatchMessage constructed on the relaxed SoA path"
        )


class TestZeroBatchMessage:
    """The relaxed per-cycle loop must never touch ``_BatchMessage``."""

    def test_relaxed_loop_builds_no_message_objects(self, monkeypatch):
        monkeypatch.setattr(batch_module, "_BatchMessage", _Boobytrapped)
        config = relaxed_config(algorithm="nbc", offered_load=0.45)
        engine = BatchEngine(config, [3, 4])
        engine.run_cycles(300)  # admissions, routing, deliveries
        for index in range(2):
            assert engine.lanes[index].delivered_total > 0
            assert engine.conservation_check(index)

    def test_strict_loop_still_uses_message_objects(self, monkeypatch):
        """The oracle path keeps its object representation."""
        monkeypatch.setattr(batch_module, "_BatchMessage", _Boobytrapped)
        config = tiny_config(
            flow_control="conservative",
            backend="batch",
            offered_load=0.45,
        )
        engine = BatchEngine(config, [3])
        with pytest.raises(AssertionError, match="relaxed SoA path"):
            engine.run_cycles(300)


class TestSlabSizingInvariance:
    """Free-list recycle and growth are behaviorally invisible."""

    def test_tiny_slab_reproduces_default_slab(self):
        config = relaxed_config(algorithm="phop", offered_load=0.5)
        seeds = [7, 8]
        default = BatchEngine(config, seeds)
        tiny = BatchEngine(config, seeds, slab_slots=2)
        default.run_cycles(400)
        tiny.run_cycles(400)
        # The congested run overflows two slots many times over ...
        assert tiny._slab.grow_count > 0
        assert tiny._slab.capacity > 2
        # ... yet every lane's full state digest is identical.
        for index in range(len(seeds)):
            assert tiny.state_fingerprint(index) == (
                default.state_fingerprint(index)
            )
            assert tiny.conservation_check(index)

    def test_slots_recycle_through_the_free_list(self):
        config = relaxed_config(algorithm="ecube", offered_load=0.3)
        engine = BatchEngine(config, [5], slab_slots=4)
        engine.run_cycles(600)
        lane = engine.lanes[0]
        slab = engine._slab
        assert lane.delivered_total > slab.capacity, (
            "test needs more completions than slots to prove recycling"
        )
        # Free-list accounting closes: live + free == capacity.
        assert slab.live_count(0) + slab.free_slots(0) == slab.capacity

    def test_lane_stop_mid_worm_freezes_slab_state(self):
        """Stopping a lane with worms in flight parks its slab rows."""
        config = relaxed_config(algorithm="nlast", offered_load=0.55)
        engine = BatchEngine(config, [5, 9, 13])
        engine.run_cycles(150)
        assert engine.lanes[1].in_flight > 0  # worms mid-route
        engine.stop_lane(1)
        assert engine.running_lane_indices == [0, 2]
        # Its pending requests froze on the lane, out of the pool.
        assert engine.lanes[1].frozen_pending
        assert engine._pool.lane_entries(1)[0].shape[0] == 0
        frozen = engine.state_fingerprint(1)
        engine.run_cycles(150)
        assert engine.state_fingerprint(1) == frozen
        for index in (0, 2):
            assert engine.conservation_check(index)
            assert engine.lanes[index].generated_total > 0


class TestCompositionFuzz:
    """Conservation + grouping-independence across a fuzzed grid."""

    def test_fuzzed_configs_conserve_and_compose(self):
        rng = random.Random(20260808)
        for trial in range(50):
            topology = rng.choice(("torus", "mesh"))
            config = relaxed_config(
                algorithm=rng.choice(ALGORITHMS),
                topology=topology,
                # The parity algorithms require an even-radix torus.
                radix=4 if topology == "torus" else rng.choice((3, 4)),
                offered_load=round(rng.uniform(0.1, 0.55), 3),
                message_length=rng.choice((2, 4, 6)),
                selection_policy=rng.choice(
                    ("least_multiplexed", "random", "first")
                ),
                mux_policy=rng.choice(("round_robin", "highest_class")),
            )
            seeds = [rng.randrange(1, 10_000) for _ in range(2)]
            grouped = BatchEngine(config, seeds)
            grouped.run_cycles(220)
            for index, seed in enumerate(seeds):
                assert grouped.conservation_check(index), (
                    f"fuzz trial {trial} broke conservation: "
                    f"{config.label()} seed {seed}"
                )
                single = BatchEngine(config, [seed])
                single.run_cycles(220)
                assert grouped.state_fingerprint(index) == (
                    single.state_fingerprint(0)
                ), (
                    f"fuzz trial {trial} grouping-dependent: "
                    f"{config.label()} seed {seed}"
                )


class TestPerLaneDeadlock:
    """A lane failing mid-run under SoA reports and freezes cleanly."""

    def test_failed_lane_reports_slab_context_and_rest_continue(self):
        topology = Torus(4, 2)
        config = relaxed_config(
            offered_load=0.0005, deadlock_threshold=50
        )
        seeds = [1, 2, 3, 6]
        engine = BatchEngine(
            config, seeds, topology=topology,
            algorithm=_NeverRoutes(topology),
        )
        engine.run_cycles(200)
        # At this horizon two lanes have tripped (their first arrivals
        # stalled past the threshold) and two are still running.
        errors = engine.lane_errors()
        assert sorted(errors) == [1, 2]
        assert engine.running_lane_indices == [0, 3]
        for index, error in errors.items():
            assert isinstance(error, DeadlockError)
            message = str(error)
            # Live-message context comes from the slab view.
            assert f"[batch lane {index}, seed {seeds[index]}]" in message
            assert "request queued at cycle" in message
            assert "->" in message  # msg#N src->dst head at ...
        frozen = {i: engine.state_fingerprint(i) for i in errors}
        # Survivors keep generating past their siblings' deaths, then
        # trip on their own (later) first-arrival stalls.
        engine.run_cycles(200)
        late = engine.lane_errors()
        assert sorted(late) == [0, 1, 2, 3]
        assert "request queued at cycle" in str(late[0])
        # The early failures' frozen state was never perturbed.
        for index, fingerprint in frozen.items():
            assert engine.state_fingerprint(index) == fingerprint

    def test_iter_live_messages_walks_the_slab(self):
        config = relaxed_config(algorithm="nbc", offered_load=0.5)
        engine = BatchEngine(config, [3])
        engine.run_cycles(120)
        lane = engine.lanes[0]
        views = list(engine._iter_live_messages(lane))
        assert len(views) == lane.in_flight
        slab = engine._slab
        assert len(views) == slab.live_count(0)
        for view in views:
            assert 0 <= view.src < engine.topology.num_nodes
            assert 0 <= view.dst < engine.topology.num_nodes
            assert view.flits_to_inject >= 0
            assert view.flits_ejected >= 0


class TestMessageSlabPrimitives:
    def test_alloc_release_recycles_lifo(self):
        slab = MessageSlab(2, capacity=4)
        first = slab.alloc(0, 2)
        assert first.tolist() == [2, 3]
        assert slab.free_slots(0) == 2
        assert slab.free_slots(1) == 4  # lanes have separate stacks
        slab.release(0, np.array([3], dtype=np.int32))
        assert slab.alloc(0, 1).tolist() == [3]  # most recent first
        assert slab.free_slots(0) == 2

    def test_exhaustion_grows_and_preserves_rows(self):
        slab = MessageSlab(2, capacity=2)
        slots = slab.alloc(0, 2)
        slab.src[0, slots] = [4, 5]
        slab.mid[0, slots] = [40, 50]
        slab.live[0, slots] = True
        assert slab.free_slots(0) == 0
        slab.ensure(0, 3)  # needs two doublings: 2 -> 4 -> 8
        assert slab.capacity == 8
        assert slab.grow_count == 2
        # Existing rows kept their slot numbers and contents.
        assert slab.src[0, slots].tolist() == [4, 5]
        assert slab.mid[0, slots].tolist() == [40, 50]
        assert slab.live_count(0) == 2
        # Both lanes gained the fresh slots, fills intact.
        assert slab.free_slots(0) == 6
        assert slab.free_slots(1) == 8
        assert slab.head_flat[1].tolist() == [-1] * 8
        # Fresh slots never collide with the two still in use.
        fresh = slab.alloc(0, 6)
        assert sorted(fresh.tolist() + slots.tolist()) == list(range(8))

    def test_flat_views_alias_after_growth(self):
        slab = MessageSlab(2, capacity=2)
        slab.grow()
        g = 1 * slab.capacity + 3  # lane 1, slot 3 via the flat view
        slab.src_f[g] = 9
        assert slab.src[1, 3] == 9


class TestRequestPoolPrimitives:
    def _pool(self):
        pool = RequestPool(2, capacity=4)
        pool.extend(
            np.array([0, 1, 0]),
            np.array([10, 11, 12], dtype=np.int32),
            np.array([100, 101, 102], dtype=np.int64),
            np.array([[5, 6], [7, -1], [8, 9]], dtype=np.int64),
        )
        return pool

    def test_extend_and_lane_entries(self):
        pool = self._pool()
        assert pool.n == 3
        slots, seqs = pool.lane_entries(0)
        assert slots.tolist() == [10, 12]
        assert seqs.tolist() == [100, 102]
        # Candidates live transposed: one row per candidate position.
        assert pool.cand[:, :3].T.tolist() == [[5, 6], [7, -1], [8, 9]]
        assert pool.blocked[:3].tolist() == [-1, -1, -1]

    def test_kill_tombstones_without_moving_entries(self):
        pool = self._pool()
        pool.kill(np.array([1]))
        assert pool.dead == 1
        assert pool.n == 3  # storage untouched
        assert pool.lane[1] == -1
        assert pool.blocked[1] == DEAD_STAMP
        # Dead entries vanish from every lane's view.
        assert pool.lane_entries(1)[0].shape[0] == 0
        assert pool.lane_entries(0)[0].tolist() == [10, 12]

    def test_prune_compacts_tombstones(self):
        pool = self._pool()
        pool.kill(np.array([0]))
        pool.prune()
        assert (pool.n, pool.dead) == (2, 0)
        assert pool.slot[:2].tolist() == [11, 12]  # order preserved
        assert pool.cand[:, :2].T.tolist() == [[7, -1], [8, 9]]

    def test_drop_lane_removes_only_that_lane(self):
        pool = self._pool()
        pool.drop_lane(0)
        assert pool.n == 1
        assert pool.slot[:1].tolist() == [11]
        assert pool.lane[:1].tolist() == [1]

    def test_growth_preserves_entries(self):
        pool = self._pool()
        count = 6  # over the capacity of 4
        pool.extend(
            np.full(count, 1),
            np.arange(20, 20 + count, dtype=np.int32),
            np.arange(200, 200 + count, dtype=np.int64),
            np.full((count, 2), 3, dtype=np.int64),
        )
        assert pool.n == 9
        assert pool.slot[:3].tolist() == [10, 11, 12]
        assert pool.cand[:, 0].tolist() == [5, 6]

    def test_widen_pads_existing_candidates(self):
        pool = self._pool()
        pool.extend(
            np.array([1]),
            np.array([13], dtype=np.int32),
            np.array([103], dtype=np.int64),
            np.array([[1, 2, 3, 4]], dtype=np.int64),  # wider row
        )
        assert pool.width == 4
        assert pool.cand[:, 0].tolist() == [5, 6, -1, -1]
        assert pool.cand[:, 3].tolist() == [1, 2, 3, 4]


class TestRngBuffers:
    """Prefetch buffers must replay the unbuffered stream bit-for-bit."""

    def test_gap_buffer_matches_unbuffered_stream(self):
        takes = [3, 1, 40, 7, 5000, 2, 11]  # spans several refills
        buffered = GapBuffer(0.23, np.random.default_rng(9))
        chunks = [buffered.take(count).copy() for count in takes]
        direct = geometric_gaps(
            sum(takes), 0.23, np.random.default_rng(9)
        )
        assert np.array_equal(np.concatenate(chunks), direct)

    def test_gap_buffer_degenerate_rates_touch_no_stream(self):
        gen = np.random.default_rng(3)
        state = repr(gen.bit_generator.state)
        assert GapBuffer(1.0, gen).take(5).tolist() == [1] * 5
        assert (GapBuffer(0.0, gen).take(3) > 10**9).all()
        assert repr(gen.bit_generator.state) == state

    def test_uniform_buffer_matches_unbuffered_stream(self):
        takes = [1, 16, 4096, 2, 300]
        buffered = UniformBuffer(np.random.default_rng(17))
        chunks = [buffered.take(count).copy() for count in takes]
        direct = np.random.default_rng(17).random(sum(takes))
        assert np.array_equal(np.concatenate(chunks), direct)
