"""Tests for the repro-sweep command-line interface."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_custom_sweep_runs(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE", "tiny")
        exit_code = main(
            [
                "--profile",
                "tiny",
                "--algorithms",
                "ecube",
                "--loads",
                "0.2",
                "--quiet",
                "--csv",
                str(tmp_path / "out.csv"),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Custom sweep" in out
        assert "ecube" in out
        assert (tmp_path / "out.csv").exists()

    def test_figure_mode_reports_checks(self, capsys):
        exit_code = main(
            [
                "--figure",
                "vct",
                "--profile",
                "tiny",
                "--algorithms",
                "ecube,2pn,nbc",
                "--loads",
                "0.6",
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert "Paper figure vct" in out
        assert "PASS" in out or "FAIL" in out
        assert exit_code in (0, 1)

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["--figure", "99"])
