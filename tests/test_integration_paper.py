"""Integration tests pinning the paper's constants and key orderings.

These are the repository's "does it still reproduce the paper?" canaries:
cheap enough for every test run, strong enough to catch regressions in the
routing algorithms, the engine, or the statistics pipeline.
"""

import dataclasses

import pytest

from repro.experiments.runner import run_point
from repro.experiments.sweep import sweep_algorithms
from repro.routing.registry import ALGORITHM_NAMES, make_algorithm
from repro.simulator.config import SimulationConfig
from repro.traffic.registry import make_traffic
from tests.conftest import tiny_config


class TestPaperConstants:
    """Numbers quoted verbatim in the paper, checked exactly."""

    def test_virtual_channel_inventory_16x16(self, torus16):
        expected = {
            "ecube": 2,
            "2pn": 4,
            "phop": 17,
            "nhop": 9,
            "nbc": 9,
        }
        for name, vcs in expected.items():
            assert make_algorithm(name, torus16).num_virtual_channels == vcs

    def test_average_diameter(self, torus16):
        assert torus16.average_distance() == pytest.approx(8.03, abs=0.005)

    def test_hotspot_probabilities(self, torus16):
        pattern = make_traffic("hotspot", torus16, fraction=0.04)
        dist = pattern.destination_distribution(0)
        assert dist[torus16.node((15, 15))] == pytest.approx(
            0.0438, abs=0.0003
        )

    def test_local_traffic_weights(self, torus16):
        weights = make_traffic("local", torus16).hop_class_weights()
        assert weights == pytest.approx(
            {1: 1 / 12, 2: 1 / 6, 3: 0.25, 4: 0.25, 5: 1 / 6, 6: 1 / 12}
        )


class TestOrderings:
    """The paper's qualitative rankings on a fast 6x6 torus."""

    @pytest.fixture(scope="class")
    def uniform_series(self):
        base = tiny_config(radix=6, seed=17, message_length=16)
        base = dataclasses.replace(
            base, warmup_cycles=800, sample_cycles=700
        )
        return sweep_algorithms(
            base, ALGORITHM_NAMES, offered_loads=(0.4, 0.8)
        )

    def peak(self, series, name):
        return max(r.achieved_utilization for r in series[name])

    def test_hop_schemes_beat_ecube(self, uniform_series):
        for name in ("phop", "nhop", "nbc"):
            assert self.peak(uniform_series, name) > self.peak(
                uniform_series, "ecube"
            )

    def test_nlast_saturates_no_later_than_ecube(self, uniform_series):
        """Past saturation nlast holds no advantage over e-cube.

        The paper's full effect (nlast clearly below e-cube) needs the
        16x16 network — the scaled benchmark checks cover that; on this
        fast 6x6 canary we assert the weaker ordering at overload.
        """
        ecube_high = uniform_series["ecube"][-1].achieved_utilization
        nlast_high = uniform_series["nlast"][-1].achieved_utilization
        assert ecube_high >= 0.85 * nlast_high

    def test_similar_latency_at_low_load(self):
        base = tiny_config(radix=6, seed=18, offered_load=0.1)
        latencies = []
        for name in ALGORITHM_NAMES:
            result = run_point(dataclasses.replace(base, algorithm=name))
            latencies.append(result.average_latency)
        assert max(latencies) <= 1.35 * min(latencies)


class TestVcBalanceClaim:
    def test_nbc_balances_vc_load_better_than_nhop(self):
        """Section 3.4/4: nbc spreads traffic across VC classes."""
        from repro.analysis.vc_usage import coefficient_of_variation

        base = tiny_config(radix=6, seed=19, offered_load=0.5)
        cvs = {}
        for name in ("nhop", "nbc"):
            result = run_point(dataclasses.replace(base, algorithm=name))
            cvs[name] = coefficient_of_variation(result.vc_class_usage)
        assert cvs["nbc"] < cvs["nhop"]


class TestStress:
    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_sustained_overload_without_deadlock(self, algorithm):
        """Every algorithm survives 6000 overloaded cycles with flit
        conservation intact and a strict watchdog armed."""
        from repro.simulator.engine import Engine

        config = tiny_config(
            radix=6,
            algorithm=algorithm,
            offered_load=1.0,
            deadlock_threshold=1500,
            seed=23,
        )
        engine = Engine(config)
        engine.run_cycles(6000)
        assert engine.conservation_check()
        assert engine.delivered_total > 500

    def test_mesh_network_end_to_end(self):
        config = tiny_config(topology="mesh", radix=4, seed=29)
        result = run_point(config)
        assert result.messages_delivered > 0

    def test_three_dimensional_torus_end_to_end(self):
        config = tiny_config(radix=4, n_dims=3, algorithm="phop", seed=31)
        result = run_point(config)
        assert result.messages_delivered > 0
