"""Unit tests for the e-cube baseline."""

import pytest

from repro.routing.base import dateline_vc_class
from repro.routing.ecube import ECube
from repro.util.errors import RoutingError


@pytest.fixture
def ecube4(torus4):
    return ECube(torus4)


class TestResources:
    def test_two_vcs_on_torus(self, ecube4):
        assert ecube4.num_virtual_channels == 2

    def test_one_vc_on_mesh(self, mesh4):
        assert ECube(mesh4).num_virtual_channels == 1

    def test_not_adaptive(self, ecube4):
        assert not ecube4.adaptive
        assert not ecube4.fully_adaptive


class TestRouting:
    def test_single_candidate_always(self, ecube4, torus4):
        for src in range(torus4.num_nodes):
            for dst in range(torus4.num_nodes):
                if src != dst:
                    state = ecube4.new_state(src, dst)
                    assert len(ecube4.candidates(state, src, dst)) == 1

    def test_dimension_zero_first(self, ecube4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((1, 1))
        (link, _), = ecube4.candidates(None, src, dst)
        assert link.dim == 0

    def test_dimension_one_after_zero_corrected(self, ecube4, torus4):
        src = torus4.node((1, 0))
        dst = torus4.node((1, 1))
        (link, _), = ecube4.candidates(None, src, dst)
        assert link.dim == 1

    def test_takes_shorter_way_around(self, ecube4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((3, 0))
        (link, _), = ecube4.candidates(None, src, dst)
        assert link.direction == -1
        assert link.wraps

    def test_raises_at_destination(self, ecube4):
        with pytest.raises(RoutingError):
            ecube4.candidates(None, 5, 5)

    def test_full_path_is_dimension_ordered(self, ecube4, torus4):
        node = torus4.node((3, 3))
        dst = torus4.node((1, 1))
        dims = []
        while node != dst:
            (link, _), = ecube4.candidates(None, node, dst)
            dims.append(link.dim)
            node = link.dst
        assert dims == sorted(dims)
        assert len(dims) == torus4.distance(torus4.node((3, 3)), dst)


class TestDatelineClasses:
    def test_wrapping_message_starts_class0(self, ecube4, torus4):
        src = torus4.node((3, 0))
        dst = torus4.node((1, 0))  # +1 direction through the wrap
        (link, vc_class), = ecube4.candidates(None, src, dst)
        assert link.direction == 1
        assert vc_class == 0

    def test_after_wrap_uses_class1(self, ecube4, torus4):
        src = torus4.node((0, 0))  # just wrapped, heading to (1, 0)
        dst = torus4.node((1, 0))
        (link, vc_class), = ecube4.candidates(None, src, dst)
        assert vc_class == 1

    def test_nonwrapping_message_uses_class1(self, ecube4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((1, 0))
        (_, vc_class), = ecube4.candidates(None, src, dst)
        assert vc_class == 1

    def test_dateline_function_directly(self):
        # + direction: wrap still ahead while current > dest.
        assert dateline_vc_class(6, 2, 1) == 0
        assert dateline_vc_class(1, 2, 1) == 1
        # - direction: wrap still ahead while current < dest.
        assert dateline_vc_class(1, 6, -1) == 0
        assert dateline_vc_class(6, 2, -1) == 1


class TestMessageClass:
    def test_class_is_first_link_and_vc(self, ecube4, torus4):
        src = torus4.node((0, 0))
        dst = torus4.node((1, 1))
        state = ecube4.new_state(src, dst)
        link_index, vc_class = ecube4.message_class(src, dst, state)
        (link, expected_class), = ecube4.candidates(state, src, dst)
        assert link_index == link.index
        assert vc_class == expected_class

    def test_distinct_destinations_can_share_class(self, ecube4, torus4):
        """Messages with the same first hop and VC share a class."""
        src = torus4.node((0, 0))
        dst_a = torus4.node((1, 1))
        dst_b = torus4.node((1, 2))
        cls_a = ecube4.message_class(src, dst_a, None)
        cls_b = ecube4.message_class(src, dst_b, None)
        assert cls_a == cls_b
