"""Unit tests for the utility layer: RNG streams, validation, errors."""

import pytest

from repro.util.errors import (
    ConfigurationError,
    DeadlockError,
    ReproError,
    RoutingError,
    TopologyError,
)
from repro.util.rng import RngStreams
from repro.util.validation import (
    require,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)


class TestRngStreams:
    def test_streams_are_independent(self):
        streams = RngStreams(1)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_same_name_same_stream_object(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_reproducible_across_instances(self):
        first = RngStreams(7).stream("arrivals").random()
        second = RngStreams(7).stream("arrivals").random()
        assert first == second

    def test_different_seeds_differ(self):
        assert (
            RngStreams(1).stream("a").random()
            != RngStreams(2).stream("a").random()
        )

    def test_advance_epoch_changes_sequences(self):
        streams = RngStreams(3)
        before = streams.stream("a").random()
        streams.advance_epoch()
        after = streams.stream("a").random()
        # Fresh stream, fresh sequence (and deterministic given the epoch).
        assert streams.epoch == 1
        repeat = RngStreams(3)
        repeat.stream("a").random()
        repeat.advance_epoch()
        assert repeat.stream("a").random() == after
        assert before != after

    def test_spawn_children_are_independent(self):
        parent = RngStreams(5)
        child_a = parent.spawn("node-1")
        child_b = parent.spawn("node-2")
        assert (
            child_a.stream("d").random() != child_b.stream("d").random()
        )

    def test_rejects_non_int_seed(self):
        with pytest.raises(ConfigurationError):
            RngStreams("seed")  # type: ignore[arg-type]


class TestValidation:
    def test_require_passes_and_fails(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1, "x")
        require_positive(0.5, "x")
        for bad in (0, -1):
            with pytest.raises(ConfigurationError):
                require_positive(bad, "x")

    def test_require_non_negative(self):
        require_non_negative(0, "x")
        with pytest.raises(ConfigurationError):
            require_non_negative(-0.01, "x")

    def test_require_probability(self):
        require_probability(0.0, "p")
        require_probability(1.0, "p")
        with pytest.raises(ConfigurationError):
            require_probability(1.01, "p")

    def test_require_type_rejects_bool_as_int(self):
        require_type(3, int, "n")
        with pytest.raises(ConfigurationError, match="bool"):
            require_type(True, int, "n")

    def test_require_type_message_names_expected(self):
        with pytest.raises(ConfigurationError, match="must be str"):
            require_type(3, str, "name")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigurationError, TopologyError, RoutingError, DeadlockError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")
