"""Property-based tests over all six routing algorithms."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.invariants import (
    check_candidates_minimal,
    count_minimal_paths,
    enumerate_paths,
)
from repro.routing.registry import ALGORITHM_NAMES, make_algorithm
from repro.topology.torus import Torus

_TORUS = Torus(6, 2)
_ALGORITHMS = {
    name: make_algorithm(name, _TORUS) for name in ALGORITHM_NAMES
}

_pairs = st.tuples(
    st.integers(min_value=0, max_value=_TORUS.num_nodes - 1),
    st.integers(min_value=0, max_value=_TORUS.num_nodes - 1),
).filter(lambda pair: pair[0] != pair[1])


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
@given(pair=_pairs)
@settings(max_examples=30, deadline=None)
def test_every_reachable_hop_is_minimal(name, pair):
    """Minimality (and hence livelock freedom) for all reachable states."""
    src, dst = pair
    assert check_candidates_minimal(_ALGORITHMS[name], src, dst) > 0


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
@given(pair=_pairs)
@settings(max_examples=20, deadline=None)
def test_candidate_classes_within_budget(name, pair):
    """Every offered VC class fits the algorithm's provisioned channels."""
    src, dst = pair
    algorithm = _ALGORITHMS[name]
    budget = algorithm.num_virtual_channels
    stack = [(algorithm.new_state(src, dst), src)]
    seen = set()
    while stack:
        state, node = stack.pop()
        if node == dst:
            continue
        for link, vc_class in algorithm.candidates(state, node, dst):
            assert 0 <= vc_class < budget
            marker = (repr(vars_of(state)), link.dst)
            if marker not in seen:
                seen.add(marker)
                stack.append(
                    (
                        algorithm.advance(
                            copy.copy(state), node, link, vc_class
                        ),
                        link.dst,
                    )
                )


def vars_of(state):
    if state is None or isinstance(state, int):
        return state
    slots = getattr(type(state), "__slots__", ())
    return tuple(getattr(state, s) for s in slots)


@pytest.mark.parametrize("name", ["phop", "nhop", "nbc", "2pn"])
@given(pair=_pairs)
@settings(max_examples=15, deadline=None)
def test_fully_adaptive_algorithms_allow_every_minimal_path(name, pair):
    """The defining property of full adaptivity."""
    src, dst = pair
    algorithm = _ALGORITHMS[name]
    paths = enumerate_paths(algorithm, src, dst)
    assert len(paths) == count_minimal_paths(algorithm, src, dst)


@given(pair=_pairs)
@settings(max_examples=15, deadline=None)
def test_ecube_allows_exactly_one_path(pair):
    src, dst = pair
    assert len(enumerate_paths(_ALGORITHMS["ecube"], src, dst)) == 1


@given(pair=_pairs)
@settings(max_examples=15, deadline=None)
def test_nlast_path_count_between_ecube_and_fully_adaptive(pair):
    """Partially adaptive: at least one path, never more than the minimal
    path count."""
    src, dst = pair
    algorithm = _ALGORITHMS["nlast"]
    paths = enumerate_paths(algorithm, src, dst)
    assert 1 <= len(paths) <= count_minimal_paths(algorithm, src, dst)


@given(pair=_pairs)
@settings(max_examples=15, deadline=None)
def test_path_lengths_equal_distance(pair):
    """All permitted paths of every algorithm have minimal length."""
    src, dst = pair
    expected = _TORUS.distance(src, dst) + 1  # nodes = hops + 1
    for name in ALGORITHM_NAMES:
        for path in enumerate_paths(_ALGORITHMS[name], src, dst):
            assert len(path) == expected
            assert path[0] == src and path[-1] == dst


@given(pair=_pairs)
@settings(max_examples=20, deadline=None)
def test_message_class_is_stable_and_hashable(pair):
    src, dst = pair
    for name in ALGORITHM_NAMES:
        algorithm = _ALGORITHMS[name]
        state = algorithm.new_state(src, dst)
        key_a = algorithm.message_class(src, dst, state)
        key_b = algorithm.message_class(src, dst, state)
        assert key_a == key_b
        hash(key_a)
