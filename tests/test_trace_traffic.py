"""Tests for trace-driven workloads and the trace runner."""

import io

import pytest

from repro.experiments.trace_runner import compare_algorithms, run_trace
from repro.traffic.trace import (
    MessageTrace,
    reduction_trace,
    stencil_trace,
)
from repro.util.errors import ConfigurationError
from tests.conftest import tiny_config


class TestMessageTrace:
    def test_sorts_events(self):
        trace = MessageTrace([(5, 0, 1), (2, 1, 2), (2, 0, 3)])
        assert list(trace) == [(2, 0, 3), (2, 1, 2), (5, 0, 1)]
        assert trace.horizon == 5

    def test_rejects_self_addressed(self):
        with pytest.raises(ConfigurationError):
            MessageTrace([(0, 3, 3)])

    def test_rejects_negative_cycle(self):
        with pytest.raises(ConfigurationError):
            MessageTrace([(-1, 0, 1)])

    def test_empty_trace(self):
        trace = MessageTrace([])
        assert len(trace) == 0
        assert trace.horizon == 0

    def test_validate_for_topology(self, torus4):
        MessageTrace([(0, 0, 15)]).validate_for(torus4)
        with pytest.raises(ConfigurationError, match="outside"):
            MessageTrace([(0, 0, 16)]).validate_for(torus4)

    def test_text_roundtrip(self):
        trace = MessageTrace([(0, 1, 2), (4, 3, 0)])
        out = io.StringIO()
        trace.to_text(out)
        again = MessageTrace.from_text(io.StringIO(out.getvalue()))
        assert list(again) == list(trace)

    def test_from_text_rejects_malformed(self):
        with pytest.raises(ConfigurationError, match="expected"):
            MessageTrace.from_text(io.StringIO("1 2\n"))
        with pytest.raises(ConfigurationError, match="non-integer"):
            MessageTrace.from_text(io.StringIO("a b c\n"))

    def test_from_text_skips_comments_and_blanks(self):
        text = "# header\n\n0 1 2  # inline\n"
        trace = MessageTrace.from_text(io.StringIO(text))
        assert list(trace) == [(0, 1, 2)]


class TestGenerators:
    def test_stencil_counts(self, torus4):
        trace = stencil_trace(torus4, iterations=2, period=10)
        # Every node sends to its 4 neighbours, twice.
        assert len(trace) == 2 * 16 * 4
        assert trace.horizon == 10
        for _, src, dst in trace:
            assert torus4.distance(src, dst) == 1

    def test_stencil_on_mesh_respects_boundaries(self, mesh4):
        trace = stencil_trace(mesh4, iterations=1, period=1)
        assert len(trace) == mesh4.num_links

    def test_reduction_reaches_root(self, torus4):
        root = torus4.node((1, 2))
        trace = reduction_trace(torus4, root, rounds=1, period=50)
        # Dim-0 step: 12 senders; dim-1 step: 3 senders.
        assert len(trace) == 12 + 3
        destinations = {dst for _, _, dst in trace}
        root_coords = torus4.coords(root)
        for dst in destinations:
            coords = torus4.coords(dst)
            assert coords[0] == root_coords[0]

    def test_reduction_rounds_staggered(self, torus4):
        trace = reduction_trace(torus4, 0, rounds=2, period=100)
        cycles = {cycle for cycle, _, _ in trace}
        assert cycles == {0, 1, 100, 101}


class TestTraceReplay:
    def test_single_event_latency_is_ideal(self):
        config = tiny_config(message_length=4)
        trace = MessageTrace([(0, 0, 1)])
        result = run_trace(config, trace)
        assert result.messages_delivered == 1
        assert result.average_latency == 4 + 1 - 1
        assert result.makespan >= 4

    def test_all_events_delivered(self, torus4):
        config = tiny_config(message_length=4, seed=3)
        trace = stencil_trace(torus4, iterations=3, period=20)
        result = run_trace(config, trace)
        assert result.messages_delivered == len(trace)

    def test_blocking_send_retries_instead_of_dropping(self, torus4):
        """A burst far over the injection limit must still deliver fully."""
        config = tiny_config(message_length=4, injection_limit=1, seed=4)
        burst = MessageTrace([(0, 0, 5)] * 12)
        result = run_trace(config, burst)
        assert result.messages_delivered == 12

    def test_makespan_guard(self, torus4):
        config = tiny_config(message_length=4)
        trace = MessageTrace([(0, 0, 1)])
        with pytest.raises(ConfigurationError, match="did not complete"):
            run_trace(config, trace, max_cycles=2)

    def test_compare_algorithms(self, torus4):
        config = tiny_config(message_length=4, seed=5)
        trace = reduction_trace(torus4, 0, rounds=3, period=30)
        results = compare_algorithms(config, trace, ("ecube", "nbc"))
        assert set(results) == {"ecube", "nbc"}
        for result in results.values():
            assert result.messages_delivered == len(trace)
            assert result.makespan > 0

    def test_engine_determinism_with_traces(self, torus4):
        config = tiny_config(message_length=4, seed=6)
        trace = stencil_trace(torus4, iterations=2, period=15)
        first = run_trace(config, trace)
        second = run_trace(config, trace)
        assert first.makespan == second.makespan
        assert first.average_latency == second.average_latency
