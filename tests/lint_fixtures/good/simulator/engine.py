"""Fixture: DET002 silent — the allowlisted measurement site.

``simulator/engine.py::Engine._step_observed`` is in
``DET002_ALLOWED_FUNCTIONS``, so its wall-clock reads pass.
"""

from time import perf_counter


class Engine:
    def _step_observed(self):
        started = perf_counter()
        self.step()
        return perf_counter() - started

    def step(self):
        return None
