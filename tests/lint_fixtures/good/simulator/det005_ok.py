"""Fixture: DET005 silent — immutable module state, None defaults."""

from types import MappingProxyType

NAMES = ("ecube", "nbc")
WEIGHTS = MappingProxyType({"ecube": 1, "nbc": 2})

__all__ = ["NAMES", "WEIGHTS", "record"]


def record(value, seen=None):
    if seen is None:
        seen = []
    seen.append(value)
    return seen
