"""Fixture: DET003 silent — sorted sets and insertion-ordered dicts."""


def drain(channels):
    busy = {channel for channel in channels if channel.active}
    for channel in sorted(busy):
        yield channel
    ordered = dict.fromkeys(channels)
    for channel in ordered:
        yield channel
