"""Fixture: DET001 silent — seeded instance streams, no global state."""

import random


def draw(seed):
    rng = random.Random(seed)
    return rng.random()
