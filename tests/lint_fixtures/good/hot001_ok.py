"""Fixture: HOT001 silent — a hot function that only indexes and adds,
and a hot numpy kernel that stays whole-array."""

import numpy as np


# repro: hot
def tick(counters, deltas):
    total = 0
    for index, delta in enumerate(deltas):
        counters[index] += delta
        total += delta
    scaled = [value * 2 for value in deltas]
    return total, scaled


class Kernel:
    def __init__(self, lanes):
        self.occupancy = np.zeros(lanes, dtype=np.int16)
        self.capacity = np.full(lanes, 2, dtype=np.int16)

    # repro: hot
    def transmit(self, credits):
        ready = np.less(self.occupancy, self.capacity)
        np.logical_and(ready, credits, out=ready)
        moved = np.nonzero(ready)[0]
        self.occupancy[moved] += 1
        # Sanctioned scalar seam: iterate the Python list, not the array.
        return moved.tolist()
