"""Fixture: HOT001 silent — a hot function that only indexes and adds."""


# repro: hot
def tick(counters, deltas):
    total = 0
    for index, delta in enumerate(deltas):
        counters[index] += delta
        total += delta
    scaled = [value * 2 for value in deltas]
    return total, scaled
