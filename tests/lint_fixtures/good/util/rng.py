"""Fixture: DET001 silent — util/rng.py is the one exempt module."""

import random


def reseed(seed):
    random.seed(seed)
