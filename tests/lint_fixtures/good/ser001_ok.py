"""Fixture: SER001 silent — full coverage, exclusions, and asdict."""

from dataclasses import asdict, dataclass
from typing import ClassVar, FrozenSet


@dataclass
class Row:
    name: str
    value: float
    hidden: int = 0

    SERIALIZE_EXCLUDE: ClassVar[FrozenSet[str]] = frozenset({"hidden"})

    def to_dict(self):
        return {"name": self.name, "value": self.value}


@dataclass
class Mirror:
    left: int
    right: int

    def to_dict(self):
        return asdict(self)
