"""Fixture: DET004 silent — ordering by a stable attribute."""


def stable_order(items):
    return sorted(items, key=lambda item: item.msg_id)
