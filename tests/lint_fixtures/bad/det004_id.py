"""Fixture: DET004 fires — object-address ordering."""


def stable_order(items):
    return sorted(items, key=lambda item: id(item))
