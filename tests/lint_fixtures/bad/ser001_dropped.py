"""Fixture: SER001 fires — the serializer drops a field."""

from dataclasses import dataclass


@dataclass
class Row:
    name: str
    value: float
    hidden: int = 0

    def to_dict(self):
        return {"name": self.name, "value": self.value}
