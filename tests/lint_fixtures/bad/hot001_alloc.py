"""Fixture: HOT001 fires — every allocation-heavy construct it knows."""

from copy import deepcopy

import numpy as np

LABELS = ("a", "b")


# repro: hot
def tick(state):
    snapshot = deepcopy(state)
    message = f"cycle {state}"
    text = "{}".format(state)
    legacy = "%s" % state
    table = [label for label in LABELS]
    return snapshot, message, text, legacy, table


class Kernel:
    def __init__(self, lanes):
        self.occupancy = np.zeros(lanes, dtype=np.int16)

    # repro: hot
    def transmit(self, credits):
        ready = np.nonzero(credits)[0]
        total = 0
        for lane in ready:  # per-element loop over the batch axis
            total += int(self.occupancy[lane])
        for index in range(len(ready)):
            total -= int(ready[index])
        pairs = [(lane, 1) for lane in enumerate(self.occupancy)]
        return total, pairs
