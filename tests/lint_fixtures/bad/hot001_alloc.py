"""Fixture: HOT001 fires — every allocation-heavy construct it knows."""

from copy import deepcopy

LABELS = ("a", "b")


# repro: hot
def tick(state):
    snapshot = deepcopy(state)
    message = f"cycle {state}"
    text = "{}".format(state)
    legacy = "%s" % state
    table = [label for label in LABELS]
    return snapshot, message, text, legacy, table
