"""Fixture: DET005 fires — worker-divergent mutable state."""

REGISTRY = {}


def record(value, seen=[]):
    seen.append(value)
    REGISTRY[value] = True
    return seen
