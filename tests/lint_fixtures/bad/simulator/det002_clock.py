"""Fixture: DET002 fires — wall-clock read in the deterministic core."""

from time import perf_counter


def step_duration(engine):
    started = perf_counter()
    engine.step()
    return perf_counter() - started
